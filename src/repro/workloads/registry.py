"""Named workload configurations and the benchmark suites.

The paper traces each benchmark at two data-set sizes (section 5.0):
MP3D1000/MP3D10000, WATER16/WATER288, LU32/LU200, plus one JACOBI size.
Full-size traces (millions of references) are impractical to regenerate on
every benchmark run in pure Python, so the registry provides:

* ``small`` — directly comparable to the paper's small configurations
  (LU32, WATER16, JACOBI are at paper scale; MP3D is scaled from 1,000 to
  200 particles);
* ``large`` — scaled-down stand-ins for the paper's large configurations
  that preserve the property the paper highlights (the data set grows
  several-fold, moving false sharing to larger blocks);
* ``paper-large`` — the paper's actual large sizes, for users willing to
  wait (tens of millions of simulated references).

All suites use 16 processors, like the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from .base import Workload
from .fft import FFT
from .jacobi import Jacobi
from .lu import LU
from .matmul import MatMul
from .mp3d import MP3D
from .sor import SOR
from .water import Water

WorkloadFactory = Callable[[], Workload]

#: Individual named configurations.
NAMED_CONFIGS: Dict[str, WorkloadFactory] = {
    # --- paper scale (small data sets) --------------------------------
    "LU32": lambda: LU(32),
    "WATER16": lambda: Water(16, time_steps=3),
    "JACOBI64": lambda: Jacobi(64, iterations=4),
    "MP3D200": lambda: MP3D(200, num_cells=64, time_steps=10),
    # --- scaled stand-ins for the large data sets ---------------------
    "LU64": lambda: LU(64),
    "WATER40": lambda: Water(40, time_steps=2),
    "MP3D1000": lambda: MP3D(1000, num_cells=192, time_steps=6),
    # --- the paper's large sizes (slow; benches don't run these) ------
    "LU200": lambda: LU(200),
    "WATER288": lambda: Water(288, time_steps=2),
    "MP3D10000": lambda: MP3D(10000, num_cells=1024, time_steps=10),
    # --- supplementary workloads --------------------------------------
    "MATMUL24": lambda: MatMul(24),
    "FFT256": lambda: FFT(256),
    "SOR64": lambda: SOR(64, iterations=3),
}

#: The four paper benchmarks at Figure 5/6 (small) scale, in paper order.
SMALL_SUITE = ("LU32", "MP3D200", "WATER16", "JACOBI64")

#: Scaled stand-ins for the section 7 large-data-set runs.
LARGE_SUITE = ("LU64", "MP3D1000", "WATER40")

#: The paper's true large sizes (use explicitly; slow).
PAPER_LARGE_SUITE = ("LU200", "MP3D10000", "WATER288")


def make_workload(name: str) -> Workload:
    """Instantiate a named configuration."""
    try:
        factory = NAMED_CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: {sorted(NAMED_CONFIGS)}"
        ) from None
    return factory()


def suite(which: str = "small") -> List[Workload]:
    """Build a benchmark suite: ``"small"``, ``"large"`` or ``"paper-large"``."""
    names = {"small": SMALL_SUITE, "large": LARGE_SUITE,
             "paper-large": PAPER_LARGE_SUITE}.get(which)
    if names is None:
        raise ConfigError(
            f"unknown suite {which!r}; use small, large or paper-large")
    return [make_workload(name) for name in names]
