"""SOR — red-black successive over-relaxation (supplementary workload).

Not one of the paper's four traces, but the canonical grid kernel of the
same era (SPLASH OCEAN's relaxation step).  It complements JACOBI with a
different sharing flavor: a *single* grid updated in place, in two
barrier-separated color phases per iteration.  A red cell's neighbours are
all black (and vice versa), so each phase writes one color while reading
the other — race-free without double buffering, but with twice the barrier
rate and in-place RMW sharing at the partition boundaries.

Useful as a cross-check that the Figure 5 shapes (element-size halving,
partition-row false-sharing jump) are properties of the decomposition, not
of Jacobi's two-grid trick.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier
from ..mem.allocator import Allocator
from .base import Workload


class SOR(Workload):
    """Red-black SOR on one ``grid_dim`` x ``grid_dim`` grid.

    Parameters
    ----------
    grid_dim:
        Grid side; divisible by ``sqrt(num_procs)``.
    iterations:
        Full red+black sweeps.
    elem_words:
        Words per element (default 2: 8-byte doubles).
    """

    name = "sor"

    def __init__(self, grid_dim: int = 64, iterations: int = 3, *,
                 elem_words: int = 2, num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        side = math.isqrt(num_procs)
        if side * side != num_procs:
            raise ConfigError(
                f"sor needs a square processor count, got {num_procs}")
        if grid_dim % side:
            raise ConfigError(
                f"grid_dim {grid_dim} not divisible by decomposition "
                f"side {side}")
        if iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        if elem_words < 1:
            raise ConfigError(f"elem_words must be >= 1, got {elem_words}")
        self.grid_dim = grid_dim
        self.iterations = iterations
        self.elem_words = elem_words
        self._side = side

    @property
    def label(self) -> str:
        return f"SOR{self.grid_dim}"

    # ------------------------------------------------------------------
    def build_threads(self, allocator: Allocator) -> List:
        dim, ew = self.grid_dim, self.elem_words
        grid = allocator.alloc_words("sor.grid", dim * dim * ew)
        barrier = Barrier("sor.barrier", allocator, self.num_procs)
        sub = dim // self._side

        def elem(row: int, col: int) -> int:
            return grid.base + (row * dim + col) * ew

        def relax(r: int, c: int) -> Iterator:
            """In-place update of one cell from its four neighbours."""
            for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                nr = min(max(nr, 0), dim - 1)
                nc = min(max(nc, 0), dim - 1)
                if (nr, nc) == (r, c):
                    continue  # clamped onto self; the RMW below reads it
                base = elem(nr, nc)
                yield from ops.load_words(range(base, base + ew))
            base = elem(r, c)
            yield from ops.load_words(range(base, base + ew))
            yield from ops.store_words(range(base, base + ew))

        def thread(tid: int) -> Iterator:
            row0 = (tid // self._side) * sub
            col0 = (tid % self._side) * sub
            for _ in range(self.iterations):
                for color in (0, 1):
                    for r in range(row0, row0 + sub):
                        for c in range(col0, col0 + sub):
                            if (r + c) % 2 != color:
                                continue
                            yield from relax(r, c)
                    yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_procs)]
