"""WATER — N-body molecular dynamics of liquid water (paper sections 5.0/6.0).

"WATER performs an N-body molecular dynamics simulation ...  each processor
updates its objects in each iteration (time step).  Interactions of its
molecules with other molecules involve modifying the data structures of the
other molecules."

Sharing structure reproduced here (paper section 6.0):

* molecule records of exactly 680 bytes, consecutively allocated with
  adjacent molecules owned by different processors — false sharing grows
  as the block size approaches the record size;
* the inter-molecular force computation modifies nine double words
  (72 bytes — the ``forces`` field) of the *other* molecule's record, under
  that molecule's lock, giving the true-sharing component that "decreases
  rapidly up until a block size of 128 bytes";
* per-molecule ANL locks packed adjacently (sync-word sharing at B=8);
* barriers between the intra-molecular, inter-molecular and integration
  phases of each time step.

Each molecule interacts with the following ``n/2`` molecules (the standard
WATER half-shell scheme), so with molecules interleaved over processors
most interactions are cross-processor.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier, Lock
from ..mem.allocator import Allocator
from ..mem.layout import WATER_MOLECULE
from .base import Workload, split_round_robin


class Water(Workload):
    """WATER with ``num_molecules`` molecules.

    Parameters
    ----------
    num_molecules:
        Molecule count (paper: 16 and 288; keep small — work per step is
        quadratic).
    time_steps:
        Number of time steps.
    """

    name = "water"

    def __init__(self, num_molecules: int = 16, time_steps: int = 3, *,
                 num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        if num_molecules < 2:
            raise ConfigError(
                f"need at least 2 molecules, got {num_molecules}")
        if time_steps < 1:
            raise ConfigError(f"time_steps must be >= 1, got {time_steps}")
        self.num_molecules = num_molecules
        self.time_steps = time_steps

    @property
    def label(self) -> str:
        return f"WATER{self.num_molecules}"

    # ------------------------------------------------------------------
    def build_threads(self, allocator: Allocator) -> List:
        n = self.num_molecules
        molecules = allocator.alloc_array("water.molecule", n,
                                          WATER_MOLECULE.nbytes)
        locks = [Lock(f"water.mollock[{m}]", allocator) for m in range(n)]
        barrier = Barrier("water.barrier", allocator, self.num_procs)

        def intra(m: int) -> Iterator:
            """Intra-molecular phase: owner-only computation on one record."""
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[m], "positions"))
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[m], "velocities"))
            yield from ops.store_words(
                WATER_MOLECULE.field_words(molecules[m], "accels"))

        def interact(m: int, other: int, tid: int) -> Iterator:
            """Inter-molecular pair force: read both, update both force fields."""
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[m], "positions"))
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[other], "positions"))
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[other], "velocities"))
            first, second = sorted((m, other))
            yield from locks[first].acquire(tid)
            yield from locks[second].acquire(tid)
            for w in WATER_MOLECULE.field_words(molecules[m], "forces"):
                yield from ops.read_modify_write(w)
            for w in WATER_MOLECULE.field_words(molecules[other], "forces"):
                yield from ops.read_modify_write(w)
            yield from locks[second].release(tid)
            yield from locks[first].release(tid)

        def integrate(m: int) -> Iterator:
            """Integration phase: fold forces into positions (owner only)."""
            yield from ops.load_words(
                WATER_MOLECULE.field_words(molecules[m], "forces"))
            yield from ops.store_words(
                WATER_MOLECULE.field_words(molecules[m], "positions"))
            yield from ops.store_words(
                WATER_MOLECULE.field_words(molecules[m], "energy"))

        half = n // 2

        def thread(tid: int) -> Iterator:
            mine = list(split_round_robin(n, self.num_procs, tid))
            for _ in range(self.time_steps):
                for m in mine:
                    yield from intra(m)
                yield from barrier.wait(tid)
                for m in mine:
                    for k in range(1, half + 1):
                        yield from interact(m, (m + k) % n, tid)
                yield from barrier.wait(tid)
                for m in mine:
                    yield from integrate(m)
                yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_procs)]
