"""LU — dense LU decomposition, column-interleaved (paper sections 5.0/6.0).

"LU performs the LU-decomposition of a dense matrix.  The overall
computation consists of modifying each column based on the values in all
columns to its left.  Columns are modified from left to right.  They are
statically assigned to processors in a finely interleaved fashion.  Each
processor waits until a column has been produced and then uses it to modify
all its columns."

Sharing structure reproduced here (paper section 6.0):

* each column goes through two phases — written exclusively by its owner,
  then read by everyone — which produces CTS misses at small blocks that
  turn into PTS misses as blocks grow past the column size;
* columns are interleaved among processors and stored contiguously, so
  blocks spanning column boundaries (the small right-triangle columns
  especially) are false-shared even at small block sizes.

Producer/consumer ordering uses one ANL-style flag word per column
(adjacent flag words are themselves a false-sharing source, as in the
original ANL macros).
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import make_flags
from ..mem.allocator import Allocator
from .base import Workload, split_round_robin


class LU(Workload):
    """LU decomposition of an ``n`` x ``n`` matrix on ``num_procs`` processors.

    Parameters
    ----------
    n:
        Matrix dimension.  The paper runs LU32 (n=32) and LU200 (n=200).
    elem_words:
        Words per matrix element (default 2: double precision).
    num_procs, seed:
        See :class:`~repro.workloads.base.Workload`.
    """

    name = "lu"

    def __init__(self, n: int = 32, *, elem_words: int = 2,
                 num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        if n < 2:
            raise ConfigError(f"matrix dimension must be >= 2, got {n}")
        if elem_words < 1:
            raise ConfigError(f"elem_words must be >= 1, got {elem_words}")
        self.n = n
        self.elem_words = elem_words

    @property
    def label(self) -> str:
        return f"LU{self.n}"

    # ------------------------------------------------------------------
    def build_threads(self, allocator: Allocator) -> List:
        n, ew = self.n, self.elem_words
        # Column-major storage: column j occupies n*ew contiguous words.
        matrix = allocator.alloc_words("lu.matrix", n * n * ew)
        col_base = [matrix.base + j * n * ew for j in range(n)]
        flags = make_flags("lu.colflag", allocator, n)

        def elem(j: int, i: int) -> int:
            """First word of element (row i, column j)."""
            return col_base[j] + i * ew

        def thread(tid: int) -> Iterator:
            my_cols = list(split_round_robin(n, self.num_procs, tid))
            my_set = set(my_cols)
            for k in range(n):
                if k in my_set:
                    # Normalize column k: divide rows k+1.. by the pivot.
                    yield from ops.load_words(range(elem(k, k), elem(k, k) + ew))
                    for i in range(k + 1, n):
                        base = elem(k, i)
                        yield from ops.load_words(range(base, base + ew))
                        yield from ops.store_words(range(base, base + ew))
                    yield from flags[k].set(tid)
                else:
                    yield from flags[k].wait(tid)
                # Update my columns to the right of k.
                for j in my_cols:
                    if j <= k:
                        continue
                    # multiplier column: read column k rows k+1..n-1;
                    # target column j: read-modify-write the same rows.
                    for i in range(k + 1, n):
                        src = elem(k, i)
                        dst = elem(j, i)
                        yield from ops.load_words(range(src, src + ew))
                        yield from ops.load_words(range(dst, dst + ew))
                        yield from ops.store_words(range(dst, dst + ew))
            return

        return [thread(tid) for tid in range(self.num_procs)]
