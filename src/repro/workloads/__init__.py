"""Benchmark workload generators (MP3D, WATER, LU, JACOBI + extras)."""

from .base import Workload, split_round_robin
from .fft import FFT
from .jacobi import Jacobi
from .lu import LU
from .matmul import MatMul
from .mp3d import MP3D
from .sor import SOR
from .registry import (
    LARGE_SUITE,
    NAMED_CONFIGS,
    PAPER_LARGE_SUITE,
    SMALL_SUITE,
    make_workload,
    suite,
)
from .water import Water

__all__ = [
    "FFT",
    "Jacobi",
    "LARGE_SUITE",
    "LU",
    "MatMul",
    "MP3D",
    "NAMED_CONFIGS",
    "SOR",
    "PAPER_LARGE_SUITE",
    "SMALL_SUITE",
    "Water",
    "Workload",
    "make_workload",
    "split_round_robin",
    "suite",
]
