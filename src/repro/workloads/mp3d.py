"""MP3D — hypersonic rarefied-flow particle simulator (paper sections 5.0/6.0).

"MP3D is a 3-dimensional particle simulator ...  In each iteration (a time
step) each processor updates the positions and velocities of each of its
particles.  When a collision occurs, the processor updates the attributes
of the particle colliding with its own.  ...  the locking option was
switched on, to eliminate data races."

Sharing structure reproduced here (paper section 6.0):

* particle records of exactly 36 bytes, finely interleaved among
  processors and packed contiguously — false sharing appears at 8-byte
  blocks because consecutive particles belong to different processors;
* space-cell records of exactly 48 bytes — additional false sharing for
  blocks larger than 16 bytes;
* collisions update five words (20 bytes) of each colliding particle, and
  collide particles that meet in the same space cell — the true-sharing
  component that "decreases dramatically up to 32 bytes";
* one ANL spin lock per space cell (the locking option), the lock words
  packed adjacently — sync-word false sharing at B=8;
* a barrier between time steps.

Cell assignment and collision partners are drawn from a seeded RNG at
generator-build time, so each trace is deterministic and the collision
writes stay inside the cell-lock critical sections (race-free).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier, Lock
from ..mem.allocator import Allocator
from ..mem.layout import PARTICLE, SPACE_CELL
from .base import Workload, split_round_robin


class MP3D(Workload):
    """MP3D with ``num_particles`` particles over ``num_cells`` space cells.

    Parameters
    ----------
    num_particles:
        Particle count (paper: 1,000 and 10,000; scaled defaults here).
    num_cells:
        Space-cell count; particles are (re)assigned to cells each step.
    time_steps:
        Number of simulated time steps (barrier-separated).
    collision_rate:
        Probability that a particle attempts a collision in a step.
    """

    name = "mp3d"

    def __init__(self, num_particles: int = 200, num_cells: int = 64,
                 time_steps: int = 10, *, collision_rate: float = 0.2,
                 num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        if num_particles < num_procs:
            raise ConfigError(
                f"need at least one particle per processor "
                f"({num_particles} < {num_procs})")
        if num_cells < 1:
            raise ConfigError(f"num_cells must be >= 1, got {num_cells}")
        if time_steps < 1:
            raise ConfigError(f"time_steps must be >= 1, got {time_steps}")
        if not 0.0 <= collision_rate <= 1.0:
            raise ConfigError(
                f"collision_rate must be in [0,1], got {collision_rate}")
        self.num_particles = num_particles
        self.num_cells = num_cells
        self.time_steps = time_steps
        self.collision_rate = collision_rate

    @property
    def label(self) -> str:
        return f"MP3D{self.num_particles}"

    # ------------------------------------------------------------------
    def build_threads(self, allocator: Allocator) -> List:
        particles = allocator.alloc_array("mp3d.particle", self.num_particles,
                                          PARTICLE.nbytes)
        cells = allocator.alloc_array("mp3d.cell", self.num_cells,
                                      SPACE_CELL.nbytes)
        cell_locks = [Lock(f"mp3d.celllock[{c}]", allocator)
                      for c in range(self.num_cells)]
        barrier = Barrier("mp3d.barrier", allocator, self.num_procs)

        # Deterministic "physics": cell of each particle per step, and the
        # collision schedule.  Collisions pair particles sharing a cell in
        # that step, so both updates fall under one cell lock.
        rng = random.Random(self.seed)
        cell_of = [[rng.randrange(self.num_cells)
                    for _ in range(self.num_particles)]
                   for _ in range(self.time_steps)]
        partners: List[dict] = []
        mates_by_cell: List[dict] = []
        for step in range(self.time_steps):
            by_cell: dict = {}
            for p, c in enumerate(cell_of[step]):
                by_cell.setdefault(c, []).append(p)
            mates_by_cell.append(by_cell)
            chosen = {}
            for p in range(self.num_particles):
                if rng.random() >= self.collision_rate:
                    continue
                mates = by_cell[cell_of[step][p]]
                if len(mates) < 2:
                    continue
                q = rng.choice(mates)
                if q != p:
                    chosen[p] = q
            partners.append(chosen)

        def move(particle_region) -> Iterator:
            """Advance a particle: read pos+vel, write pos."""
            yield from ops.load_words(PARTICLE.field_words(particle_region, "pos"))
            yield from ops.load_words(PARTICLE.field_words(particle_region, "vel"))
            yield from ops.store_words(PARTICLE.field_words(particle_region, "pos"))

        def scan_cell_mates(step: int, p: int) -> Iterator:
            """Collision-candidate check: read-only scan of positions of a
            few particles sharing the cell (the read-mostly sharing that
            makes MP3D's reads outnumber its writes in Table 2)."""
            c = cell_of[step][p]
            mates = [q for q in mates_by_cell[step].get(c, ()) if q != p][:3]
            for q in mates:
                yield from ops.load_words(PARTICLE.field_words(particles[q], "pos"))
                yield from ops.load_words(PARTICLE.field_words(particles[q], "vel"))

        def collide(particle_region) -> Iterator:
            """Collision update: five words (vel + scratch = 20 bytes)."""
            for w in PARTICLE.field_words(particle_region, "vel"):
                yield from ops.read_modify_write(w)
            for w in PARTICLE.field_words(particle_region, "scratch"):
                yield from ops.read_modify_write(w)

        def update_cell(cell_region) -> Iterator:
            """Fold a particle into its cell's aggregates."""
            yield from ops.read_modify_write(
                SPACE_CELL.field_word(cell_region, "count"))
            yield from ops.read_modify_write(
                SPACE_CELL.field_word(cell_region, "momentum", 0))
            yield from ops.read_modify_write(
                SPACE_CELL.field_word(cell_region, "energy", 0))

        def thread(tid: int) -> Iterator:
            mine = list(split_round_robin(self.num_particles, self.num_procs, tid))
            for step in range(self.time_steps):
                for p in mine:
                    c = cell_of[step][p]
                    lock = cell_locks[c]
                    yield from lock.acquire(tid)
                    yield from move(particles[p])
                    yield from scan_cell_mates(step, p)
                    yield ops.store(PARTICLE.field_word(particles[p], "cell"))
                    yield from update_cell(cells[c])
                    q = partners[step].get(p)
                    if q is not None:
                        # Both particles share cell c this step, so the one
                        # lock we hold protects both updates.
                        yield from collide(particles[p])
                        yield from collide(particles[q])
                    yield from lock.release(tid)
                yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_procs)]
