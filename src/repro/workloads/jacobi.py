"""JACOBI — iterative PDE solver on two grids (paper sections 5.0/6.0).

"Two 64x64 grid arrays of double precision floating point numbers (8 bytes
each) are modified in turn in each iteration.  A component in one grid is
updated by taking the average of the four neighbors of the same component
in the other grid.  After each iteration, the processors synchronize
through a barrier synchronization, a test for convergence is done and the
two arrays are switched.  In each iteration, one array is read only and the
other one is write only ...  Each of the 16 processors is assigned to the
update of a 16x16 subgrid."

Sharing structure reproduced here:

* 8-byte elements (two words) — true sharing halves from B=4 to B=8;
* row-major grids with square subgrid decomposition — a subgrid row is 16
  elements = 128 bytes, so false sharing jumps at B=256 when one block
  spans two processors' partitions;
* an ANL barrier per iteration whose counter and flag words are adjacent —
  the false-sharing source the paper identifies at B=8;
* a lock-protected global convergence accumulator.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier, Lock
from ..mem.allocator import Allocator
from .base import Workload


class Jacobi(Workload):
    """Jacobi iteration on two ``grid_dim`` x ``grid_dim`` grids.

    Parameters
    ----------
    grid_dim:
        Grid side length; must be divisible by the subgrid decomposition
        (``sqrt(num_procs)`` per side, so ``num_procs`` must be square).
    iterations:
        Number of sweeps (each ends with a barrier + convergence test).
    elem_words:
        Words per element (default 2: the paper's 8-byte doubles).
    padded_barrier:
        Pad the barrier's counter/flag pair to a block boundary (ablation
        knob; the paper's layout is unpadded).
    """

    name = "jacobi"

    def __init__(self, grid_dim: int = 64, iterations: int = 4, *,
                 elem_words: int = 2, padded_barrier: bool = False,
                 num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        side = math.isqrt(num_procs)
        if side * side != num_procs:
            raise ConfigError(
                f"jacobi needs a square processor count, got {num_procs}")
        if grid_dim % side:
            raise ConfigError(
                f"grid_dim {grid_dim} not divisible by decomposition side {side}")
        if iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        if elem_words < 1:
            raise ConfigError(f"elem_words must be >= 1, got {elem_words}")
        self.grid_dim = grid_dim
        self.iterations = iterations
        self.elem_words = elem_words
        self.padded_barrier = padded_barrier
        self._side = side

    @property
    def label(self) -> str:
        return f"JACOBI{self.grid_dim}"

    # ------------------------------------------------------------------
    def build_threads(self, allocator: Allocator) -> List:
        dim, ew = self.grid_dim, self.elem_words
        grid_words = dim * dim * ew
        grid_a = allocator.alloc_words("jacobi.gridA", grid_words)
        grid_b = allocator.alloc_words("jacobi.gridB", grid_words)
        barrier = Barrier("jacobi.barrier", allocator, self.num_threads,
                          padded=self.padded_barrier)
        conv_lock = Lock("jacobi.convlock", allocator)
        if self.padded_barrier:
            # The ablation isolates sync-word false sharing: keep every
            # synchronization word in its own block.
            allocator.pad_to(64)
        conv_sum = allocator.alloc_words("jacobi.convsum", 1)

        bases = (grid_a.base, grid_b.base)

        def elem(base: int, row: int, col: int) -> int:
            return base + (row * dim + col) * ew

        sub = dim // self._side

        def thread(tid: int) -> Iterator:
            row0 = (tid // self._side) * sub
            col0 = (tid % self._side) * sub
            for it in range(self.iterations):
                src = bases[it % 2]
                dst = bases[1 - it % 2]
                for r in range(row0, row0 + sub):
                    for c in range(col0, col0 + sub):
                        # Average of the four neighbours in the source grid
                        # (edges clamp; the clamped read still touches src).
                        for nr, nc in ((r - 1, c), (r + 1, c),
                                       (r, c - 1), (r, c + 1)):
                            nr = min(max(nr, 0), dim - 1)
                            nc = min(max(nc, 0), dim - 1)
                            base = elem(src, nr, nc)
                            yield from ops.load_words(range(base, base + ew))
                        base = elem(dst, r, c)
                        yield from ops.store_words(range(base, base + ew))
                # Convergence test: fold the local residual into a global
                # accumulator under a lock.
                yield from conv_lock.acquire(tid)
                yield from ops.read_modify_write(conv_sum.base)
                yield from conv_lock.release(tid)
                yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_threads)]

    @property
    def num_threads(self) -> int:
        return self.num_procs
