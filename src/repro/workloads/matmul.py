"""MATMUL — blocked matrix multiply (supplementary workload).

Not one of the paper's four traced benchmarks, but the paper names matrix
multiply (with FFT) as a class of "important parallel algorithms" where
words are accessed essentially once — exactly the programs on which
Torrellas' word-granular first-touch cold-miss rule degenerates ("the
classification is only applicable to iterative algorithms in which words
are accessed more than once", section 3.1).  The classifier-comparison
benchmark uses it to demonstrate that failure mode quantitatively.

C = A x B with C rows interleaved over processors; A and B are read-shared,
C words are each written once.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier
from ..mem.allocator import Allocator
from .base import Workload, split_round_robin


class MatMul(Workload):
    """``n`` x ``n`` matrix multiply, row-interleaved output."""

    name = "matmul"

    def __init__(self, n: int = 24, *, elem_words: int = 1,
                 num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        if n < 1:
            raise ConfigError(f"matrix dimension must be >= 1, got {n}")
        if elem_words < 1:
            raise ConfigError(f"elem_words must be >= 1, got {elem_words}")
        self.n = n
        self.elem_words = elem_words

    @property
    def label(self) -> str:
        return f"MATMUL{self.n}"

    def build_threads(self, allocator: Allocator) -> List:
        n, ew = self.n, self.elem_words
        a = allocator.alloc_words("matmul.A", n * n * ew)
        b = allocator.alloc_words("matmul.B", n * n * ew)
        c = allocator.alloc_words("matmul.C", n * n * ew)
        barrier = Barrier("matmul.barrier", allocator, self.num_procs)

        def elem(base: int, i: int, j: int) -> int:
            return base + (i * n + j) * ew

        def thread(tid: int) -> Iterator:
            # Initialization phase: processor 0 fills A and B (their values
            # then flow to everyone — cold/CTS traffic), everyone waits.
            if tid == 0:
                yield from ops.store_words(range(a.base, a.end))
                yield from ops.store_words(range(b.base, b.end))
            yield from barrier.wait(tid)
            for i in split_round_robin(n, self.num_procs, tid):
                for j in range(n):
                    for k in range(n):
                        yield from ops.load_words(
                            range(elem(a.base, i, k), elem(a.base, i, k) + ew))
                        yield from ops.load_words(
                            range(elem(b.base, k, j), elem(b.base, k, j) + ew))
                    yield from ops.store_words(
                        range(elem(c.base, i, j), elem(c.base, i, j) + ew))
            yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_procs)]
