"""Workload framework: parallel-program generators producing traces.

The paper traces four benchmarks (MP3D, WATER, LU, JACOBI) on a 16-processor
machine with the CacheMire test bench.  We cannot run the original binaries,
so each workload here is a from-scratch *generator*: a parallel program
written against :mod:`repro.execution` whose per-processor threads emit the
same sharing pattern — the data-structure byte layouts, the assignment of
objects to processors, and the ANL-macro synchronization the paper's
section 6 uses to explain every feature of its Figure 5 curves.

Every workload is deterministic given its configuration (including the
seed), and every generated trace is race-free under the happens-before
checker (asserted by the integration tests), as the paper requires for the
delayed protocols.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from ..errors import ConfigError
from ..execution.scheduler import Machine
from ..mem.allocator import Allocator
from ..trace.trace import Trace


class Workload(ABC):
    """A parallel program that generates a reference trace.

    Subclasses set :attr:`name`, validate their configuration in
    ``__init__`` and implement :meth:`build_threads`, which allocates the
    program's data from the given allocator and returns one generator per
    processor.
    """

    #: Workload family name ("mp3d", "water", "lu", "jacobi", ...).
    name: str = "?"

    def __init__(self, num_procs: int = 16, seed: int = 0):
        if num_procs <= 0:
            raise ConfigError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.seed = seed

    @abstractmethod
    def build_threads(self, allocator: Allocator) -> List:
        """Allocate program data and return one thread generator per processor."""

    def describe_config(self) -> Dict:
        """Configuration dictionary stored in the trace metadata."""
        return {k: v for k, v in vars(self).items() if not k.startswith("_")}

    @property
    def label(self) -> str:
        """Display label, e.g. ``"MP3D200"`` (subclasses refine)."""
        return self.name.upper()

    def generate(self, *, order: str = "rotate") -> Trace:
        """Run the program on the simulated machine and return its trace.

        The trace metadata records the configuration, the simulated
        data-set size (Table 2's DATA SET column) and the cycle count the
        speedup column derives from.
        """
        allocator = Allocator()
        threads = self.build_threads(allocator)
        machine = Machine(self.num_procs, order=order, seed=self.seed)
        meta = {"workload": self.name,
                "config": self.describe_config(),
                "data_set_bytes": allocator.used_bytes,
                # Top-level data-structure regions, so analyses can
                # attribute misses to the structures causing them
                # (see repro.analysis.attribution).
                "regions": [[r.name, r.base, r.words]
                            for r in allocator.regions]}
        return machine.run(threads, name=self.label, meta=meta)


def split_round_robin(count: int, num_procs: int, proc: int) -> range:
    """Indices owned by ``proc`` under fine interleaving (i % P == proc).

    The paper's LU columns and MP3D particles are distributed this way
    ("statically assigned to processors in a finely interleaved fashion").
    """
    return range(proc, count, num_procs)
