"""FFT — staged radix-2 transform (supplementary workload).

Like MATMUL, a non-iterative algorithm the paper cites (section 3.1) as
breaking Torrellas' first-touch cold-miss rule.  Also a useful stress for
the delayed protocols: each butterfly stage reads a partner element at a
stride that halves every stage, so the sharing pattern sweeps from
long-range (all cross-processor) to neighbour-range (mostly local, block
false sharing at partition edges).

Race-freedom uses the Jacobi trick: stages alternate between two arrays
(read source, write destination) with a barrier per stage.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..execution import ops
from ..execution.primitives import Barrier
from ..mem.allocator import Allocator
from ..mem.addresses import is_power_of_two
from .base import Workload


class FFT(Workload):
    """Radix-2 FFT over ``n`` complex points (``n`` a power of two).

    Points are 4 words (two double-precision components).  Point ``i`` is
    owned by processor ``i // (n / num_procs)`` (contiguous chunks).
    """

    name = "fft"

    def __init__(self, n: int = 256, *, num_procs: int = 16, seed: int = 0):
        super().__init__(num_procs=num_procs, seed=seed)
        if not is_power_of_two(n):
            raise ConfigError(f"FFT size must be a power of two, got {n}")
        if n < num_procs:
            raise ConfigError(f"FFT size {n} smaller than {num_procs} processors")
        self.n = n

    @property
    def label(self) -> str:
        return f"FFT{self.n}"

    ELEM_WORDS = 4  # complex double: re + im

    def build_threads(self, allocator: Allocator) -> List:
        n, ew = self.n, self.ELEM_WORDS
        src = allocator.alloc_words("fft.src", n * ew)
        dst = allocator.alloc_words("fft.dst", n * ew)
        barrier = Barrier("fft.barrier", allocator, self.num_procs)
        bases = (src.base, dst.base)
        chunk = n // self.num_procs
        stages = n.bit_length() - 1

        def elem(base: int, i: int) -> range:
            return range(base + i * ew, base + (i + 1) * ew)

        def thread(tid: int) -> Iterator:
            lo, hi = tid * chunk, (tid + 1) * chunk
            # Initialization: each processor fills its own chunk.
            yield from ops.store_words(range(src.base + lo * ew,
                                             src.base + hi * ew))
            yield from barrier.wait(tid)
            for stage in range(stages):
                rd = bases[stage % 2]
                wr = bases[1 - stage % 2]
                stride = n >> (stage + 1)
                for i in range(lo, hi):
                    partner = i ^ stride
                    yield from ops.load_words(elem(rd, i))
                    yield from ops.load_words(elem(rd, partner))
                    yield from ops.store_words(elem(wr, i))
                yield from barrier.wait(tid)
            return

        return [thread(tid) for tid in range(self.num_procs)]
