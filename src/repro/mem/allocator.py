"""Bump allocator over the simulated word-addressed memory.

Workload generators allocate their data structures (particle arrays, grid
arrays, lock words, ...) from an :class:`Allocator` so that the *relative*
layout — which objects share a cache block — matches what the paper
describes.  Alignment is expressed in bytes and regions can be named for
debugging and reporting (the data-set sizes of Table 2 are computed from the
allocator's high-water mark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import LayoutError
from .addresses import WORD_SIZE, bytes_to_words, is_power_of_two


@dataclass(frozen=True)
class Region:
    """A named, contiguous span of words handed out by the allocator."""

    name: str
    base: int            # first word address
    words: int           # length in words

    @property
    def end(self) -> int:
        """One past the last word address."""
        return self.base + self.words

    @property
    def nbytes(self) -> int:
        """Size in bytes."""
        return self.words * WORD_SIZE

    def word(self, index: int) -> int:
        """Word address of the ``index``-th word of the region."""
        if not 0 <= index < self.words:
            raise LayoutError(
                f"word index {index} out of range for region {self.name!r} "
                f"({self.words} words)")
        return self.base + index

    def __contains__(self, word_addr: int) -> bool:
        return self.base <= word_addr < self.end


@dataclass
class Allocator:
    """Sequential (bump) allocator.

    Parameters
    ----------
    base_word:
        First word address handed out.  Defaults to 0.
    """

    base_word: int = 0
    _next: int = field(init=False)
    _regions: List[Region] = field(init=False, default_factory=list)
    _by_name: Dict[str, Region] = field(init=False, default_factory=dict)

    def __post_init__(self):
        if self.base_word < 0:
            raise LayoutError(f"negative base word {self.base_word}")
        self._next = self.base_word

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc_bytes(self, name: str, nbytes: int, *, align_bytes: int = WORD_SIZE) -> Region:
        """Allocate ``nbytes`` (rounded up to whole words), aligned.

        ``align_bytes`` must be a power of two and a multiple of the word
        size.  Object sizes from the paper are deliberately *not* rounded to
        block boundaries — e.g. MP3D's 36-byte particles straddle 32-byte
        blocks, which is precisely what creates its false sharing.
        """
        if nbytes <= 0:
            raise LayoutError(f"cannot allocate {nbytes} bytes for {name!r}")
        if not is_power_of_two(align_bytes) or align_bytes % WORD_SIZE:
            raise LayoutError(
                f"alignment must be a power-of-two multiple of {WORD_SIZE} "
                f"bytes, got {align_bytes}")
        align_words = align_bytes // WORD_SIZE
        start = -(-self._next // align_words) * align_words
        region = Region(name=name, base=start, words=bytes_to_words(nbytes))
        self._next = region.end
        self._register(region)
        return region

    def alloc_words(self, name: str, nwords: int, *, align_bytes: int = WORD_SIZE) -> Region:
        """Allocate ``nwords`` words (see :meth:`alloc_bytes`)."""
        return self.alloc_bytes(name, nwords * WORD_SIZE, align_bytes=align_bytes)

    def alloc_array(self, name: str, count: int, elem_bytes: int,
                    *, align_bytes: int = WORD_SIZE) -> List[Region]:
        """Allocate ``count`` back-to-back elements of ``elem_bytes`` each.

        Elements are packed contiguously (no per-element padding) exactly as
        a C array of structs would be; only the array start is aligned.
        Returns one :class:`Region` per element, named ``name[i]``.
        """
        if count <= 0:
            raise LayoutError(f"cannot allocate array {name!r} of {count} elements")
        elem_words = bytes_to_words(elem_bytes)
        block = self.alloc_words(name, count * elem_words, align_bytes=align_bytes)
        elems = []
        for i in range(count):
            elem = Region(name=f"{name}[{i}]", base=block.base + i * elem_words,
                          words=elem_words)
            elems.append(elem)
        return elems

    def pad_to(self, align_bytes: int) -> None:
        """Advance the bump pointer to the next ``align_bytes`` boundary."""
        if not is_power_of_two(align_bytes) or align_bytes % WORD_SIZE:
            raise LayoutError(f"bad padding alignment {align_bytes}")
        align_words = align_bytes // WORD_SIZE
        self._next = -(-self._next // align_words) * align_words

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _register(self, region: Region) -> None:
        if region.name in self._by_name:
            raise LayoutError(f"duplicate region name {region.name!r}")
        self._regions.append(region)
        self._by_name[region.name] = region

    def region(self, name: str) -> Region:
        """Look a region up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise LayoutError(f"no region named {name!r}") from None

    @property
    def regions(self) -> List[Region]:
        """All top-level regions, in allocation order."""
        return list(self._regions)

    @property
    def used_words(self) -> int:
        """High-water mark in words (the simulated data-set size)."""
        return self._next - self.base_word

    @property
    def used_bytes(self) -> int:
        """High-water mark in bytes."""
        return self.used_words * WORD_SIZE

    def owner_of(self, word_addr: int) -> Region | None:
        """Region containing ``word_addr``, or None (linear scan; debug aid)."""
        for region in self._regions:
            if word_addr in region:
                return region
        return None
