"""Simulated memory layout: addresses, allocation, record layouts."""

from .addresses import (
    BlockMap,
    CACHE_BLOCK_BYTES,
    PAPER_BLOCK_SIZES,
    VSM_BLOCK_BYTES,
    WORD_SIZE,
    bytes_to_words,
    is_power_of_two,
    words_to_bytes,
)
from .allocator import Allocator, Region
from .layout import (
    ANL_BARRIER,
    ANL_LOCK,
    Field,
    PARTICLE,
    SPACE_CELL,
    StructLayout,
    WATER_MOLECULE,
    padded_layout,
)

__all__ = [
    "ANL_BARRIER",
    "ANL_LOCK",
    "Allocator",
    "BlockMap",
    "CACHE_BLOCK_BYTES",
    "Field",
    "PAPER_BLOCK_SIZES",
    "PARTICLE",
    "Region",
    "SPACE_CELL",
    "StructLayout",
    "VSM_BLOCK_BYTES",
    "WATER_MOLECULE",
    "WORD_SIZE",
    "bytes_to_words",
    "is_power_of_two",
    "padded_layout",
    "words_to_bytes",
]
