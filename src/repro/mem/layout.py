"""Declarative record layouts for the benchmark data structures.

The paper's section 6 explains each benchmark's sharing behaviour in terms
of the byte layout of its records — particles are 36 bytes, space cells 48,
water molecules 680, the ANL barrier is a counter and a flag in adjacent
words.  :class:`StructLayout` lets workloads declare those layouts once and
then resolve field word-addresses for any instance allocated from a
:class:`~repro.mem.allocator.Region`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import LayoutError
from .addresses import WORD_SIZE, bytes_to_words
from .allocator import Region


@dataclass(frozen=True)
class Field:
    """One field of a record: a name plus a size in bytes."""

    name: str
    nbytes: int

    def __post_init__(self):
        if self.nbytes <= 0:
            raise LayoutError(f"field {self.name!r} has size {self.nbytes}")
        if self.nbytes % WORD_SIZE:
            raise LayoutError(
                f"field {self.name!r} size {self.nbytes} is not a whole "
                f"number of {WORD_SIZE}-byte words")

    @property
    def words(self) -> int:
        return self.nbytes // WORD_SIZE


class StructLayout:
    """Packed record layout: fields placed back to back, no padding.

    >>> particle = StructLayout("particle", [("pos", 12), ("vel", 12),
    ...                                      ("cell", 4), ("props", 8)])
    >>> particle.nbytes
    36
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]):
        self.name = name
        self.fields: List[Field] = [Field(fname, fbytes) for fname, fbytes in fields]
        if not self.fields:
            raise LayoutError(f"struct {name!r} has no fields")
        self._offsets: Dict[str, int] = {}
        offset_words = 0
        for f in self.fields:
            if f.name in self._offsets:
                raise LayoutError(f"duplicate field {f.name!r} in struct {name!r}")
            self._offsets[f.name] = offset_words
            offset_words += f.words
        self._total_words = offset_words

    @property
    def nbytes(self) -> int:
        """Total record size in bytes."""
        return self._total_words * WORD_SIZE

    @property
    def words(self) -> int:
        """Total record size in words."""
        return self._total_words

    def offset_words(self, field: str) -> int:
        """Word offset of ``field`` from the start of the record."""
        try:
            return self._offsets[field]
        except KeyError:
            raise LayoutError(f"struct {self.name!r} has no field {field!r}") from None

    def field(self, name: str) -> Field:
        """The :class:`Field` named ``name``."""
        for f in self.fields:
            if f.name == name:
                return f
        raise LayoutError(f"struct {self.name!r} has no field {name!r}")

    def field_words(self, region: Region, field: str) -> range:
        """Word addresses of ``field`` within an instance at ``region``.

        ``region`` must be at least one record long; the instance is assumed
        to start at ``region.base``.
        """
        if region.words < self._total_words:
            raise LayoutError(
                f"region {region.name!r} ({region.words} words) too small for "
                f"struct {self.name!r} ({self._total_words} words)")
        f = self.field(field)
        base = region.base + self._offsets[field]
        return range(base, base + f.words)

    def field_word(self, region: Region, field: str, index: int = 0) -> int:
        """Single word address: the ``index``-th word of ``field``."""
        words = self.field_words(region, field)
        if not 0 <= index < len(words):
            raise LayoutError(
                f"word index {index} out of range for field {field!r} "
                f"({len(words)} words)")
        return words[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StructLayout({self.name!r}, {self.nbytes} bytes)"


# ----------------------------------------------------------------------
# Layouts taken from the paper's section 6 descriptions.
# ----------------------------------------------------------------------

#: MP3D particle: 36 bytes, finely interleaved among processors.  Position
#: and velocity (3 floats each), the cell index and two scratch words.  A
#: collision updates five words (20 bytes) of each colliding particle
#: (velocity + scratch), matching "five words of the data structures of the
#: two particles are updated".
PARTICLE = StructLayout("particle", [
    ("pos", 12),       # x, y, z position
    ("vel", 12),       # x, y, z velocity
    ("cell", 4),       # index of the containing space cell
    ("scratch", 8),    # per-particle bookkeeping
])

#: MP3D space cell: 48 bytes.
SPACE_CELL = StructLayout("space_cell", [
    ("count", 4),        # particles currently in the cell
    ("density", 8),      # accumulated density (double)
    ("momentum", 24),    # 3 doubles
    ("energy", 8),       # double
    ("pad", 4),
])

#: WATER molecule: 680 bytes.  The inter-molecular force computation
#: modifies nine double words (72 bytes) of the *other* molecule's record
#: ("a part of the other molecule's data structure, corresponding to nine
#: double words (72 bytes), is modified").
WATER_MOLECULE = StructLayout("molecule", [
    ("forces", 72),      # 9 doubles: modified during inter-molecular phase
    ("positions", 216),  # 27 doubles: 3 atoms x 3 coords x 3 derivatives
    ("velocities", 216),
    ("accels", 144),
    ("energy", 32),
])

#: ANL-macro barrier: a counter and a flag in consecutive memory words.
#: The paper attributes false sharing at 8-byte blocks in JACOBI, WATER16
#: and MP3D1000 to exactly this adjacency.
ANL_BARRIER = StructLayout("anl_barrier", [
    ("counter", 4),
    ("flag", 4),
])

#: A simple spin lock occupies one word.
ANL_LOCK = StructLayout("anl_lock", [
    ("lockword", 4),
])


def padded_layout(layout: StructLayout, align_bytes: int) -> StructLayout:
    """Return a copy of ``layout`` padded up to ``align_bytes``.

    Used by the ablation benchmarks to show that padding the ANL barrier (or
    the MP3D particle) removes the corresponding false-sharing component.
    """
    if align_bytes % WORD_SIZE:
        raise LayoutError(f"bad alignment {align_bytes}")
    pad = -layout.nbytes % align_bytes
    fields = [(f.name, f.nbytes) for f in layout.fields]
    if pad:
        fields.append(("_pad", pad))
    return StructLayout(layout.name + f"_padded{align_bytes}", fields)
