"""Word/block address arithmetic.

The library addresses memory in 4-byte words (:data:`repro.trace.events.WORD_SIZE`).
Cache blocks are power-of-two numbers of bytes, at least one word.  A
:class:`BlockMap` captures one block-size configuration and converts between
word addresses and block addresses.

The classification of a trace depends on the block size only through this
mapping (paper section 2.1), so every classifier and protocol takes a
``BlockMap``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..trace.events import WORD_SIZE


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class BlockMap:
    """Address mapping for one cache-block size.

    Parameters
    ----------
    block_bytes:
        Cache block (line/page) size in bytes.  Must be a power of two and a
        multiple of the word size.  The paper sweeps 4..1024 bytes.
    """

    block_bytes: int

    def __post_init__(self):
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(f"block size must be a power of two, got {self.block_bytes}")
        if self.block_bytes < WORD_SIZE:
            raise ConfigError(
                f"block size must be at least one word ({WORD_SIZE} bytes), "
                f"got {self.block_bytes}")

    @property
    def words_per_block(self) -> int:
        """Number of words in one block."""
        return self.block_bytes // WORD_SIZE

    @property
    def offset_bits(self) -> int:
        """log2(words_per_block) — shift from word address to block address."""
        return (self.words_per_block).bit_length() - 1

    def block_of(self, word_addr: int) -> int:
        """Block address containing ``word_addr``."""
        return word_addr >> self.offset_bits

    def word_offset(self, word_addr: int) -> int:
        """Offset of ``word_addr`` within its block, in words."""
        return word_addr & (self.words_per_block - 1)

    def base_word(self, block_addr: int) -> int:
        """First word address of block ``block_addr``."""
        return block_addr << self.offset_bits

    def words_of(self, block_addr: int) -> range:
        """All word addresses contained in block ``block_addr``."""
        base = self.base_word(block_addr)
        return range(base, base + self.words_per_block)

    def same_block(self, a: int, b: int) -> bool:
        """True if word addresses ``a`` and ``b`` fall in the same block."""
        return self.block_of(a) == self.block_of(b)

    def contains(self, block_addr: int, word_addr: int) -> bool:
        """True if ``word_addr`` lies inside block ``block_addr``."""
        return self.block_of(word_addr) == block_addr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockMap(block_bytes={self.block_bytes})"


def bytes_to_words(n_bytes: int, *, round_up: bool = True) -> int:
    """Convert a byte count to words; rounds up by default."""
    if n_bytes < 0:
        raise ConfigError(f"negative byte count {n_bytes}")
    if round_up:
        return (n_bytes + WORD_SIZE - 1) // WORD_SIZE
    if n_bytes % WORD_SIZE:
        raise ConfigError(f"{n_bytes} bytes is not a whole number of words")
    return n_bytes // WORD_SIZE


def words_to_bytes(n_words: int) -> int:
    """Convert a word count to bytes."""
    if n_words < 0:
        raise ConfigError(f"negative word count {n_words}")
    return n_words * WORD_SIZE


#: The block sizes swept by the paper's Figure 5 (bytes).
PAPER_BLOCK_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Block size representative of hardware caches in Figure 6a.
CACHE_BLOCK_BYTES = 64

#: Block size representative of virtual shared memory pages in Figure 6b.
VSM_BLOCK_BYTES = 1024
