"""repro — reproduction of Dubois et al., ISCA 1993:

*The Detection and Elimination of Useless Misses in Multiprocessors.*

Public API highlights
---------------------
* :func:`repro.classify.classify` / :class:`repro.classify.DuboisClassifier`
  — the paper's essential/useless miss classification (Appendix A), plus
  the Eggers and Torrellas schemes it is compared against.
* :mod:`repro.protocols` — the seven invalidation schedules
  (MIN/OTF/RD/SD/SRD/WBWI/MAX) and a finite-cache extension.
* :mod:`repro.workloads` — MP3D/WATER/LU/JACOBI trace generators running on
  a simulated 16-processor machine (:mod:`repro.execution`).
* :mod:`repro.analysis` — block-size sweeps and the paper's tables/figures.
* :mod:`repro.trace` — trace model, I/O, interleaving, race validation.

Quickstart
----------
>>> from repro import TraceBuilder, classify_trace
>>> trace = (TraceBuilder(num_procs=2)
...          .store(0, 0).load(1, 0).store(0, 1).load(1, 1).build("fig1"))
>>> classify_trace(trace, block_bytes=8).essential
3
"""

from . import analysis, classify, execution, mem, protocols, trace, workloads
from .classify import (
    DuboisBreakdown,
    DuboisClassifier,
    EggersClassifier,
    MissClass,
    SimpleBreakdown,
    TorrellasClassifier,
    classify as classify_trace,
    compare_classifications,
)
from .mem import BlockMap, PAPER_BLOCK_SIZES, WORD_SIZE
from .protocols import ProtocolResult, run_protocol, run_protocols
from .trace import Trace, TraceBuilder
from .workloads import make_workload, suite

__version__ = "1.0.0"

__all__ = [
    "BlockMap",
    "DuboisBreakdown",
    "DuboisClassifier",
    "EggersClassifier",
    "MissClass",
    "PAPER_BLOCK_SIZES",
    "ProtocolResult",
    "SimpleBreakdown",
    "TorrellasClassifier",
    "Trace",
    "TraceBuilder",
    "WORD_SIZE",
    "__version__",
    "analysis",
    "classify",
    "classify_trace",
    "compare_classifications",
    "execution",
    "make_workload",
    "mem",
    "protocols",
    "run_protocol",
    "run_protocols",
    "suite",
    "trace",
    "workloads",
]
