"""Cross-cutting invariants of the classification and protocols.

These encode the paper's analytic claims (section 2.1, 3.3, 7.0) as
checkable predicates.  They are used both by the test suite (property
tests) and by the benchmarks (shape assertions in EXPERIMENTS.md).

Every function returns a list of human-readable violation strings (empty ==
invariant holds) so benchmarks can report rather than crash.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..classify.compare import ClassificationComparison
from ..classify.dubois import DuboisClassifier
from ..mem.addresses import BlockMap
from ..protocols.results import ProtocolResult
from ..trace.trace import Trace
from .sweep import SweepResult


def check_block_size_monotonicity(sweep: SweepResult) -> List[str]:
    """Section 2.1: essential misses and cold misses cannot increase with

    the block size; neither can CTS+PTS."""
    violations = []
    prev = None
    for bb, bd in zip(sweep.block_sizes, sweep.breakdowns):
        if prev is not None:
            pbb, pbd = prev
            if bd.essential > pbd.essential:
                violations.append(
                    f"essential misses grew {pbd.essential} -> {bd.essential} "
                    f"from B={pbb} to B={bb}")
            if bd.cold > pbd.cold:
                violations.append(
                    f"cold misses grew {pbd.cold} -> {bd.cold} "
                    f"from B={pbb} to B={bb}")
            if bd.cts + bd.pts > pbd.cts + pbd.pts:
                violations.append(
                    f"CTS+PTS grew {pbd.cts + pbd.pts} -> {bd.cts + bd.pts} "
                    f"from B={pbb} to B={bb}")
        prev = (bb, bd)
    return violations


def check_min_is_essential(trace: Trace, min_result: ProtocolResult,
                           *, exact: bool = False) -> List[str]:
    """MIN's misses equal (or, in the documented corner case, undercut)

    the Appendix A essential count; they can never exceed it."""
    bd = DuboisClassifier.classify_trace(
        trace, BlockMap(min_result.block_bytes))
    violations = []
    if min_result.misses > bd.essential:
        violations.append(
            f"MIN misses {min_result.misses} exceed essential {bd.essential}")
    if exact and min_result.misses != bd.essential:
        violations.append(
            f"MIN misses {min_result.misses} != essential {bd.essential}")
    if min_result.breakdown.pfs:
        violations.append(
            f"MIN produced {min_result.breakdown.pfs} false-sharing misses")
    return violations


def check_protocol_ordering(results: Dict[str, ProtocolResult],
                            *, synchronized: bool = True) -> List[str]:
    """MAX >= OTF always; on synchronized traces the delayed protocols and

    WBWI sit between MIN and OTF (send-delay alone may exceed OTF, which
    the paper notes can happen — Figure 2 — so SD is exempt)."""
    violations = []

    def misses(name: str) -> Optional[int]:
        r = results.get(name)
        return None if r is None else r.misses

    otf, mx, mn = misses("OTF"), misses("MAX"), misses("MIN")
    if otf is not None and mx is not None and mx < otf:
        violations.append(f"MAX {mx} < OTF {otf}")
    if synchronized and otf is not None and mn is not None:
        for name in ("RD", "SRD", "WBWI"):
            m = misses(name)
            if m is None:
                continue
            if m > otf:
                violations.append(f"{name} {m} > OTF {otf}")
            if m < mn:
                violations.append(f"{name} {m} < MIN {mn}")
    return violations


def check_eggers_tsm_subset_torrellas(trace: Trace,
                                      block_bytes: int) -> List[str]:
    """Section 3.2: "any true sharing miss in Eggers' classification must

    also be a true sharing miss in Torrellas'."  Taken per miss, with one
    refinement the paper leaves implicit: Torrellas may file the very same
    miss under *cold* when the missed word is a first touch (its cold rule
    is word-granular).  So the checkable implication is

        Eggers-TSM  =>  Torrellas-TSM or Torrellas-CM,

    verified miss-by-miss (both schemes classify the identical miss stream
    at miss time, so labels align by position)."""
    from ..classify.eggers import EggersClassifier
    from ..classify.torrellas import TorrellasClassifier

    bm = BlockMap(block_bytes)
    eg_labels: List[str] = []
    to_labels: List[str] = []
    eg = EggersClassifier(trace.num_procs, bm, labels=eg_labels)
    to = TorrellasClassifier(trace.num_procs, bm, labels=to_labels)
    for proc, op, addr in trace.events:
        if op in (0, 1):
            eg.access(proc, op, addr)
            to.access(proc, op, addr)
    eg.finish()
    to.finish()
    violations = []
    if len(eg_labels) != len(to_labels):
        return [f"miss streams disagree: {len(eg_labels)} vs {len(to_labels)}"]
    for i, (e, t) in enumerate(zip(eg_labels, to_labels)):
        if e == "TSM" and t == "FSM":
            violations.append(
                f"miss #{i}: Eggers TSM classified FSM by Torrellas")
    return violations


def check_total_miss_agreement(cmp: ClassificationComparison) -> List[str]:
    """All three schemes classify the same set of block misses, so their

    totals coincide."""
    ours, eg, to = cmp.ours.total, cmp.eggers.total, cmp.torrellas.total
    if not ours == eg == to:
        return [f"totals disagree: ours={ours} eggers={eg} torrellas={to}"]
    return []


def check_cold_agreement_ours_eggers(cmp: ClassificationComparison) -> List[str]:
    """Ours and Eggers both define cold misses block-wise: counts match."""
    if cmp.ours.cold != cmp.eggers.cold:
        return [f"COLD-ours {cmp.ours.cold} != COLD-Eggers {cmp.eggers.cold}"]
    return []


def check_all(trace: Trace, sweep: SweepResult,
              comparisons: Sequence[ClassificationComparison]) -> List[str]:
    """Run every classification invariant; returns all violations."""
    violations = list(check_block_size_monotonicity(sweep))
    for cmp in comparisons:
        violations += check_eggers_tsm_subset_torrellas(trace, cmp.block_bytes)
        violations += check_total_miss_agreement(cmp)
        violations += check_cold_agreement_ours_eggers(cmp)
    return violations
