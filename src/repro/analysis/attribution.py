"""Per-data-structure miss attribution.

The paper explains each benchmark's Figure 5 curve by pointing at specific
data structures ("false sharing misses are due to modifications of
particles and of space cells", "parts of the false sharing ... because of
the particular implementation of barriers").  This module makes that
analysis mechanical: every miss is attributed to the region (data
structure) containing the *word whose access missed*, producing a
per-region five-way breakdown.

Workload-generated traces carry their region table in
``trace.meta["regions"]``; any ``[(name, base_word, words), ...]`` table
works.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..classify.breakdown import DuboisBreakdown, MissClass
from ..classify.dubois import DuboisClassifier
from ..errors import ConfigError
from ..mem.addresses import BlockMap
from ..trace.trace import Trace
from .report import format_table

#: Label for misses on words outside every region.
UNMAPPED = "<unmapped>"


class RegionTable:
    """Sorted lookup from word address to region name."""

    def __init__(self, regions: Sequence[Tuple[str, int, int]]):
        cleaned = sorted((int(base), int(words), str(name))
                         for name, base, words in regions)
        self._bases: List[int] = []
        self._ends: List[int] = []
        self._names: List[str] = []
        last_end = -1
        for base, words, name in cleaned:
            if words <= 0:
                raise ConfigError(f"region {name!r} has size {words}")
            if base < last_end:
                raise ConfigError(
                    f"region {name!r} overlaps its predecessor")
            self._bases.append(base)
            self._ends.append(base + words)
            self._names.append(name)
            last_end = base + words

    @classmethod
    def from_trace(cls, trace: Trace) -> "RegionTable":
        """Build from ``trace.meta['regions']`` (workload-generated traces)."""
        regions = trace.meta.get("regions")
        if not regions:
            raise ConfigError(
                "trace carries no region table (meta['regions']); pass "
                "regions explicitly")
        return cls([(r[0], r[1], r[2]) for r in regions])

    def name_of(self, word_addr: int) -> str:
        """Region name containing ``word_addr`` (or :data:`UNMAPPED`)."""
        i = bisect_right(self._bases, word_addr) - 1
        if i >= 0 and word_addr < self._ends[i]:
            return self._names[i]
        return UNMAPPED

    @property
    def names(self) -> List[str]:
        return list(self._names)


@dataclass(frozen=True)
class AttributionResult:
    """Misses grouped by data structure at one block size."""

    trace_name: str
    block_bytes: int
    by_region: Dict[str, DuboisBreakdown]

    def top_false_sharers(self, limit: int = 5) -> List[Tuple[str, int]]:
        """Regions ranked by useless (PFS) misses."""
        ranked = sorted(((name, bd.pfs) for name, bd in self.by_region.items()),
                        key=lambda kv: -kv[1])
        return [kv for kv in ranked[:limit] if kv[1] > 0]

    def format(self) -> str:
        headers = ["region", "PC", "CTS", "CFS", "PTS", "PFS", "total"]
        rows = []
        for name, bd in sorted(self.by_region.items(),
                               key=lambda kv: -kv[1].total):
            rows.append([name, bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs,
                         bd.total])
        return format_table(
            headers, rows,
            title=f"{self.trace_name} @ B={self.block_bytes}: misses by "
                  f"data structure")


def attribute_misses(trace: Trace, block_bytes: int,
                     regions: Optional[Sequence[Tuple[str, int, int]]] = None
                     ) -> AttributionResult:
    """Classify ``trace`` and attribute every miss to a data structure.

    A miss is charged to the region containing the word whose access
    triggered it.  (A block can span regions; charging the faulting word
    is what identifies the structure whose *access pattern* pays for the
    miss — e.g. a barrier flag read that keeps missing because the
    adjacent counter word is write-shared.)
    """
    table = (RegionTable(regions) if regions is not None
             else RegionTable.from_trace(trace))
    records: List = []
    DuboisClassifier.classify_trace(trace, BlockMap(block_bytes),
                                    record_misses=True, out_records=records)
    counts: Dict[str, Dict[MissClass, int]] = {}
    for record in records:
        name = table.name_of(record.word)
        per = counts.setdefault(name, {mc: 0 for mc in MissClass})
        per[record.mclass] += 1
    refs = sum(1 for _, op, _ in trace.events if op in (0, 1))
    by_region = {
        name: DuboisBreakdown(pc=per[MissClass.PC], cts=per[MissClass.CTS],
                              cfs=per[MissClass.CFS], pts=per[MissClass.PTS],
                              pfs=per[MissClass.PFS], data_refs=refs)
        for name, per in counts.items()}
    return AttributionResult(trace_name=trace.name or "<anonymous>",
                             block_bytes=block_bytes, by_region=by_region)
