"""Prefetching potential analysis (paper section 2.0).

"PC misses can be eliminated by preloading blocks in the cache.  CFS
misses can be eliminated by preloading blocks in the cache if we also have
a technique to detect and eliminate false sharing misses.  CTS misses
cannot be eliminated."

The five-way classification therefore yields three miss-rate *floors*:

``baseline``
    The plain essential rate (what MIN achieves).
``preload``
    Perfect block preloading: PC misses gone.  CFS misses remain — the
    preloaded block would be invalidated by the remote store before its
    (never-consumed) values are needed, so the processor still misses.
``preload + useless-miss elimination``
    Perfect preloading on a MIN-like word-invalidate system: PC and CFS
    both gone.  Only CTS + PTS — the irreducible interprocessor
    communication — remains.

These floors bound what *any* prefetcher can do on the trace; the spread
between them measures how much of the cold traffic is layout (CFS) versus
compulsory communication (CTS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..classify.breakdown import DuboisBreakdown
from ..classify.dubois import DuboisClassifier
from ..mem.addresses import BlockMap, PAPER_BLOCK_SIZES
from ..trace.trace import Trace
from .report import format_table


@dataclass(frozen=True)
class PrefetchFloors:
    """Miss-rate floors for one (trace, block size) pair (percent)."""

    block_bytes: int
    breakdown: DuboisBreakdown

    @property
    def baseline(self) -> float:
        """Essential miss rate: nothing eliminated."""
        return self.breakdown.essential_rate

    @property
    def with_preload(self) -> float:
        """Perfect preloading eliminates PC misses only."""
        b = self.breakdown
        return b.rate(b.essential - b.pc)

    @property
    def with_preload_and_wi(self) -> float:
        """Preloading + word invalidation eliminates PC and CFS."""
        b = self.breakdown
        return b.rate(b.essential - b.pc - b.cfs)

    @property
    def irreducible(self) -> float:
        """The communication floor: CTS + PTS."""
        b = self.breakdown
        return b.rate(b.cts + b.pts)

    def as_row(self) -> List:
        return [self.block_bytes,
                f"{self.baseline:.2f}",
                f"{self.with_preload:.2f}",
                f"{self.with_preload_and_wi:.2f}",
                f"{self.irreducible:.2f}"]


@dataclass(frozen=True)
class PrefetchAnalysis:
    """Prefetch floors across block sizes for one trace."""

    trace_name: str
    floors: Dict[int, PrefetchFloors]

    def format(self) -> str:
        headers = ["B", "essential%", "+preload%", "+preload+WI%",
                   "CTS+PTS%"]
        rows = [self.floors[bb].as_row() for bb in sorted(self.floors)]
        return format_table(
            headers, rows,
            title=f"{self.trace_name}: prefetching miss-rate floors")


def prefetch_analysis(trace: Trace,
                      block_sizes: Optional[Sequence[int]] = None
                      ) -> PrefetchAnalysis:
    """Compute the three prefetching floors at each block size."""
    sizes = tuple(block_sizes or PAPER_BLOCK_SIZES)
    floors = {}
    for bb in sizes:
        bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
        floors[bb] = PrefetchFloors(block_bytes=bb, breakdown=bd)
    return PrefetchAnalysis(trace_name=trace.name or "<anonymous>",
                            floors=floors)
