"""Single-generation sweep engine.

The paper's experiments (Figures 5/6, Tables 1/2) all re-run one interleaved
trace at many block sizes, under several classifiers and protocols.  The
engine makes that cheap by doing every shareable piece of work exactly once:

* **Generate once** — a workload trace is generated a single time and cached
  in memory and on disk (:class:`~repro.trace.cache.WorkloadTraceCache`,
  keyed by workload/config/seed/version).
* **Precompute once** — :class:`SharedPrecompute` decodes the columnar
  trace's data rows a single time (vectorized data-op prefilter), derives
  acquire/release indices and per-processor segments, and caches the
  per-block-size derived columns (block ids via one vectorized
  ``addr >> shift``) shared by every cell at that block size.
* **Fan out the grid** — the (block size × classifier/protocol) cells are
  independent, so with ``jobs > 1`` they run on a ``multiprocessing`` fork
  pool; the forked workers inherit the trace and its precompute without
  serialization.

Typical use::

    engine = SweepEngine.for_workload("MP3D200", jobs=4)
    panel = engine.classify_sweep()              # Figure 5 panel
    grid = engine.protocol_grid((64, 1024))      # Figure 6 cells
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..classify.breakdown import DuboisBreakdown, SimpleBreakdown
from ..classify.compare import ClassificationComparison
from ..classify.dubois import DuboisClassifier
from ..classify.eggers import EggersClassifier
from ..classify.torrellas import TorrellasClassifier
from ..errors import ConfigError
from ..mem.addresses import BlockMap, PAPER_BLOCK_SIZES
from ..protocols.results import ProtocolResult
from ..protocols.runner import ALL_PROTOCOLS, make_protocol
from ..trace.cache import WorkloadTraceCache
from ..trace.events import ACQUIRE, RELEASE, STORE
from ..trace.trace import Trace
from .sweep import SweepResult

#: Classifier registry for grid cells.
CLASSIFIERS = {
    "dubois": DuboisClassifier,
    "eggers": EggersClassifier,
    "torrellas": TorrellasClassifier,
}

# A grid cell: (kind, block_bytes, which) with kind in
# {"classify", "compare", "protocol"} and which naming the classifier or
# protocol ("compare" ignores it).
Cell = Tuple[str, int, Optional[str]]


class SharedPrecompute:
    """Derived columns of one trace, shared across every sweep cell.

    Everything here is computed at most once per trace (lazily) no matter
    how many block sizes, classifiers or protocols consume it:

    * ``data`` — the columnar data-only rows (LOAD/STORE prefilter);
    * :meth:`data_rows` — those rows decoded to plain-int lists, which is
      what the streaming classifier loops iterate;
    * :meth:`data_blocks` / :meth:`data_offset_bits` — per-block-size
      derived columns (one vectorized shift/mask each, then decoded once);
    * ``acquire_indices`` / ``release_indices`` — global positions of the
      synchronization events (the delayed protocols' schedule points);
    * :meth:`per_processor_segments` — each processor's event positions.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self.columns = trace.columns()
        self.data = self.columns.data_only()
        sync = self.columns.sync_indices()
        self.acquire_indices = sync[ACQUIRE]
        self.release_indices = sync[RELEASE]
        self._rows: Optional[Tuple[list, list, list]] = None
        self._blocks: Dict[int, list] = {}
        self._offset_bits: Dict[int, list] = {}
        self._active_rows: Dict[int, Tuple[tuple, int]] = {}
        self._segments: Optional[List] = None

    def data_rows(self) -> Tuple[list, list, list]:
        """``(procs, ops, addrs)`` of the data rows, decoded once."""
        if self._rows is None:
            self._rows = (self.data.proc.tolist(), self.data.op.tolist(),
                          self.data.addr.tolist())
        return self._rows

    def data_blocks(self, block_map: BlockMap) -> list:
        """Precomputed block address per data row at one block size."""
        bits = block_map.offset_bits
        if bits not in self._blocks:
            self._blocks[bits] = self.data.block_ids(bits).tolist()
        return self._blocks[bits]

    def data_offset_bits(self, block_map: BlockMap) -> list:
        """Precomputed ``1 << word_offset`` per data row at one block size.

        Computed from the vectorized offsets; the shift stays in Python
        because ``1 << offset`` can exceed 63 bits for large blocks.
        """
        wpb = block_map.words_per_block
        if wpb not in self._offset_bits:
            offsets = self.data.word_offsets(wpb).tolist()
            self._offset_bits[wpb] = [1 << o for o in offsets]
        return self._offset_bits[wpb]

    def dubois_active_rows(self, block_map: BlockMap
                           ) -> Tuple[Optional[tuple], int]:
        """Data rows that can change Dubois state at one block size.

        Returns ``((procs, ops, addrs, blocks), dropped)`` where the lists
        hold only *active* rows and ``dropped`` is the number of elided
        rows (they still count as data references).

        A read is provably a no-op in the Appendix A algorithm when it is
        not the first access by its processor to its block and no *other*
        processor ever stores to that block anywhere in the trace: the
        reader's presence bit is then already set and can never have been
        cleared (only a remote store clears it), and its C flag can never
        be set (only a remote store sets it).  Dropping such reads leaves
        every state transition — and therefore every count — identical.
        Stores and first touches are always kept.  The filter itself is a
        handful of vectorized passes over the columnar arrays.

        Returns ``(None, 0)`` when the filter does not apply (processor
        counts that overflow an int64 bitmask).
        """
        bits = block_map.offset_bits
        if bits not in self._active_rows:
            num_procs = self.trace.num_procs
            if num_procs > 62:
                self._active_rows[bits] = (None, 0)
                return self._active_rows[bits]
            blocks = self.data.block_ids(bits)
            procs = self.data.proc
            store = self.data.op == STORE
            proc_bits = np.int64(1) << procs
            unique_blocks, inverse = np.unique(blocks, return_inverse=True)
            writers = np.zeros(len(unique_blocks), dtype=np.int64)
            np.bitwise_or.at(writers, inverse[store], proc_bits[store])
            keep = store | ((writers[inverse] & ~proc_bits) != 0)
            pair_key = inverse * np.int64(num_procs) + procs
            _, first_touch = np.unique(pair_key, return_index=True)
            keep[first_touch] = True
            dropped = int(len(keep) - keep.sum())
            if dropped == 0:
                rows = None  # nothing elided: reuse the shared full rows
            else:
                rows = (self.data.proc[keep].tolist(),
                        self.data.op[keep].tolist(),
                        self.data.addr[keep].tolist(),
                        blocks[keep].tolist())
            self._active_rows[bits] = (rows, dropped)
        return self._active_rows[bits]

    def per_processor_segments(self) -> List:
        """Index array of each processor's events (program order)."""
        if self._segments is None:
            self._segments = self.columns.per_processor_indices(
                self.trace.num_procs)
        return self._segments

    # ------------------------------------------------------------------
    # cell execution
    # ------------------------------------------------------------------
    def run_classifier(self, which: str, block_bytes: int
                       ) -> Union[DuboisBreakdown, SimpleBreakdown]:
        """Run one classifier cell over the shared decoded rows."""
        try:
            cls = CLASSIFIERS[which]
        except KeyError:
            raise ConfigError(
                f"unknown classifier {which!r}; known: "
                f"{sorted(CLASSIFIERS)}") from None
        block_map = BlockMap(block_bytes)
        clf = cls(self.trace.num_procs, block_map)
        if which == "dubois":
            rows, dropped = self.dubois_active_rows(block_map)
            if rows is not None:
                clf.feed_data(*rows)
                # Elided no-op reads still count as data references.
                return dataclasses.replace(clf.finish(),
                                           data_refs=clf._data_refs + dropped)
        procs, ops, addrs = self.data_rows()
        blocks = self.data_blocks(block_map)
        if which == "eggers":
            clf.feed_data(procs, ops, addrs, blocks,
                          self.data_offset_bits(block_map))
        else:
            clf.feed_data(procs, ops, addrs, blocks)
        return clf.finish()

    def run_comparison(self, block_bytes: int) -> ClassificationComparison:
        """Run all three classifiers (one Table 1 column) in one cell."""
        return ClassificationComparison(
            trace_name=self.trace.name or "<anonymous>",
            block_bytes=block_bytes,
            ours=self.run_classifier("dubois", block_bytes),
            eggers=self.run_classifier("eggers", block_bytes),
            torrellas=self.run_classifier("torrellas", block_bytes),
        )

    def run_protocol(self, name: str, block_bytes: int) -> ProtocolResult:
        """Run one protocol cell over the shared trace.

        The trace's decoded event list is materialized once per process and
        shared by every protocol cell (the runner batching path).
        """
        protocol = make_protocol(name, self.trace.num_procs,
                                 BlockMap(block_bytes))
        return protocol.run(self.trace)

    def run_cell(self, cell: Cell):
        kind, block_bytes, which = cell
        if kind == "classify":
            return self.run_classifier(which, block_bytes)
        if kind == "compare":
            return self.run_comparison(block_bytes)
        if kind == "protocol":
            return self.run_protocol(which, block_bytes)
        raise ConfigError(f"unknown grid cell kind {kind!r}")


# ----------------------------------------------------------------------
# fork-pool plumbing
# ----------------------------------------------------------------------
# The forked workers inherit this module-level state from the parent; with
# the fork start method nothing is pickled.
_FORK_PRECOMPUTE: Optional[SharedPrecompute] = None


def _run_cell_in_worker(cell: Cell):
    return _FORK_PRECOMPUTE.run_cell(cell)


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SweepEngine:
    """Generate-once, precompute-once, fan-out experiment driver.

    Parameters
    ----------
    trace:
        The interleaved trace every grid cell runs over.
    jobs:
        Worker processes for grid fan-out.  ``1`` (default) runs serially
        in-process; ``None`` or ``0`` means one per CPU.  Parallel execution
        requires the ``fork`` start method (it is skipped, falling back to
        serial, where unavailable).
    """

    def __init__(self, trace: Trace, *, jobs: int = 1):
        self.trace = trace
        self.jobs = 1 if jobs == 1 else _resolve_jobs(jobs)
        self._precompute: Optional[SharedPrecompute] = None

    @classmethod
    def for_workload(cls, name: str, *, jobs: int = 1,
                     cache: Optional[WorkloadTraceCache] = None,
                     cache_dir: Optional[str] = None) -> "SweepEngine":
        """Build an engine over a named workload's cached trace.

        The trace is generated at most once per (workload, config, seed,
        version) and reloaded from ``cache_dir`` afterwards.
        """
        cache = cache or WorkloadTraceCache(cache_dir)
        return cls(cache.get(name), jobs=jobs)

    @property
    def precompute(self) -> SharedPrecompute:
        """The trace's shared derived columns (built lazily, cached)."""
        if self._precompute is None:
            self._precompute = SharedPrecompute(self.trace)
        return self._precompute

    # ------------------------------------------------------------------
    # grid execution
    # ------------------------------------------------------------------
    def run_grid(self, cells: Sequence[Cell]) -> List:
        """Run every cell, returning results in cell order."""
        pre = self.precompute
        jobs = min(self.jobs, len(cells)) if cells else 1
        if jobs > 1 and "fork" in multiprocessing.get_all_start_methods():
            # Warm the shared state in the parent so every forked worker
            # inherits it instead of re-deriving it per process.
            pre.data_rows()
            global _FORK_PRECOMPUTE
            _FORK_PRECOMPUTE = pre
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(processes=jobs) as pool:
                    return pool.map(_run_cell_in_worker, cells, chunksize=1)
            finally:
                _FORK_PRECOMPUTE = None
        return [pre.run_cell(cell) for cell in cells]

    # ------------------------------------------------------------------
    # the paper's sweeps
    # ------------------------------------------------------------------
    def classify_sweep(self, block_sizes: Optional[Sequence[int]] = None,
                       *, classifier: str = "dubois") -> SweepResult:
        """Figure 5 panel: one classifier across block sizes."""
        sizes = tuple(block_sizes or PAPER_BLOCK_SIZES)
        cells = [("classify", bb, classifier) for bb in sizes]
        breakdowns = tuple(self.run_grid(cells))
        return SweepResult(trace_name=self.trace.name or "<anonymous>",
                           block_sizes=sizes, breakdowns=breakdowns)

    def compare_sweep(self, block_sizes: Optional[Sequence[int]] = None
                      ) -> Dict[int, ClassificationComparison]:
        """Table 1 columns: the three-way comparison across block sizes."""
        sizes = tuple(block_sizes or PAPER_BLOCK_SIZES)
        cells = [("compare", bb, None) for bb in sizes]
        return dict(zip(sizes, self.run_grid(cells)))

    def protocol_grid(self, block_sizes: Sequence[int],
                      protocols: Optional[Sequence[str]] = None
                      ) -> Dict[Tuple[int, str], ProtocolResult]:
        """Figure 6 cells: every (block size × protocol) combination."""
        names = list(protocols) if protocols is not None else list(ALL_PROTOCOLS)
        sizes = tuple(block_sizes)
        cells = [("protocol", bb, name) for bb in sizes for name in names]
        results = self.run_grid(cells)
        return {(bb, name): result
                for (_, bb, name), result in zip(cells, results)}
