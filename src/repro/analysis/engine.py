"""Single-generation sweep engine.

The paper's experiments (Figures 5/6, Tables 1/2) all re-run one interleaved
trace at many block sizes, under several classifiers and protocols.  The
engine makes that cheap by doing every shareable piece of work exactly once:

* **Generate once** — a workload trace is generated a single time and cached
  in memory and on disk (:class:`~repro.trace.cache.WorkloadTraceCache`,
  keyed by workload/config/seed/version).
* **Precompute once** — :class:`SharedPrecompute` decodes the columnar
  trace's data rows a single time (vectorized data-op prefilter), derives
  acquire/release indices and per-processor segments, and caches the
  per-block-size derived columns (block ids via one vectorized
  ``addr >> shift``) shared by every cell at that block size.
* **Fan out the grid** — the (block size × classifier/protocol) cells are
  independent, so with ``jobs > 1`` they run on supervised ``fork``
  workers (:class:`repro.runtime.supervisor.Supervisor`) that inherit the
  trace and its precompute without serialization.  The supervisor detects
  dead workers, kills hung cells at ``timeout`` and retries under
  ``retry``; a cell that keeps failing in workers degrades to one serial
  in-process attempt before the run aborts with a structured
  :class:`~repro.errors.CellFailedError` carrying the partial grid.
* **Checkpoint completed cells** — with ``checkpoint_dir`` set, every
  finished cell is journaled durably (keyed by the trace's cache key), so
  a killed paper-scale sweep resumes re-running only the incomplete cells.

Typical use::

    engine = SweepEngine.for_workload("MP3D200", jobs=4,
                                      checkpoint_dir="~/.cache/repro/ckpt")
    panel = engine.classify_sweep()              # Figure 5 panel
    grid = engine.protocol_grid((64, 1024))      # Figure 6 cells
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import re
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..classify.breakdown import DuboisBreakdown, SimpleBreakdown
from ..classify.compare import ClassificationComparison
from ..classify.dubois import DuboisClassifier
from ..classify.eggers import EggersClassifier
from ..classify.torrellas import TorrellasClassifier
from ..errors import (
    ConfigError,
    InvariantViolationError,
    ResourceExhaustedError,
)
from ..kernels import (
    CLASSIFIER_KERNELS,
    KernelContext,
    PROTOCOL_KERNELS,
    resolve_kernel,
    validate_kernel_mode,
)
from ..mem.addresses import BlockMap, PAPER_BLOCK_SIZES
from ..obs import RunTelemetry, current_run
from ..obs.recorder import get_recorder
from ..protocols.finite import (
    FiniteOTFProtocol,
    cache_geometry,
    finite_spec,
    parse_finite_spec,
)
from ..protocols.results import ProtocolResult, merge_shard_results
from ..protocols.runner import ALL_PROTOCOLS, make_protocol
from ..protocols.sharding import (
    BY_BLOCK,
    SHARDABLE_PROTOCOLS,
    PartitionDim,
    ShardPlan,
    by_cache_set,
    plan_shards,
    run_finite_shard,
    run_protocol_shard,
)
from ..runtime.checkpoint import CheckpointJournal
from ..runtime.faults import FaultPlan
from ..runtime.resources import (
    degradation_rungs,
    estimate_cell_bytes,
    format_size,
    plan_admission,
    resolve_memory_budget,
    warn_resource,
)
from ..runtime import signals
from ..runtime.retry import RetryPolicy
from ..runtime.supervisor import Supervisor
from ..runtime.transport import TcpTransport, handshake_spec, parse_hosts
from ..trace.cache import WorkloadTraceCache, workload_cache_key
from ..trace.events import ACQUIRE, RELEASE, STORE
from ..trace.trace import Trace
from .sweep import SweepResult

logger = logging.getLogger(__name__)

#: Classifier registry for grid cells.
CLASSIFIERS = {
    "dubois": DuboisClassifier,
    "eggers": EggersClassifier,
    "torrellas": TorrellasClassifier,
}

# A grid cell: (kind, block_bytes, which) with kind in {"classify",
# "compare", "protocol", "finite"} and which naming the classifier,
# protocol or finite-cache spec (``finite_spec``; "compare" ignores it).
# The two-level scheduler additionally emits *shard* subtasks —
# ("<kind>-shard", block_bytes, which, plan_digest, shard_index) — whose
# results are per-shard partials merged back into the parent cell's
# result.  The plan digest in the tuple makes checkpoint journal keys
# shard-plan-aware: a resumed sweep reuses a partial only under the exact
# same partition (the digest also embeds the partition dimension, so
# by-block and by-cache-set partials can never mix).
Cell = Tuple[str, int, Optional[str]]


def _feed_chunked(clf, *cols) -> None:
    """Feed a classifier its columns in heartbeat-sized slices.

    All three classifier ``feed_data`` implementations are re-entrant
    (their cursors live on ``self``), so slicing the columns and calling
    repeatedly is state-identical to one big call.  Between slices the
    engine ticks the runtime's progress counter, which both feeds the
    worker heartbeat (stall watchdog) and acts as a cancellation point
    for graceful shutdown — at zero per-event cost inside the hot loops.
    """
    n = len(cols[0])
    step = signals.HEARTBEAT_CHUNK
    if n <= step:
        clf.feed_data(*cols)
        signals.note_progress(n)
        return
    for start in range(0, n, step):
        clf.feed_data(*(c[start:start + step] for c in cols))
        signals.note_progress(min(step, n - start))


def partition_dim_for(cell: Cell) -> Optional[PartitionDim]:
    """The partition dimension one cell (or shard subtask) shards along.

    Protocol, classify and compare cells all partition ``by-block`` (the
    classifiers reuse the protocols' dimension without sync replication);
    finite-cache cells partition ``by-cache-set`` for their geometry.
    Returns ``None`` for kinds that never shard.
    """
    kind = cell[0]
    if kind.endswith("-shard"):
        kind = kind[:-len("-shard")]
    if kind == "finite":
        capacity, ways = parse_finite_spec(cell[2])
        return by_cache_set(cache_geometry(capacity, ways)[0])
    if kind in ("protocol", "classify", "compare"):
        return BY_BLOCK
    return None


class SharedPrecompute:
    """Derived columns of one trace, shared across every sweep cell.

    Everything here is computed at most once per trace (lazily) no matter
    how many block sizes, classifiers or protocols consume it:

    * ``data`` — the columnar data-only rows (LOAD/STORE prefilter);
    * :meth:`data_rows` — those rows decoded to plain-int lists, which is
      what the streaming classifier loops iterate;
    * :meth:`data_blocks` / :meth:`data_offset_bits` — per-block-size
      derived columns (one vectorized shift/mask each, then decoded once);
    * ``acquire_indices`` / ``release_indices`` — global positions of the
      synchronization events (the delayed protocols' schedule points);
    * :meth:`per_processor_segments` — each processor's event positions.
    """

    def __init__(self, trace: Trace, kernel: str = "auto"):
        self.trace = trace
        self.kernel = validate_kernel_mode(kernel)
        self.columns = trace.columns()
        self.data = self.columns.data_only()
        sync = self.columns.sync_indices()
        self.acquire_indices = sync[ACQUIRE]
        self.release_indices = sync[RELEASE]
        #: Heartbeat/batch accounting of the most recent vectorized cell
        #: (``{"rows": ..., "batches": ...}``), reset per :meth:`run_cell`
        #: and surfaced as the ``kernel.batch`` telemetry metric.
        self.last_kernel_stats: Dict[str, int] = {}
        self._kctx = None
        self._shard_ctx: Optional[Tuple[Tuple, KernelContext]] = None
        self._rows: Optional[Tuple[list, list, list]] = None
        self._blocks: Dict[int, list] = {}
        self._offset_bits: Dict[int, list] = {}
        self._keep_masks: Dict[int, Optional[np.ndarray]] = {}
        self._active_rows: Dict[int, Tuple[tuple, int]] = {}
        self._segments: Optional[List] = None
        self._shard_plans: Dict[Tuple[str, int, int], ShardPlan] = {}
        self._plans_by_digest: Dict[str, ShardPlan] = {}

    def resolve_cell(self, kind: str, which) -> str:
        """The execution path one cell kind takes under this precompute's
        kernel mode (``"vectorized"`` or ``"interpreted"``)."""
        return resolve_kernel(self.kernel, kind, which)

    def kernel_context(self) -> "KernelContext":
        """The full-batch vectorized context, built once per trace.

        Word-granularity tables inside it are block-size independent, so
        every vectorized cell of a sweep shares this one context; only
        the per-block-size views differ (cached inside the context).
        """
        if self._kctx is None:
            self._kctx = KernelContext.from_columns(self.data,
                                                    self.trace.num_procs)
        return self._kctx

    def _shard_kernel_context(self, digest: str, shard: int,
                              sel: np.ndarray) -> "KernelContext":
        """An ephemeral context over one shard's data rows.

        A shard keeps whole (block, processor) histories, so kernels over
        the subset reproduce the oracle-on-subtrace exactly (the kernels'
        order-only legality argument).  One slot is cached so the three
        classifiers of a compare-shard share a context, like the full
        batch does.
        """
        key = (digest, shard)
        if self._shard_ctx is None or self._shard_ctx[0] != key:
            ctx = KernelContext(self.data.proc[sel], self.data.op[sel],
                                self.data.addr[sel], self.trace.num_procs)
            self._shard_ctx = (key, ctx)
        return self._shard_ctx[1]

    def data_rows(self) -> Tuple[list, list, list]:
        """``(procs, ops, addrs)`` of the data rows, decoded once."""
        if self._rows is None:
            self._rows = (self.data.proc.tolist(), self.data.op.tolist(),
                          self.data.addr.tolist())
        return self._rows

    def data_blocks(self, block_map: BlockMap) -> list:
        """Precomputed block address per data row at one block size."""
        bits = block_map.offset_bits
        if bits not in self._blocks:
            self._blocks[bits] = self.data.block_ids(bits).tolist()
        return self._blocks[bits]

    def data_offset_bits(self, block_map: BlockMap) -> list:
        """Precomputed ``1 << word_offset`` per data row at one block size.

        Computed from the vectorized offsets; the shift stays in Python
        because ``1 << offset`` can exceed 63 bits for large blocks.
        """
        wpb = block_map.words_per_block
        if wpb not in self._offset_bits:
            offsets = self.data.word_offsets(wpb).tolist()
            self._offset_bits[wpb] = [1 << o for o in offsets]
        return self._offset_bits[wpb]

    def dubois_keep_mask(self, block_map: BlockMap) -> Optional[np.ndarray]:
        """Boolean mask over the data rows of the Appendix A *active* rows.

        A read is provably a no-op in the Appendix A algorithm when it is
        not the first access by its processor to its block and no *other*
        processor ever stores to that block anywhere in the trace: the
        reader's presence bit is then already set and can never have been
        cleared (only a remote store clears it), and its C flag can never
        be set (only a remote store sets it).  Dropping such reads leaves
        every state transition — and therefore every count — identical.
        Stores and first touches are always kept.  The filter itself is a
        handful of vectorized passes over the columnar arrays.

        Since the criterion is per (block, processor), the mask composes
        with block sharding: a shard feeds its rows where the mask holds
        and re-adds its own dropped-row count to ``data_refs``.

        Returns ``None`` when the filter does not apply (processor counts
        that overflow an int64 bitmask).
        """
        bits = block_map.offset_bits
        if bits not in self._keep_masks:
            num_procs = self.trace.num_procs
            if num_procs > 62:
                self._keep_masks[bits] = None
                return None
            blocks = self.data.block_ids(bits)
            procs = self.data.proc
            store = self.data.op == STORE
            proc_bits = np.int64(1) << procs
            unique_blocks, inverse = np.unique(blocks, return_inverse=True)
            writers = np.zeros(len(unique_blocks), dtype=np.int64)
            np.bitwise_or.at(writers, inverse[store], proc_bits[store])
            keep = store | ((writers[inverse] & ~proc_bits) != 0)
            pair_key = inverse * np.int64(num_procs) + procs
            _, first_touch = np.unique(pair_key, return_index=True)
            keep[first_touch] = True
            self._keep_masks[bits] = keep
        return self._keep_masks[bits]

    def dubois_active_rows(self, block_map: BlockMap
                           ) -> Tuple[Optional[tuple], int]:
        """Data rows that can change Dubois state at one block size.

        Returns ``((procs, ops, addrs, blocks), dropped)`` where the lists
        hold only *active* rows (per :meth:`dubois_keep_mask`) and
        ``dropped`` is the number of elided rows (they still count as data
        references).  Returns ``(None, 0)`` when the filter does not apply.
        """
        bits = block_map.offset_bits
        if bits not in self._active_rows:
            keep = self.dubois_keep_mask(block_map)
            if keep is None:
                self._active_rows[bits] = (None, 0)
                return self._active_rows[bits]
            dropped = int(len(keep) - keep.sum())
            if dropped == 0:
                rows = None  # nothing elided: reuse the shared full rows
            else:
                rows = (self.data.proc[keep].tolist(),
                        self.data.op[keep].tolist(),
                        self.data.addr[keep].tolist(),
                        self.data.block_ids(bits)[keep].tolist())
            self._active_rows[bits] = (rows, dropped)
        return self._active_rows[bits]

    # ------------------------------------------------------------------
    # shard plans (the intra-cell parallelism level)
    # ------------------------------------------------------------------
    def shard_plan(self, block_map: BlockMap, num_shards: int,
                   dim: PartitionDim = BY_BLOCK) -> ShardPlan:
        """Balanced partition for one (block size, dimension), cached.

        Plans are built in the parent before workers fork, so every shard
        worker of a cell inherits the same partition and resolves it by
        digest without recomputation or serialization.  Cells sharing a
        dimension share one plan per block size (protocol and classifier
        cells both partition ``by-block``).
        """
        key = (dim.name, block_map.offset_bits, num_shards)
        if key not in self._shard_plans:
            plan = plan_shards(self.data.block_ids(block_map.offset_bits),
                               block_map.offset_bits, num_shards, dim=dim)
            self._shard_plans[key] = plan
            self._plans_by_digest[plan.digest] = plan
        return self._shard_plans[key]

    def plan_by_digest(self, digest: str) -> ShardPlan:
        """Resolve a fork-inherited shard plan from a shard cell's digest."""
        try:
            return self._plans_by_digest[digest]
        except KeyError:
            raise ConfigError(
                f"no shard plan with digest {digest!r} in this precompute "
                f"(plans must be built before workers fork)") from None

    def per_processor_segments(self) -> List:
        """Index array of each processor's events (program order)."""
        if self._segments is None:
            self._segments = self.columns.per_processor_indices(
                self.trace.num_procs)
        return self._segments

    # ------------------------------------------------------------------
    # cell execution
    # ------------------------------------------------------------------
    def run_classifier(self, which: str, block_bytes: int
                       ) -> Union[DuboisBreakdown, SimpleBreakdown]:
        """Run one classifier cell over the shared decoded rows."""
        try:
            cls = CLASSIFIERS[which]
        except KeyError:
            raise ConfigError(
                f"unknown classifier {which!r}; known: "
                f"{sorted(CLASSIFIERS)}") from None
        block_map = BlockMap(block_bytes)
        if self.resolve_cell("classify", which) == "vectorized":
            # data_refs counts every data row either way: the kernel sees
            # the full batch, so nothing needs re-adding (the interpreted
            # path's elision re-adds its dropped rows for the same total).
            return CLASSIFIER_KERNELS[which](
                self.kernel_context(), block_map,
                stats=self.last_kernel_stats)
        clf = cls(self.trace.num_procs, block_map)
        if which == "dubois":
            rows, dropped = self.dubois_active_rows(block_map)
            if rows is not None:
                _feed_chunked(clf, *rows)
                # Elided no-op reads still count as data references.
                return dataclasses.replace(clf.finish(),
                                           data_refs=clf.data_refs + dropped)
        procs, ops, addrs = self.data_rows()
        blocks = self.data_blocks(block_map)
        if which == "eggers":
            _feed_chunked(clf, procs, ops, addrs, blocks,
                          self.data_offset_bits(block_map))
        else:
            _feed_chunked(clf, procs, ops, addrs, blocks)
        return clf.finish()

    def run_comparison(self, block_bytes: int) -> ClassificationComparison:
        """Run all three classifiers (one Table 1 column) in one cell."""
        return ClassificationComparison(
            trace_name=self.trace.name or "<anonymous>",
            block_bytes=block_bytes,
            ours=self.run_classifier("dubois", block_bytes),
            eggers=self.run_classifier("eggers", block_bytes),
            torrellas=self.run_classifier("torrellas", block_bytes),
        )

    def run_protocol(self, name: str, block_bytes: int) -> ProtocolResult:
        """Run one protocol cell over the shared trace.

        The trace's decoded event list is materialized once per process and
        shared by every protocol cell (the runner batching path).
        """
        if self.resolve_cell("protocol", name) == "vectorized":
            return PROTOCOL_KERNELS[name](
                self.kernel_context(), BlockMap(block_bytes),
                trace_name=self.trace.name or "<anonymous>",
                stats=self.last_kernel_stats)
        protocol = make_protocol(name, self.trace.num_procs,
                                 BlockMap(block_bytes))
        return protocol.run(self.trace)

    def run_finite(self, spec: str, block_bytes: int) -> ProtocolResult:
        """Run one finite-cache cell (``finite_spec`` geometry) serially."""
        capacity, ways = parse_finite_spec(spec)
        protocol = FiniteOTFProtocol(self.trace.num_procs,
                                     BlockMap(block_bytes), capacity,
                                     ways=ways)
        return protocol.run(self.trace)

    def run_protocol_shard(self, name: str, block_bytes: int,
                           digest: str, shard: int) -> ProtocolResult:
        """Run one protocol over one block shard (a partial result).

        The vectorized path feeds the shard's data rows to the same
        kernel the full cell uses (sync rows are no-ops for the kernelled
        protocols), so shard partials merge bit-identically to both the
        interpreted shards and the unsharded cell.
        """
        if self.resolve_cell("protocol", name) == "vectorized":
            plan = self.plan_by_digest(digest)
            block_map = BlockMap(block_bytes)
            blocks = self.data.block_ids(block_map.offset_bits)
            sel = plan.shard_of_rows(blocks) == shard
            ctx = self._shard_kernel_context(digest, shard, sel)
            return PROTOCOL_KERNELS[name](
                ctx, block_map,
                trace_name=self.trace.name or "<anonymous>",
                stats=self.last_kernel_stats)
        return run_protocol_shard(name, self.trace, block_bytes,
                                  self.plan_by_digest(digest), shard)

    def run_finite_shard(self, spec: str, block_bytes: int,
                         digest: str, shard: int) -> ProtocolResult:
        """Run the finite cache over one ``by-cache-set`` shard (partial)."""
        capacity, ways = parse_finite_spec(spec)
        return run_finite_shard(self.trace, block_bytes, capacity,
                                self.plan_by_digest(digest), shard,
                                ways=ways)

    def run_classifier_shard(self, which: str, block_bytes: int,
                             digest: str, shard: int
                             ) -> Union[DuboisBreakdown, SimpleBreakdown]:
        """Run one classifier over one block shard (a partial result).

        All three classifiers ignore synchronization events, so the shard
        feed is exactly the shard's data rows (no sync replication).  The
        Dubois feed additionally composes with the no-op read elision
        mask; the shard's own elided rows are re-added to ``data_refs`` so
        partials sum to the full count.
        """
        if which not in CLASSIFIERS:
            raise ConfigError(
                f"classifier {which!r} is not block-shardable")
        block_map = BlockMap(block_bytes)
        plan = self.plan_by_digest(digest)
        blocks = self.data.block_ids(block_map.offset_bits)
        sel = plan.shard_of_rows(blocks) == shard
        if self.resolve_cell("classify", which) == "vectorized":
            ctx = self._shard_kernel_context(digest, shard, sel)
            return CLASSIFIER_KERNELS[which](
                ctx, block_map, stats=self.last_kernel_stats)
        clf = CLASSIFIERS[which](self.trace.num_procs, block_map)
        if which == "dubois":
            dropped = 0
            keep = self.dubois_keep_mask(block_map)
            if keep is not None:
                dropped = int((sel & ~keep).sum())
                sel &= keep
            _feed_chunked(clf, self.data.proc[sel].tolist(),
                          self.data.op[sel].tolist(),
                          self.data.addr[sel].tolist(),
                          blocks[sel].tolist())
            return dataclasses.replace(clf.finish(),
                                       data_refs=clf.data_refs + dropped)
        procs = self.data.proc[sel].tolist()
        ops = self.data.op[sel].tolist()
        addrs = self.data.addr[sel].tolist()
        blks = blocks[sel].tolist()
        if which == "eggers":
            offsets = self.data.word_offsets(
                block_map.words_per_block)[sel].tolist()
            _feed_chunked(clf, procs, ops, addrs, blks,
                          [1 << o for o in offsets])
        else:
            _feed_chunked(clf, procs, ops, addrs, blks)
        return clf.finish()

    def run_comparison_shard(self, block_bytes: int, digest: str,
                             shard: int) -> ClassificationComparison:
        """Run all three classifiers over one block shard (partial).

        Mirrors :meth:`run_comparison` per shard — one shared shard
        selection, three state machines — so per-shard comparisons merge
        (``+``) to the serial cell bit-identically.
        """
        return ClassificationComparison(
            trace_name=self.trace.name or "<anonymous>",
            block_bytes=block_bytes,
            ours=self.run_classifier_shard("dubois", block_bytes,
                                           digest, shard),
            eggers=self.run_classifier_shard("eggers", block_bytes,
                                             digest, shard),
            torrellas=self.run_classifier_shard("torrellas", block_bytes,
                                                digest, shard),
        )

    def run_cell(self, cell: Cell):
        """Dispatch one cell (or shard subtask), timed as a telemetry span.

        This is the single instrumentation point of cell execution: the
        supervisor's workers, the serial path and the degraded fallback
        all funnel through here, so every attempt — wherever it ran —
        leaves a ``cell.run``/``shard.run`` span (``status="error"`` when
        it raised) plus row-count and throughput metrics.  With telemetry
        off the wrapper is a single attribute check.
        """
        rec = get_recorder()
        stats = self.last_kernel_stats = {}
        if not rec.active:
            return self._dispatch_cell(cell)
        kind = cell[0]
        name = "shard.run" if kind.endswith("-shard") else "cell.run"
        base = kind[:-len("-shard")] if kind.endswith("-shard") else kind
        try:
            kernel = self.resolve_cell(base, cell[2])
        except ConfigError:  # malformed cell: the dispatch will raise too
            kernel = None
        try:
            dim = partition_dim_for(cell)
        except ConfigError:  # malformed spec: the dispatch will raise too
            dim = None
        dim_name = dim.name if dim is not None else None
        rows = len(self.data.proc)
        if name == "shard.run":
            try:
                rows = -(-rows // self.plan_by_digest(cell[3]).num_shards)
            except ConfigError:  # unknown plan: keep the full-trace count
                pass
        wall = time.time()
        t0 = time.monotonic()
        try:
            result = self._dispatch_cell(cell)
        except BaseException:
            rec.span_complete(name, time.monotonic() - t0, status="error",
                              t=wall, cell=list(cell), rows=rows,
                              partition_dim=dim_name, kernel=kernel)
            raise
        dur = time.monotonic() - t0
        rec.span_complete(name, dur, t=wall, cell=list(cell), rows=rows,
                          partition_dim=dim_name, kernel=kernel)
        rec.metric("cell.rows", rows, cell=list(cell))
        if dur > 0:
            rec.metric("cell.events_per_sec", round(rows / dur, 1),
                       unit="events/s", cell=list(cell))
        if stats.get("batches"):
            rec.metric("kernel.batch", stats["batches"],
                       cell=list(cell), rows=stats["rows"],
                       events_per_batch=round(stats["rows"]
                                              / stats["batches"], 1))
        return result

    def _dispatch_cell(self, cell: Cell):
        kind, block_bytes, which = cell[:3]
        if kind == "classify":
            return self.run_classifier(which, block_bytes)
        if kind == "compare":
            return self.run_comparison(block_bytes)
        if kind == "protocol":
            return self.run_protocol(which, block_bytes)
        if kind == "finite":
            return self.run_finite(which, block_bytes)
        if kind == "protocol-shard":
            return self.run_protocol_shard(which, block_bytes,
                                           cell[3], cell[4])
        if kind == "classify-shard":
            return self.run_classifier_shard(which, block_bytes,
                                             cell[3], cell[4])
        if kind == "compare-shard":
            return self.run_comparison_shard(block_bytes, cell[3], cell[4])
        if kind == "finite-shard":
            return self.run_finite_shard(which, block_bytes,
                                         cell[3], cell[4])
        raise ConfigError(f"unknown grid cell kind {kind!r}")


# ----------------------------------------------------------------------
# execution options
# ----------------------------------------------------------------------
def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        # Respect the CPU affinity mask (cgroup/container limits) rather
        # than the raw core count, so constrained runs don't oversubscribe.
        try:
            return len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


@dataclasses.dataclass(frozen=True)
class ExecutionOptions:
    """Resilience knobs threaded from the CLI into :class:`SweepEngine`.

    Everything defaults to the engine's own defaults, so ``None`` (or a
    default-constructed instance) reproduces plain engine behaviour.
    """

    #: Retry policy for failed/hung cells (``None``: engine default).
    retry: Optional[RetryPolicy] = None
    #: Per-cell wall-clock timeout in seconds (``None``: no timeout).
    timeout: Optional[float] = None
    #: Journal completed cells under this directory and resume from it
    #: (``None``: no checkpointing; ``""``: the default checkpoint dir).
    checkpoint_dir: Optional[str] = None
    #: Raise :class:`~repro.errors.InvariantViolationError` on a post-cell
    #: invariant violation instead of warning.
    strict_invariants: bool = False
    #: Deterministic fault injection (tests only).
    fault_plan: Optional[FaultPlan] = None
    #: Block shards per shardable cell (``None``/``0``: automatic — split
    #: spare workers when the grid has fewer cells than jobs; ``1``:
    #: disable intra-cell sharding).
    shards: Optional[int] = None
    #: Memory budget in bytes for the whole sweep (``--memory-budget``);
    #: ``None`` falls back to ``$REPRO_MEMORY_BUDGET``, else ungoverned.
    memory_budget: Optional[int] = None
    #: Record run telemetry (spans, metrics, manifest) under this
    #: directory (``--telemetry``); ``None`` disables recording.
    telemetry_dir: Optional[str] = None
    #: Execution-path selection (``--kernel``): ``auto`` runs vectorized
    #: kernels where available, ``vectorized`` requires NumPy,
    #: ``interpreted`` forces the streaming oracles everywhere.
    kernel: str = "auto"
    #: Remote worker runners joining the sweep (``--hosts h1:p,h2:p``);
    #: ``None`` keeps execution on this machine.
    hosts: Optional[str] = None

    def engine_kwargs(self) -> dict:
        return {"retry": self.retry, "timeout": self.timeout,
                "checkpoint_dir": self.checkpoint_dir,
                "strict_invariants": self.strict_invariants,
                "fault_plan": self.fault_plan,
                "shards": self.shards,
                "memory_budget": self.memory_budget,
                "telemetry_dir": self.telemetry_dir,
                "kernel": self.kernel,
                "hosts": self.hosts}


class SweepEngine:
    """Generate-once, precompute-once, fan-out experiment driver.

    Parameters
    ----------
    trace:
        The interleaved trace every grid cell runs over.
    jobs:
        Worker processes for grid fan-out.  ``1`` (default) runs serially
        in-process; ``None`` or ``0`` means one per available CPU (the
        affinity mask, not the raw core count).  Parallel execution
        requires the ``fork`` start method (it is skipped, falling back to
        serial, where unavailable).
    retry:
        :class:`~repro.runtime.retry.RetryPolicy` for failed or hung grid
        cells (default: 3 worker attempts with capped exponential
        backoff, then one serial in-process fallback attempt).
    timeout:
        Per-cell wall-clock seconds before a worker is presumed hung and
        its cell retried.  ``None`` (default) disables the timeout.
    checkpoint_dir:
        When set, every completed cell is journaled durably under this
        directory, keyed by ``(trace key, cell)``, and a later run over
        the same trace skips the journaled cells.  ``""`` selects
        :func:`repro.runtime.checkpoint.default_checkpoint_dir`.
    strict_invariants:
        Escalate post-cell invariant violations from warnings to
        :class:`~repro.errors.InvariantViolationError`.
    fault_plan:
        Deterministic :class:`~repro.runtime.faults.FaultPlan` (tests).
    shards:
        Intra-cell shards per shardable cell (protocol, classify, compare
        and multi-set finite cells, each along its partition dimension —
        see :func:`partition_dim_for`).  ``None`` or ``0`` (default) is
        automatic:
        the two-level scheduler keeps plain grid fan-out while there are
        at least as many cells as jobs, and splits the spare workers into
        ``ceil(jobs / cells)`` shards per cell when the grid is smaller
        than the machine.  ``1`` disables sharding; an explicit ``P >= 2``
        forces ``P`` shards per shardable cell regardless of grid size.
        Sharded cells merge to results bit-identical to unsharded runs.
    memory_budget:
        Total memory budget for the sweep in bytes (``--memory-budget``).
        ``None`` falls back to ``$REPRO_MEMORY_BUDGET``; when neither is
        set the sweep is ungoverned.  With a budget, preflight admission
        (:func:`repro.runtime.resources.plan_admission`) clamps worker
        concurrency (and may raise the shard count) so the estimated
        footprints fit, and every worker soft-caps its address space at
        its fair share via ``RLIMIT_AS``.  An over-budget worker raises a
        clean ``MemoryError`` that — like a kernel SIGKILL — moves the
        sweep down the degradation ladder (halve workers, raise shards,
        then serial in-process) instead of crash-looping; every rung
        reuses the completed cells, so the final results are
        bit-identical to an unconstrained run.
    telemetry_dir:
        Record run telemetry under this directory (``--telemetry``): a
        per-run subdirectory with an ``events.jsonl`` span/metric stream
        and a queryable ``manifest.json`` (see :mod:`repro.obs`).  When a
        :class:`~repro.obs.RunTelemetry` is already active (the CLI's
        command-scoped run), the engine joins it instead of opening a
        nested one.
    progress:
        Render the live stderr progress line while a grid runs (only
        when this engine opened its own telemetry run).
    trace_key:
        Stable identity of the trace for checkpoint keying; defaults to
        the workload's trace-cache key via :meth:`for_workload`, else a
        content hash of the trace arrays.
    hosts:
        Remote worker runners joining the fan-out (``--hosts``): a
        ``"host:port,host:port"`` spec or a pre-parsed list of
        ``(host, port)`` pairs, each one a
        ``python -m repro.runtime.remote_worker`` process.  The two-level
        scheduler dispatches cells (and shard subtasks) to them over
        framed TCP next to the local fork workers; a versioned handshake
        refuses hosts whose release, journal format, kernel mode or trace
        identity differ, and a lost host's cells are reassigned to the
        survivors.  ``None`` (default) keeps the sweep on this machine.
    """

    def __init__(self, trace: Trace, *, jobs: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None,
                 strict_invariants: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 shards: Optional[int] = None,
                 memory_budget: Optional[int] = None,
                 telemetry_dir: Optional[str] = None,
                 progress: bool = False,
                 trace_key: Optional[str] = None,
                 kernel: str = "auto",
                 hosts=None):
        self.trace = trace
        self.kernel = validate_kernel_mode(kernel)
        self.jobs = 1 if jobs == 1 else _resolve_jobs(jobs)
        self.retry = retry
        self.timeout = timeout
        self.checkpoint_dir = checkpoint_dir
        self.strict_invariants = strict_invariants
        self.fault_plan = fault_plan
        if shards is not None and shards < 0:
            raise ConfigError(f"shards must be >= 0, got {shards}")
        self.shards = shards or None  # 0 normalizes to automatic
        self.memory_budget = resolve_memory_budget(memory_budget)
        self.telemetry_dir = telemetry_dir
        self.progress = progress
        self._trace_key = trace_key
        if isinstance(hosts, str):
            hosts = parse_hosts(hosts)
        self.hosts = list(hosts) if hosts else None
        if self.hosts and timeout is None:
            warn_resource(
                "remote hosts configured without --timeout: a partitioned "
                "host would stall the sweep undetected (the stall watchdog "
                "is also the heartbeat-silence detector)")
        self._precompute: Optional[SharedPrecompute] = None

    @classmethod
    def for_workload(cls, name: str, *, jobs: int = 1,
                     cache: Optional[WorkloadTraceCache] = None,
                     cache_dir: Optional[str] = None,
                     **kwargs) -> "SweepEngine":
        """Build an engine over a named workload's cached trace.

        The trace is generated at most once per (workload, config, seed,
        version) and reloaded from ``cache_dir`` afterwards.  Checkpoint
        journals of such engines are keyed by the same cache key, so the
        checkpoint invalidates exactly when the cached trace does.
        """
        cache = cache or WorkloadTraceCache(cache_dir)
        wl = cache._resolve(name)
        return cls(cache.get(wl), jobs=jobs,
                   trace_key=workload_cache_key(wl), **kwargs)

    @property
    def precompute(self) -> SharedPrecompute:
        """The trace's shared derived columns (built lazily, cached)."""
        if self._precompute is None:
            self._precompute = SharedPrecompute(self.trace,
                                                kernel=self.kernel)
        return self._precompute

    @property
    def trace_key(self) -> str:
        """Stable trace identity used to key the checkpoint journal."""
        if self._trace_key is None:
            cols = self.trace.columns()
            h = hashlib.sha1()
            h.update(f"{self.trace.name}|{self.trace.num_procs}".encode())
            for arr in (cols.proc, cols.op, cols.addr):
                arr = np.ascontiguousarray(arr)
                h.update(str(len(arr)).encode())
                h.update(arr.tobytes())
            name = re.sub(r"[^A-Za-z0-9_-]+", "_",
                          self.trace.name or "trace")
            self._trace_key = f"{name}-{h.hexdigest()[:16]}"
        return self._trace_key

    # ------------------------------------------------------------------
    # grid execution (two-level scheduler)
    # ------------------------------------------------------------------
    def _shards_per_cell(self, pending_cells: int,
                         jobs: Optional[int] = None,
                         shards_setting: Optional[int] = None) -> int:
        """Shard count for this grid (level two of the scheduler).

        An explicit shard setting always wins.  In automatic mode the
        grid keeps plain cell fan-out while it has at least as many cells
        as workers; only when the grid is smaller than the machine are the
        spare workers split into shards per cell.  ``jobs`` and
        ``shards_setting`` override the engine's configuration — the
        degradation ladder re-plans with them rung by rung.
        """
        jobs = self.jobs if jobs is None else jobs
        shards = self.shards if shards_setting is None else shards_setting
        if shards is not None:
            return shards
        if jobs <= 1 or pending_cells == 0 or pending_cells >= jobs:
            return 1
        return -(-jobs // pending_cells)  # ceil

    @staticmethod
    def _shardable(cell: Cell) -> bool:
        """True for cells legal along some partition dimension.

        Protocol, classify and compare cells shard ``by-block``; finite
        cells shard ``by-cache-set`` when their geometry has more than one
        set (a fully-associative cache is one unit and cannot split).
        """
        kind, _, which = cell[:3]
        if kind == "protocol":
            return which in SHARDABLE_PROTOCOLS
        if kind == "classify":
            return which in CLASSIFIERS
        if kind == "compare":
            return True
        if kind == "finite":
            try:
                capacity, ways = parse_finite_spec(which)
            except ConfigError:
                return False
            return cache_geometry(capacity, ways)[0] > 1
        return False

    def _merge_cell(self, cell: Cell, parts: List):
        """Merge one cell's per-shard partials into its full result."""
        if cell[0] in ("protocol", "finite"):
            return merge_shard_results(parts)
        merged = parts[0]
        for part in parts[1:]:
            merged = merged + part
        return merged

    def run_grid(self, cells: Sequence[Cell]) -> List:
        """Run every cell, returning results in cell order.

        Execution is supervised: worker crashes and per-cell hangs are
        retried per the engine's :class:`RetryPolicy`; completed cells are
        journaled when ``checkpoint_dir`` is set (and cells already in the
        journal are returned without recomputation); each fresh result
        passes the post-cell invariant guard before being accepted.

        When the grid has spare workers (or ``shards`` is set), shardable
        cells are expanded into per-block-shard subtasks that run on the
        same supervised pool and merge back into bit-identical results.
        Per-shard partials are journaled under plan-digest-qualified keys,
        so a resumed sweep re-runs only incomplete shards and can never
        mix partials from two different shard plans; the merged cell is
        then journaled under its plain key, exactly like an unsharded run.

        Execution is additionally *resource-governed*: an OOM-class
        failure (a worker ``MemoryError`` under its ``RLIMIT_AS`` cap, or
        a SIGKILL/137 death) does not blind-retry the same configuration —
        it moves the sweep down the degradation ladder
        (:func:`repro.runtime.resources.degradation_rungs`): halve worker
        concurrency, then raise the shard count (smaller per-worker
        footprint over the bit-identical merge path), then run serial
        in-process.  Every rung resumes from the cells and shard partials
        already completed, so a degraded sweep returns the same results an
        unconstrained one would.

        With ``telemetry_dir`` set (and no run already being recorded),
        the whole grid is recorded as one :class:`~repro.obs.RunTelemetry`
        run: sweep/rung lifecycle events, per-cell spans, resume and
        ladder events, and a ``manifest.json`` folded from the stream.
        """
        if self.telemetry_dir is not None and current_run() is None:
            with RunTelemetry(self.telemetry_dir, progress=self.progress,
                              config=self._telemetry_config()):
                return self._run_grid(cells)
        return self._run_grid(cells)

    def _telemetry_config(self) -> dict:
        return {"trace": self.trace.name, "jobs": self.jobs,
                "shards": self.shards, "timeout": self.timeout,
                "memory_budget": self.memory_budget,
                "checkpoint_dir": self.checkpoint_dir,
                "kernel": self.kernel}

    def _run_grid(self, cells: Sequence[Cell]) -> List:
        cells = [tuple(cell) for cell in cells]
        rec = get_recorder()
        # The sweep root span: every cell/shard/merge span of this grid —
        # including ones emitted in forked or remote workers, whose
        # parent ids ride the assign messages — hangs off it, giving
        # `repro trace` one rooted tree per sweep.
        with rec.span("sweep.run", trace=self.trace.name,
                      trace_key=self.trace_key, cells=len(cells)):
            return self._run_grid_rungs(cells, rec)

    def _run_grid_rungs(self, cells: List[Tuple], rec) -> List:
        journal = None
        completed: Dict[Tuple, object] = {}
        if self.checkpoint_dir is not None:
            journal = CheckpointJournal(self.checkpoint_dir or None,
                                        self.trace_key,
                                        kernel=self.kernel)
            completed = journal.load()
        resumed = set()
        if rec.active:
            rec.event("sweep.start", trace=self.trace.name,
                      trace_key=self.trace_key,
                      num_procs=self.trace.num_procs,
                      events=len(self.trace), cells=len(cells),
                      jobs=self.jobs)
            logger.info("sweep over %s: %d cell(s), jobs=%d",
                        self.trace.name, len(cells), self.jobs)
            resumed = {c for c in cells if c in completed}
            for cell in sorted(resumed, key=repr):
                rec.event("cell.resumed", cell=list(cell),
                          trace_key=self.trace_key)
            if resumed:
                logger.info("resuming %d journaled cell(s) from %s",
                            len(resumed), self.trace_key)
        try:
            rungs = degradation_rungs(self.jobs, self.shards)
            for step, rung in enumerate(rungs):
                final = step == len(rungs) - 1
                # A shutdown requested between rungs (or salvaged out of
                # the previous rung's drain) must not start a new rung.
                signals.check_interrupt()
                try:
                    results = self._run_grid_once(
                        cells, completed, journal,
                        jobs=1 if rung.serial else rung.jobs,
                        shards_setting=rung.shards,
                        oom_action="retry" if final else "raise")
                except ResourceExhaustedError as exc:
                    if final or exc.kind != "memory":
                        raise
                    if exc.partial:
                        completed.update(exc.partial)
                    rec.event("ladder.step", level="warning",
                              rung=rung.label,
                              next_rung=rungs[step + 1].label,
                              salvaged=len(exc.partial or {}))
                    detail = str(exc).splitlines()[0]
                    warn_resource(
                        f"OOM-class failure at rung {rung.label!r} "
                        f"({detail}); degrading to "
                        f"{rungs[step + 1].label!r} with "
                        f"{len(exc.partial or {})} task(s) salvaged")
                    continue
                if journal is not None:
                    # The grid is complete: fold duplicate records and
                    # absorbed shard partials so the next resume replays
                    # a minimal journal.
                    journal.compact()
                rec.event("sweep.finish", trace_key=self.trace_key,
                          cells=len(cells), rung=rung.label)
                run = current_run()
                if run is not None:
                    for cell, result in zip(cells, results):
                        run.cell_result(
                            self.trace_key, cell, result,
                            source="journal" if cell in resumed
                            else "computed")
                return results
            raise AssertionError("unreachable: ladder ends serial")
        finally:
            if journal is not None:
                journal.close()

    def _run_grid_once(self, cells: List[Tuple], completed: Dict[Tuple, object],
                       journal: Optional[CheckpointJournal], *,
                       jobs: int, shards_setting: Optional[int],
                       oom_action: str) -> List:
        """One ladder rung: plan, admit, fan out, merge.

        ``completed`` carries journaled results *and* the partials
        salvaged from earlier rungs (keyed by task — plain cells and
        plan-digest-qualified shard subtasks), so each rung re-runs only
        what no earlier attempt finished.  Raises
        :class:`~repro.errors.ResourceExhaustedError` on an OOM-class
        failure when ``oom_action="raise"`` — the ladder's signal to
        re-plan.
        """
        pre = self.precompute
        pending = [c for c in cells if c not in completed]
        jobs, shards_setting, worker_cap = self._admit(
            jobs, shards_setting, pending)
        shards = self._shards_per_cell(len(set(pending)), jobs,
                                       shards_setting)
        tasks: List[Tuple] = []
        groups: Dict[Tuple, List[Tuple]] = {}
        for cell in cells:
            if cell in completed or cell in groups:
                continue
            plan = None
            if shards > 1 and self._shardable(cell):
                plan = pre.shard_plan(BlockMap(cell[1]), shards,
                                      dim=partition_dim_for(cell))
            if plan is not None and plan.num_shards > 1:
                kind, bb, which = cell[:3]
                groups[cell] = [(f"{kind}-shard", bb, which, plan.digest, s)
                                for s in range(plan.num_shards)]
                tasks.extend(groups[cell])
            else:
                tasks.append(cell)
        jobs = min(jobs, len(tasks)) if tasks else 1

        rec = get_recorder()
        if rec.active:
            rec.event("rung.start", tasks=len(tasks), jobs=jobs,
                      shards=shards)
            logger.info("rung start: %d task(s), jobs=%d, shards=%d",
                        len(tasks), jobs, shards)
            for cell in dict.fromkeys(c for c in cells
                                      if c not in completed):
                per_cell_shards = len(groups.get(cell, ())) or 1
                rec.metric(
                    "footprint.predicted_bytes",
                    estimate_cell_bytes(self.trace,
                                        shards=per_cell_shards),
                    unit="bytes", cell=list(cell))

        def on_result(task, result):
            self._guard_cell(task, result)
            if journal is not None:
                journal.record(task, result)

        if jobs > 1:
            # Warm the shared state in the parent so every forked worker
            # inherits it instead of re-deriving it per process: decoded
            # rows and Dubois keep masks for interpreted classify/compare
            # tasks (O(n log n) per block size that every shard would
            # otherwise redo), the kernel context's block-size-independent
            # word tables for vectorized whole-cell tasks.  Vectorized
            # shard subtasks build ephemeral per-shard contexts and
            # cannot share the parent's.
            warm_rows = warm_kernel = False
            for task in tasks:
                base = task[0]
                shard_task = base.endswith("-shard")
                if shard_task:
                    base = base[:-len("-shard")]
                vectorized = (base in ("classify", "compare", "protocol")
                              and pre.resolve_cell(base, task[2])
                              == "vectorized")
                if vectorized:
                    warm_kernel = warm_kernel or not shard_task
                    continue
                if base in ("classify", "compare"):
                    warm_rows = True
                if base == "compare" or (base == "classify"
                                         and task[2] == "dubois"):
                    pre.dubois_keep_mask(BlockMap(task[1]))
            if warm_rows:
                pre.data_rows()
            if warm_kernel:
                ctx = pre.kernel_context()
                ctx.word_last_rows()
                ctx.word_remote_rows()
        transports = None
        if self.hosts:
            from ..kernels import effective_kernel_mode

            def task_meta(task):
                # Shard subtasks carry only the plan *digest*; a remote
                # host rebuilds the plan from (block size, dimension,
                # num_shards) and verifies the digest, so it also needs
                # the shard count on the wire.
                if (isinstance(task, tuple) and task
                        and isinstance(task[0], str)
                        and task[0].endswith("-shard")):
                    return {"num_shards":
                            pre.plan_by_digest(task[3]).num_shards}
                return {}

            transports = [TcpTransport(
                self.hosts,
                handshake_spec(trace_key=self.trace_key,
                               kernel=effective_kernel_mode(self.kernel),
                               workload=self.trace.name),
                task_meta=task_meta)]
        supervisor = Supervisor(pre.run_cell, jobs=jobs, retry=self.retry,
                                timeout=self.timeout,
                                fault_plan=self.fault_plan,
                                worker_rlimit_bytes=worker_cap,
                                oom_action=oom_action,
                                transports=transports)
        by_task = dict(zip(tasks, supervisor.run(
            tasks, completed=completed or None, on_result=on_result)))
        results = []
        for cell in cells:
            if cell in completed:
                results.append(completed[cell])
            elif cell in groups:
                with rec.span("merge", cell=list(cell),
                              shards=len(groups[cell])):
                    merged = self._merge_cell(
                        cell, [by_task[sc] for sc in groups[cell]])
                self._guard_cell(cell, merged)
                if journal is not None:
                    journal.record(cell, merged)
                run = current_run()
                if run is not None:
                    # A sharded cell never ran as one task; synthesize
                    # its cell.run span from the folded shard durations
                    # so the merged timeline keeps exactly one ok
                    # cell.run span per grid cell.
                    run.merged_cell(self.trace_key, cell,
                                    len(groups[cell]))
                results.append(merged)
                completed[cell] = merged  # duplicate cells in the grid
            else:
                results.append(by_task[cell])
        return results

    def _admit(self, jobs: int, shards_setting: Optional[int],
               pending: List[Tuple]):
        """Preflight admission of one rung under the memory budget.

        Returns the admitted ``(jobs, shards_setting, worker_cap_bytes)``.
        Without a budget (or for a serial rung) everything passes through
        unchanged and uncapped.
        """
        if self.memory_budget is None or jobs <= 1 or not pending:
            return jobs, shards_setting, None
        adm = plan_admission(
            self.memory_budget, jobs, shards_setting or 1,
            lambda s: estimate_cell_bytes(self.trace, shards=s),
            shardable=any(self._shardable(c) for c in pending))
        if adm.over_budget:
            warn_resource(
                f"estimated footprint of one serial worker exceeds the "
                f"memory budget ({format_size(self.memory_budget)}); "
                f"running serial and uncapped")
            return 1, shards_setting, None
        if adm.jobs < jobs or adm.shards > (shards_setting or 1):
            warn_resource(
                f"admission under {format_size(self.memory_budget)} "
                f"budget: {adm.describe()} (requested jobs={jobs})")
        if adm.shards > (shards_setting or 1):
            shards_setting = adm.shards
        return adm.jobs, shards_setting, adm.worker_cap_bytes

    # ------------------------------------------------------------------
    # post-cell invariant guards
    # ------------------------------------------------------------------
    def _guard_cell(self, cell: Cell, result) -> None:
        """Check the paper's invariants that are free to verify per cell."""
        from .invariants import (
            check_cold_agreement_ours_eggers,
            check_total_miss_agreement,
        )

        if cell[0] != "compare":
            return
        violations = (check_total_miss_agreement(result)
                      + check_cold_agreement_ours_eggers(result))
        if violations:
            self._report_violations(violations, context=f"cell {cell!r}")

    def _report_violations(self, violations: List[str],
                           *, context: str) -> None:
        message = (f"invariant violation in {context}: "
                   + "; ".join(violations))
        if self.strict_invariants:
            raise InvariantViolationError(message, violations)
        warnings.warn(message, stacklevel=3)

    # ------------------------------------------------------------------
    # the paper's sweeps
    # ------------------------------------------------------------------
    def classify_sweep(self, block_sizes: Optional[Sequence[int]] = None,
                       *, classifier: str = "dubois") -> SweepResult:
        """Figure 5 panel: one classifier across block sizes."""
        sizes = tuple(block_sizes or PAPER_BLOCK_SIZES)
        cells = [("classify", bb, classifier) for bb in sizes]
        breakdowns = tuple(self.run_grid(cells))
        result = SweepResult(trace_name=self.trace.name or "<anonymous>",
                             block_sizes=sizes, breakdowns=breakdowns)
        if classifier == "dubois" and list(sizes) == sorted(sizes):
            from .invariants import check_block_size_monotonicity

            violations = check_block_size_monotonicity(result)
            if violations:
                self._report_violations(
                    violations,
                    context=f"classify sweep of {result.trace_name}")
        return result

    def compare_sweep(self, block_sizes: Optional[Sequence[int]] = None
                      ) -> Dict[int, ClassificationComparison]:
        """Table 1 columns: the three-way comparison across block sizes."""
        sizes = tuple(block_sizes or PAPER_BLOCK_SIZES)
        cells = [("compare", bb, None) for bb in sizes]
        return dict(zip(sizes, self.run_grid(cells)))

    def protocol_grid(self, block_sizes: Sequence[int],
                      protocols: Optional[Sequence[str]] = None
                      ) -> Dict[Tuple[int, str], ProtocolResult]:
        """Figure 6 cells: every (block size × protocol) combination."""
        names = list(protocols) if protocols is not None else list(ALL_PROTOCOLS)
        sizes = tuple(block_sizes)
        cells = [("protocol", bb, name) for bb in sizes for name in names]
        results = self.run_grid(cells)
        return {(bb, name): result
                for (_, bb, name), result in zip(cells, results)}

    def finite_sweep(self, capacities: Sequence[int], *,
                     block_bytes: int = 16, ways: Optional[int] = None
                     ) -> Dict[int, ProtocolResult]:
        """Section 8.0 extension: finite-cache cells across capacities.

        Multi-set geometries (``ways`` set and smaller than capacity)
        shard ``by-cache-set`` under the two-level scheduler exactly like
        protocol cells shard by block.
        """
        caps = tuple(capacities)
        cells = [("finite", block_bytes, finite_spec(c, ways))
                 for c in caps]
        return dict(zip(caps, self.run_grid(cells)))
