"""Analysis and reporting: sweeps, the paper's tables/figures, invariants."""

from .attribution import (
    AttributionResult,
    RegionTable,
    UNMAPPED,
    attribute_misses,
)
from .engine import CLASSIFIERS, SharedPrecompute, SweepEngine
from .figures import Fig5Panel, Fig6Panel, figure5, figure6
from .prefetch import PrefetchAnalysis, PrefetchFloors, prefetch_analysis
from .invariants import (
    check_all,
    check_block_size_monotonicity,
    check_cold_agreement_ours_eggers,
    check_eggers_tsm_subset_torrellas,
    check_min_is_essential,
    check_protocol_ordering,
    check_total_miss_agreement,
)
from .report import format_bars, format_stacked_bars, format_table
from .sweep import SweepResult, sweep_block_sizes, sweep_comparisons
from .tables import (
    TABLE1_ROWS,
    build_table1,
    build_table2,
    format_table1,
    format_table2,
)

__all__ = [
    "AttributionResult",
    "CLASSIFIERS",
    "Fig5Panel",
    "Fig6Panel",
    "SharedPrecompute",
    "SweepEngine",
    "SweepResult",
    "TABLE1_ROWS",
    "build_table1",
    "build_table2",
    "check_all",
    "check_block_size_monotonicity",
    "check_cold_agreement_ours_eggers",
    "check_eggers_tsm_subset_torrellas",
    "check_min_is_essential",
    "check_protocol_ordering",
    "check_total_miss_agreement",
    "RegionTable",
    "UNMAPPED",
    "PrefetchAnalysis",
    "PrefetchFloors",
    "attribute_misses",
    "figure5",
    "figure6",
    "format_bars",
    "format_stacked_bars",
    "format_table",
    "format_table1",
    "format_table2",
    "prefetch_analysis",
    "sweep_block_sizes",
    "sweep_comparisons",
]
