"""Plain-text rendering of tables and bar charts.

The paper's results are two tables and two multi-panel figures; since this
library is terminal-first, figures are rendered as aligned numeric series
plus optional horizontal ASCII bars (one bar per protocol / block size).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, title: str = "", align_left_cols: int = 1) -> str:
    """Render an aligned text table.

    ``align_left_cols`` columns from the left are left-aligned (labels);
    the rest are right-aligned (numbers).
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(cells):
        parts = []
        for i, cell in enumerate(row):
            if i < align_left_cols:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        lines.append("  ".join(parts))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_bars(series: Dict[str, float], *, width: int = 46,
                title: str = "", unit: str = "%",
                max_value: Optional[float] = None) -> str:
    """Render ``{label: value}`` as horizontal bars.

    >>> print(format_bars({"OTF": 4.0, "MIN": 2.0}, width=8))
    OTF  4.00% ########
    MIN  2.00% ####
    """
    lines = []
    if title:
        lines.append(title)
    if not series:
        return title or ""
    top = max_value if max_value is not None else max(series.values()) or 1.0
    if top <= 0:
        top = 1.0
    label_w = max(len(k) for k in series)
    value_w = max(len(f"{v:.2f}") for v in series.values())
    for label, value in series.items():
        n = int(round(width * min(value, top) / top))
        lines.append(f"{label.ljust(label_w)}  {value:>{value_w}.2f}{unit} "
                     f"{'#' * n}")
    return "\n".join(lines)


def format_stacked_bars(rows: Dict[str, Dict[str, float]], *,
                        width: int = 46, title: str = "",
                        glyphs: Optional[Dict[str, str]] = None) -> str:
    """Render stacked horizontal bars (e.g. TRUE/COLD/FALSE per protocol).

    ``rows`` maps a bar label to ordered ``{component: value}``.  Each
    component gets a distinct fill glyph (default: T, C, F, ...).
    """
    lines = []
    if title:
        lines.append(title)
    if not rows:
        return title or ""
    totals = {label: sum(parts.values()) for label, parts in rows.items()}
    top = max(totals.values()) or 1.0
    label_w = max(len(k) for k in rows)
    components: List[str] = []
    for parts in rows.values():
        for c in parts:
            if c not in components:
                components.append(c)
    glyphs = glyphs or {c: c[0].upper() for c in components}
    for label, parts in rows.items():
        bar = ""
        for c, v in parts.items():
            n = int(round(width * v / top))
            bar += glyphs.get(c, "#") * n
        lines.append(f"{label.ljust(label_w)}  {totals[label]:6.2f}% {bar}")
    legend = "  ".join(f"{glyphs.get(c, '#')}={c}" for c in components)
    lines.append(f"{' ' * label_w}  legend: {legend}")
    return "\n".join(lines)
