"""Block-size sweeps (the x-axis of the paper's Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..classify.breakdown import DuboisBreakdown, MissClass
from ..classify.compare import ClassificationComparison
from ..trace.trace import Trace
from .report import format_table


@dataclass(frozen=True)
class SweepResult:
    """Classification of one trace at several block sizes."""

    trace_name: str
    block_sizes: Tuple[int, ...]
    breakdowns: Tuple[DuboisBreakdown, ...]

    def series(self, mclass: MissClass) -> List[float]:
        """Miss-rate series (percent) of one class across block sizes."""
        return [bd.rate(bd.count(mclass)) for bd in self.breakdowns]

    def essential_series(self) -> List[float]:
        return [bd.essential_rate for bd in self.breakdowns]

    def total_series(self) -> List[float]:
        return [bd.miss_rate for bd in self.breakdowns]

    def at(self, block_bytes: int) -> DuboisBreakdown:
        """The breakdown for one block size."""
        return self.breakdowns[self.block_sizes.index(block_bytes)]

    def format(self) -> str:
        """Figure 5 panel as a text table (counts and rates)."""
        headers = ["B", "PC", "CTS", "CFS", "PTS", "PFS",
                   "miss%", "essential%"]
        rows = []
        for bb, bd in zip(self.block_sizes, self.breakdowns):
            rows.append([bb, bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs,
                         f"{bd.miss_rate:.2f}", f"{bd.essential_rate:.2f}"])
        return format_table(headers, rows,
                            title=f"{self.trace_name}: classification vs block size")


def sweep_block_sizes(trace: Trace,
                      block_sizes: Optional[Sequence[int]] = None,
                      *, jobs: int = 1, options=None) -> SweepResult:
    """Classify ``trace`` at each block size (default: the paper's 4..1024).

    Runs on the sweep engine: the trace's data rows are decoded once and
    shared by every block size, and ``jobs > 1`` fans the block sizes out
    over supervised worker processes (see
    :class:`repro.analysis.engine.SweepEngine`).  ``options`` is an
    optional :class:`repro.analysis.engine.ExecutionOptions` carrying the
    resilience knobs (retries, timeout, checkpointing, strict invariants).
    """
    from .engine import SweepEngine  # deferred: engine imports SweepResult

    kwargs = options.engine_kwargs() if options is not None else {}
    return SweepEngine(trace, jobs=jobs, **kwargs).classify_sweep(block_sizes)


def sweep_comparisons(trace: Trace,
                      block_sizes: Optional[Sequence[int]] = None,
                      *, jobs: int = 1,
                      options=None) -> Dict[int, ClassificationComparison]:
    """Three-way classifier comparison at each block size."""
    from .engine import SweepEngine  # deferred: engine imports SweepResult

    kwargs = options.engine_kwargs() if options is not None else {}
    return SweepEngine(trace, jobs=jobs, **kwargs).compare_sweep(block_sizes)
