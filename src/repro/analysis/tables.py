"""Builders for the paper's Tables 1 and 2."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..classify.compare import ClassificationComparison, compare_classifications
from ..trace.stats import BenchmarkStats, benchmark_stats
from ..trace.trace import Trace
from .report import format_table

#: The row order of the paper's Table 1 (the paper prints "FPS", an
#: obvious typo for the false-sharing row; we label it PFS).
TABLE1_ROWS = ("PTS-ours", "TSM-Eggers", "TSM-Torrellas",
               "COLD-ours", "COLD-Eggers", "COLD-Torrellas",
               "PFS-ours", "PFS-Eggers", "PFS-Torrellas")

#: The paper's Table 1 columns: (benchmark, block size in bytes).
TABLE1_PAPER_COLUMNS = (("LU", 32), ("LU", 1024), ("MP3D", 32), ("MP3D", 1024))


def build_table1(traces: Sequence[Trace],
                 block_sizes: Sequence[int] = (32, 1024)
                 ) -> Dict[Tuple[str, int], ClassificationComparison]:
    """Three-way comparison of each trace at each block size.

    The paper's Table 1 uses LU200 and MP3D10000 at 32 and 1,024 bytes;
    pass whichever traces/sizes you generated.
    """
    out: Dict[Tuple[str, int], ClassificationComparison] = {}
    for trace in traces:
        for bb in block_sizes:
            out[(trace.name, bb)] = compare_classifications(trace, bb)
    return out


def format_table1(comparisons: Dict[Tuple[str, int], ClassificationComparison]
                  ) -> str:
    """Render Table 1: one column per (benchmark, block size)."""
    columns = list(comparisons)
    headers = ["ROW"] + [f"{name}@{bb}B" for name, bb in columns]
    rows: List[List] = []
    for row_name in TABLE1_ROWS:
        row: List = [row_name]
        for key in columns:
            row.append(f"{comparisons[key].table1_rows()[row_name]:,}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Table 1: classification comparison "
                              "(counts of misses)")


def build_table2(traces: Sequence[Trace]) -> List[BenchmarkStats]:
    """Benchmark characteristics (Table 2) for each trace."""
    return [benchmark_stats(trace) for trace in traces]


def format_table2(stats: Sequence[BenchmarkStats]) -> str:
    """Render Table 2 with the paper's columns."""
    headers = ["BENCHMARK", "SPEEDUP", "WRITES (000's)", "READS (000's)",
               "ACQ/REL (000's)", "DATA SET (KB)"]
    rows = [[s.as_row()[h] for h in headers] for s in stats]
    return format_table(headers, rows,
                        title="Table 2: characteristics of the benchmarks")
