"""Builders for the paper's Figures 5 and 6 data series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..classify.breakdown import MissClass
from ..protocols.results import ProtocolResult
from ..protocols.runner import run_protocols
from ..trace.trace import Trace
from .report import format_stacked_bars, format_table
from .sweep import SweepResult, sweep_block_sizes


@dataclass(frozen=True)
class Fig5Panel:
    """One benchmark's Figure 5 panel (five stacked series vs block size)."""

    sweep: SweepResult

    def series(self) -> Dict[str, List[float]]:
        """The five class-rate series, keyed PC/CTS/CFS/PTS/PFS."""
        return {mc.value: self.sweep.series(mc) for mc in MissClass}

    def format(self) -> str:
        return self.sweep.format()


def figure5(traces: Sequence[Trace],
            block_sizes: Optional[Sequence[int]] = None,
            *, jobs: int = 1, options=None) -> Dict[str, Fig5Panel]:
    """Figure 5: classification vs block size, one panel per benchmark.

    ``jobs > 1`` fans each panel's block sizes out over supervised worker
    processes; ``options`` (an
    :class:`repro.analysis.engine.ExecutionOptions`) threads the
    resilience knobs through to each panel's engine.
    """
    return {trace.name: Fig5Panel(sweep_block_sizes(trace, block_sizes,
                                                    jobs=jobs,
                                                    options=options))
            for trace in traces}


@dataclass(frozen=True)
class Fig6Panel:
    """One benchmark's Figure 6 group: all protocols at one block size."""

    trace_name: str
    block_bytes: int
    results: Dict[str, ProtocolResult]

    def bars(self) -> Dict[str, Dict[str, float]]:
        """TRUE/COLD/FALSE stacked components per protocol (percent).

        The paper displays only the total for MIN (no false sharing by
        construction), WBWI and MAX; we decompose everything but keep the
        paper's convention available via :meth:`totals`.
        """
        return {name: {"TRUE": r.pts_rate, "COLD": r.cold_rate,
                       "FALSE": r.pfs_rate}
                for name, r in self.results.items()}

    def totals(self) -> Dict[str, float]:
        """Total miss rate per protocol."""
        return {name: r.miss_rate for name, r in self.results.items()}

    def format(self) -> str:
        title = (f"{self.trace_name} @ B={self.block_bytes} bytes "
                 f"(miss rate %, decomposed)")
        return format_stacked_bars(self.bars(), title=title,
                                   glyphs={"TRUE": "T", "COLD": "C",
                                           "FALSE": "F"})

    def format_table(self) -> str:
        headers = ["protocol", "TRUE%", "COLD%", "FALSE%", "TOTAL%",
                    "ownership", "inval-sent"]
        rows = []
        for name, r in self.results.items():
            rows.append([name, f"{r.pts_rate:.2f}", f"{r.cold_rate:.2f}",
                         f"{r.pfs_rate:.2f}", f"{r.miss_rate:.2f}",
                         r.counters.ownership_misses,
                         r.counters.invalidations_sent])
        return format_table(headers, rows,
                            title=f"{self.trace_name} @ B={self.block_bytes}")


def figure6(traces: Sequence[Trace], block_bytes: int,
            protocols: Optional[Sequence[str]] = None,
            *, jobs: int = 1, options=None) -> Dict[str, Fig6Panel]:
    """Figure 6 (a: B=64, b: B=1024): protocol comparison per benchmark.

    ``jobs > 1`` fans each benchmark's protocols out over worker
    processes; ``options`` threads the engine's resilience knobs through.
    """
    panels = {}
    for trace in traces:
        results = run_protocols(trace, block_bytes, protocols, jobs=jobs,
                                options=options)
        panels[trace.name] = Fig6Panel(trace_name=trace.name,
                                       block_bytes=block_bytes,
                                       results=results)
    return panels
