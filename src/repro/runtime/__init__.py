"""Resilient execution layer for the sweep engine.

The paper's headline experiments are long grid sweeps; this package makes
them survive partial failure:

* :class:`~repro.runtime.supervisor.Supervisor` — supervised fork workers
  with per-cell tracking, crash detection, wall-clock timeouts, retries
  and graceful degradation to serial execution;
* :class:`~repro.runtime.retry.RetryPolicy` — capped exponential backoff;
* :class:`~repro.runtime.checkpoint.CheckpointJournal` — durable JSONL
  journal of completed cells so a killed sweep resumes without
  recomputation;
* :class:`~repro.runtime.faults.FaultPlan` — deterministic fault
  injection (crash / hang / raise / corrupt) that makes all of the above
  testable.
"""

from .checkpoint import CheckpointJournal, default_checkpoint_dir
from .faults import FaultInjectedError, FaultPlan, corrupt_file
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .supervisor import Supervisor

__all__ = [
    "CheckpointJournal",
    "DEFAULT_RETRY_POLICY",
    "FaultInjectedError",
    "FaultPlan",
    "RetryPolicy",
    "Supervisor",
    "corrupt_file",
    "default_checkpoint_dir",
]
