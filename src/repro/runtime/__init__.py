"""Resilient execution layer for the sweep engine.

The paper's headline experiments are long grid sweeps; this package makes
them survive partial failure:

* :class:`~repro.runtime.supervisor.Supervisor` — supervised fork workers
  with per-cell tracking, crash detection, wall-clock timeouts, retries
  and graceful degradation to serial execution;
* :class:`~repro.runtime.retry.RetryPolicy` — capped exponential backoff;
* :class:`~repro.runtime.checkpoint.CheckpointJournal` — durable JSONL
  journal of completed cells so a killed sweep resumes without
  recomputation;
* :class:`~repro.runtime.faults.FaultPlan` — deterministic fault
  injection (crash / hang / raise / exhaust-memory / corrupt) that makes
  all of the above testable;
* :mod:`~repro.runtime.resources` — the resource governor: calibrated
  footprint model and preflight admission under ``--memory-budget``,
  per-worker ``RLIMIT_AS`` soft caps, OOM-vs-crash exitcode
  classification, the graceful-degradation ladder, and disk-budget
  helpers for the trace cache and checkpoint directories;
* :mod:`~repro.runtime.signals` — two-phase graceful shutdown
  (SIGINT/SIGTERM → drain → resumable exit; second signal forces) and
  the progress counter behind the worker heartbeat / stall watchdog;
* :mod:`~repro.runtime.chaos` — the seeded kill-and-resume soak harness
  proving that interrupted sweeps converge to bit-identical results;
* :mod:`~repro.runtime.transport` — pluggable worker transports: the
  default local fork-pipe pool (:class:`LocalForkTransport`) and framed
  TCP to remote worker runners (:class:`TcpTransport`) with versioned
  handshakes, host-loss recovery and per-host quarantine;
* :mod:`~repro.runtime.remote_worker` — the ``--hosts`` counterpart: a
  runner process serving sweep cells over TCP
  (``python -m repro.runtime.remote_worker --listen HOST:PORT``).
"""

from .chaos import (
    HOST_ACTIONS,
    ChaosReport,
    CycleOutcome,
    chaos_soak,
    host_chaos,
)
from .checkpoint import CheckpointJournal, default_checkpoint_dir
from .faults import (
    FaultInjectedError,
    FaultPlan,
    corrupt_file,
    exhaust_address_space,
    tear_jsonl_tail,
)
from .resources import (
    DEFAULT_FOOTPRINT_MODEL,
    Admission,
    FootprintModel,
    Rung,
    apply_worker_rlimit,
    classify_exitcode,
    degradation_rungs,
    ensure_free_space,
    estimate_cell_bytes,
    format_size,
    parse_size,
    peak_rss_bytes,
    plan_admission,
)
from .resources import (
    DEFAULT_TMP_MAX_AGE_S,
    gc_stale_tmp,
    resolve_tmp_max_age,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .signals import (
    HEARTBEAT_CHUNK,
    ShutdownCoordinator,
    check_interrupt,
    get_shutdown,
    graceful_shutdown,
    note_progress,
)
from .supervisor import Supervisor
from .transport import (
    EndpointLostError,
    LocalForkTransport,
    TcpTransport,
    Transport,
    WorkerConfig,
    WorkerEndpoint,
    handshake_spec,
    parse_hosts,
)

__all__ = [
    "Admission",
    "ChaosReport",
    "CheckpointJournal",
    "CycleOutcome",
    "DEFAULT_FOOTPRINT_MODEL",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_TMP_MAX_AGE_S",
    "EndpointLostError",
    "FaultInjectedError",
    "FaultPlan",
    "FootprintModel",
    "HEARTBEAT_CHUNK",
    "HOST_ACTIONS",
    "LocalForkTransport",
    "RetryPolicy",
    "Rung",
    "ShutdownCoordinator",
    "Supervisor",
    "TcpTransport",
    "Transport",
    "WorkerConfig",
    "WorkerEndpoint",
    "apply_worker_rlimit",
    "chaos_soak",
    "check_interrupt",
    "classify_exitcode",
    "corrupt_file",
    "default_checkpoint_dir",
    "degradation_rungs",
    "ensure_free_space",
    "estimate_cell_bytes",
    "exhaust_address_space",
    "format_size",
    "gc_stale_tmp",
    "get_shutdown",
    "graceful_shutdown",
    "handshake_spec",
    "host_chaos",
    "note_progress",
    "parse_hosts",
    "peak_rss_bytes",
    "plan_admission",
    "resolve_tmp_max_age",
    "tear_jsonl_tail",
]
