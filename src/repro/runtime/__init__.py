"""Resilient execution layer for the sweep engine.

The paper's headline experiments are long grid sweeps; this package makes
them survive partial failure:

* :class:`~repro.runtime.supervisor.Supervisor` — supervised fork workers
  with per-cell tracking, crash detection, wall-clock timeouts, retries
  and graceful degradation to serial execution;
* :class:`~repro.runtime.retry.RetryPolicy` — capped exponential backoff;
* :class:`~repro.runtime.checkpoint.CheckpointJournal` — durable JSONL
  journal of completed cells so a killed sweep resumes without
  recomputation;
* :class:`~repro.runtime.faults.FaultPlan` — deterministic fault
  injection (crash / hang / raise / exhaust-memory / corrupt) that makes
  all of the above testable;
* :mod:`~repro.runtime.resources` — the resource governor: calibrated
  footprint model and preflight admission under ``--memory-budget``,
  per-worker ``RLIMIT_AS`` soft caps, OOM-vs-crash exitcode
  classification, the graceful-degradation ladder, and disk-budget
  helpers for the trace cache and checkpoint directories;
* :mod:`~repro.runtime.signals` — two-phase graceful shutdown
  (SIGINT/SIGTERM → drain → resumable exit; second signal forces) and
  the progress counter behind the worker heartbeat / stall watchdog;
* :mod:`~repro.runtime.chaos` — the seeded kill-and-resume soak harness
  proving that interrupted sweeps converge to bit-identical results.
"""

from .chaos import ChaosReport, CycleOutcome, chaos_soak
from .checkpoint import CheckpointJournal, default_checkpoint_dir
from .faults import (
    FaultInjectedError,
    FaultPlan,
    corrupt_file,
    exhaust_address_space,
    tear_jsonl_tail,
)
from .resources import (
    DEFAULT_FOOTPRINT_MODEL,
    Admission,
    FootprintModel,
    Rung,
    apply_worker_rlimit,
    classify_exitcode,
    degradation_rungs,
    ensure_free_space,
    estimate_cell_bytes,
    format_size,
    parse_size,
    peak_rss_bytes,
    plan_admission,
)
from .resources import gc_stale_tmp
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .signals import (
    HEARTBEAT_CHUNK,
    ShutdownCoordinator,
    check_interrupt,
    get_shutdown,
    graceful_shutdown,
    note_progress,
)
from .supervisor import Supervisor

__all__ = [
    "Admission",
    "ChaosReport",
    "CheckpointJournal",
    "CycleOutcome",
    "DEFAULT_FOOTPRINT_MODEL",
    "DEFAULT_RETRY_POLICY",
    "FaultInjectedError",
    "FaultPlan",
    "FootprintModel",
    "HEARTBEAT_CHUNK",
    "RetryPolicy",
    "Rung",
    "ShutdownCoordinator",
    "Supervisor",
    "apply_worker_rlimit",
    "chaos_soak",
    "check_interrupt",
    "classify_exitcode",
    "corrupt_file",
    "default_checkpoint_dir",
    "degradation_rungs",
    "ensure_free_space",
    "estimate_cell_bytes",
    "exhaust_address_space",
    "format_size",
    "gc_stale_tmp",
    "get_shutdown",
    "graceful_shutdown",
    "note_progress",
    "parse_size",
    "peak_rss_bytes",
    "plan_admission",
    "tear_jsonl_tail",
]
