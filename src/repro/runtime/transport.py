"""Pluggable worker transports for the supervised sweep pool.

The :class:`~repro.runtime.supervisor.Supervisor` used to speak one
hard-wired dialect: fork a child per worker and drive it over a duplex
pipe.  This module extracts that conversation behind a small endpoint
abstraction so the *same* task/reply/heartbeat protocol can run over
other channels:

* :class:`LocalForkTransport` — the original fork-pipe path, bit-identical
  in behavior (workers still inherit their runner through module globals
  at fork time, replies are still pickled tuples on a
  ``multiprocessing.Pipe``).
* :class:`TcpTransport` — drives remote worker runners
  (``python -m repro.runtime.remote_worker --listen HOST:PORT``) over
  length-prefixed JSON frames carrying the same messages.

The wire protocol is deliberately dumb: every frame is a 4-byte
big-endian length followed by UTF-8 JSON.  A connection starts with a
versioned handshake — ``hello`` carries the protocol version, repro
release, journal format version, effective kernel mode, trace identity
and workload name; the runner answers ``welcome`` or a structured
``refused`` naming both sides' values, which the client raises as
:class:`~repro.errors.HandshakeError`.  A mismatched or stale host is
therefore rejected up front instead of silently diverging mid-sweep.

Failure model
-------------
Any transport-level defect on an established connection — EOF, a torn or
garbled frame, a send into a closed socket, heartbeat silence past the
stall window — surfaces as :class:`EndpointLostError` and is classified
by the supervisor as the ``host_lost`` fail kind.  Lost cells are simply
rescheduled: dispatch is idempotent and keyed by the same checkpoint
keys ``--resume`` uses, so a cell that ran twice journals once.
:class:`TcpTransport` additionally runs a per-host degradation ladder:
a flapping host reconnects under capped (optionally jittered) backoff
and is dropped for the run after :data:`TcpTransport.HOST_MAX_FAILURES`
consecutive failures; when every remote host is dropped and no local
workers exist, the supervisor falls back to serial in-process execution.
"""

from __future__ import annotations

import itertools
import json
import logging
import multiprocessing
import socket
import struct
import threading
import time
import traceback
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, HandshakeError, ResourceExhaustedError
from ..obs import (apply_trace_context, get_recorder, trace_context,
                   worker_begin)
from . import signals
from .faults import FaultPlan
from .resources import apply_worker_rlimit, classify_exitcode, peak_rss_bytes
from .retry import RetryPolicy

logger = logging.getLogger(__name__)

#: Version of the framed TCP dialect; bumped on any wire-format change.
PROTOCOL_VERSION = 1
#: Hard cap on one frame's payload — anything larger is a garbled length
#: header, not a legitimate message.
MAX_FRAME_BYTES = 64 << 20
#: Blocking-read guard while assembling one frame.  ``connection.wait``
#: only wakes us when bytes are available, so a frame that stays
#: incomplete this long means the peer died mid-message.
FRAME_RECV_TIMEOUT = 30.0

_HEADER = struct.Struct(">I")

# Fork-inherited worker state (set in the parent just before spawning).
_WORKER_RUNNER: Optional[Callable[[Any], Any]] = None
_WORKER_FAULTS: Optional[FaultPlan] = None
_WORKER_RLIMIT: Optional[int] = None
_WORKER_HEARTBEAT: Optional[float] = None


class EndpointLostError(Exception):
    """A worker endpoint's channel failed (EOF, torn frame, reset).

    Internal control flow between transports and the supervisor — never
    user-facing.  ``garbled`` distinguishes a *corrupted* channel (bytes
    arrived but could not be decoded: the peer must be killed, its pipe
    can never become readable again) from a plain EOF (for local fork
    workers the process sentinel is the authority on death, exactly as
    before this abstraction existed).
    """

    def __init__(self, message: str, *, garbled: bool = False):
        super().__init__(message)
        self.garbled = garbled


def _task_attr(task):
    """A task rendered for telemetry ``attrs`` (grid cells are tuples)."""
    if isinstance(task, (tuple, list)):
        return list(task)
    return task


def _failure_payload(exc: BaseException) -> dict:
    """Structured failure reply: traceback text plus a failure class."""
    kind = "error"
    if isinstance(exc, MemoryError):
        kind = "oom"
    elif isinstance(exc, ResourceExhaustedError):
        kind = "oom" if exc.kind == "memory" else "error"
    return {"error": traceback.format_exc(limit=20), "kind": kind}


# ----------------------------------------------------------------------
# framing (TCP dialect)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, obj: dict) -> None:
    """Send one length-prefixed JSON frame; raises :class:`EndpointLostError`."""
    data = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    try:
        sock.sendall(_HEADER.pack(len(data)) + data)
    except (OSError, ValueError) as exc:
        raise EndpointLostError(f"send failed: {exc}") from None


def _recv_exact(sock: socket.socket, n: int, *, mid_frame: bool) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            raise EndpointLostError(
                "frame receive timed out mid-message", garbled=True) \
                from None
        except OSError as exc:
            raise EndpointLostError(f"connection error: {exc}",
                                    garbled=bool(buf)) from None
        if not chunk:
            torn = mid_frame or bool(buf)
            raise EndpointLostError(
                "connection closed mid-message" if torn
                else "connection closed", garbled=torn)
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> dict:
    """Receive one frame; raises :class:`EndpointLostError` on EOF/torn/garbage."""
    header = _recv_exact(sock, _HEADER.size, mid_frame=False)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EndpointLostError(
            f"oversized frame ({length} bytes): garbled length header",
            garbled=True)
    data = _recv_exact(sock, length, mid_frame=True)
    try:
        msg = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise EndpointLostError(f"garbled frame: {exc}", garbled=True) \
            from None
    if not isinstance(msg, dict) or "t" not in msg:
        raise EndpointLostError(f"malformed frame: {msg!r}", garbled=True)
    return msg


def parse_hosts(spec: str) -> List[Tuple[str, int]]:
    """Parse ``--hosts host:port,host:port`` into ``[(host, port), ...]``.

    Listing the same host twice yields two connections (two remote
    workers) — the runner forks one serving child per connection.
    """
    out: List[Tuple[str, int]] = []
    for item in (spec or "").split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise ConfigError(
                f"invalid host {item!r}: expected host:port")
        try:
            port_n = int(port)
        except ValueError:
            raise ConfigError(
                f"invalid port in host {item!r}: {port!r}") from None
        if not 0 < port_n < 65536:
            raise ConfigError(f"port out of range in host {item!r}")
        out.append((host, port_n))
    if not out:
        raise ConfigError(f"no hosts in --hosts value {spec!r}")
    return out


def handshake_spec(*, trace_key: str, kernel: str,
                   workload: Optional[str]) -> Dict[str, Any]:
    """The client's side of the versioned handshake.

    Binds everything two processes must agree on before sharing cells:
    repro release, journal format version, effective kernel mode and the
    trace's checkpoint identity.  The runner refuses any mismatch with a
    structured error naming both sides (see
    :class:`~repro.errors.HandshakeError`).
    """
    import repro  # lazy: repro/__init__ imports runtime modules first
    from .checkpoint import JOURNAL_VERSION

    return {"proto": PROTOCOL_VERSION, "release": repro.__version__,
            "journal_v": JOURNAL_VERSION, "kernel": kernel,
            "trace_key": trace_key, "workload": workload}


# ----------------------------------------------------------------------
# fork worker body (inherited through module globals, never pickled)
# ----------------------------------------------------------------------
def _heartbeat_loop(conn, send_lock, current, interval) -> None:
    """Daemon thread: periodically report the worker's progress counter.

    Sends ``("hb", idx, progress, cell)`` for the task in flight.  The
    supervisor compares successive ``progress`` samples: a *slow* cell
    keeps advancing the counter (the hot loops tick it every
    :data:`~repro.runtime.signals.HEARTBEAT_CHUNK` events) while a *hung*
    one freezes it — which is exactly the distinction the stall watchdog
    needs.  Sends share ``send_lock`` with result replies so the two
    never interleave on the pipe.
    """
    while True:
        time.sleep(interval)
        cur = current[0]
        if cur is None:
            continue
        idx, task = cur
        try:
            with send_lock:
                conn.send(("hb", idx, signals.progress_count(),
                           _task_attr(task)))
        except Exception:
            return  # pipe gone: the worker is exiting


def _worker_main(conn) -> None:
    """Worker loop: receive ``("run", idx, task, attempt)``, send results.

    Replies ``(idx, ok, payload, records)`` where ``records`` is the
    worker's buffered telemetry (``None`` when telemetry is off) — the
    child recorder installed by :func:`repro.obs.worker_begin` is drained
    after every task so spans and metrics ride the existing reply pipe
    back into the parent stream.  A ``("stop",)`` message (or a closed
    pipe) ends the loop.  When the parent configured
    ``worker_rlimit_bytes``, the worker soft-caps its address space
    *relative to what fork inherited* before serving tasks, so an
    over-budget cell dies as a classified ``MemoryError`` reply, never as
    a kernel SIGKILL.

    Workers drop the parent's inherited shutdown flag and ignore SIGINT
    (:func:`repro.runtime.signals.reset_in_child`): on Ctrl-C the parent
    alone coordinates the wind-down over the pipes.  When the parent
    configured a heartbeat interval, a daemon thread reports liveness
    between replies (see :func:`_heartbeat_loop`).
    """
    runner = _WORKER_RUNNER
    faults = _WORKER_FAULTS
    signals.reset_in_child()
    recorder = worker_begin()
    if _WORKER_RLIMIT is not None:
        apply_worker_rlimit(_WORKER_RLIMIT)
    send_lock = threading.Lock()
    current: List = [None]  # [(idx, task)] while a task is in flight
    if _WORKER_HEARTBEAT is not None:
        threading.Thread(target=_heartbeat_loop,
                         args=(conn, send_lock, current, _WORKER_HEARTBEAT),
                         name="repro-heartbeat", daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        # Legacy 4-tuples carry no trace context; a 5th element is the
        # supervisor's ambient span ids (see ``trace_context``).
        _, idx, task, attempt = msg[:4]
        ctx = msg[4] if len(msg) > 4 else None
        current[0] = (idx, task)
        try:
            if faults is not None:
                faults.apply_worker(task, attempt, idx)
            with apply_trace_context(ctx):
                result = runner(task)
            ok, payload = True, result
        except BaseException as exc:
            ok, payload = False, _failure_payload(exc)
        current[0] = None
        records = None
        if recorder is not None:
            recorder.metric("worker.ru_maxrss_kb",
                            peak_rss_bytes() // 1024, unit="kb",
                            cell=_task_attr(task))
            records = recorder.drain()
        try:
            with send_lock:
                conn.send((idx, ok, payload, records))
        except Exception:
            # The result (or error) could not cross the pipe; report a
            # sendable failure so the supervisor can retry the cell.
            try:
                with send_lock:
                    conn.send((idx, False,
                               {"error": "worker could not send result for "
                                         f"task {idx}", "kind": "error"},
                               None))
            except Exception:
                return


class WorkerConfig:
    """What a transport needs to stand up workers for one pool run."""

    __slots__ = ("runner", "fault_plan", "rlimit_bytes",
                 "heartbeat_interval")

    def __init__(self, runner, *, fault_plan=None, rlimit_bytes=None,
                 heartbeat_interval=None):
        self.runner = runner
        self.fault_plan = fault_plan
        self.rlimit_bytes = rlimit_bytes
        self.heartbeat_interval = heartbeat_interval


class WorkerEndpoint:
    """One worker the supervisor can assign cells to, however connected.

    The supervisor only ever touches this interface: ``assign`` /
    ``stop`` / ``recv`` plus the waitable ``wait_handles``.  Scheduling
    state (``current``, ``deadline``, ``last_progress``) lives on the
    endpoint so the stall watchdog is transport-agnostic.
    """

    #: fail kind recorded when this endpoint's stall deadline passes.
    stall_kind = "hang"
    #: ``where`` recorded in attempt histories.
    where = "worker"
    #: remote host label (``None`` for local fork workers).
    host: Optional[str] = None

    def assign(self, att, timeout: Optional[float]) -> None:
        raise NotImplementedError

    def stop(self, *, kill: bool = False) -> None:
        raise NotImplementedError

    def wait_handles(self) -> tuple:
        """Objects for :func:`multiprocessing.connection.wait`."""
        raise NotImplementedError

    def drain_handle(self):
        """The reply channel alone (shutdown drain ignores death)."""
        raise NotImplementedError

    def readable(self, ready_set) -> bool:
        raise NotImplementedError

    def recv(self):
        """One normalized message: ``("hb", idx, progress, cell)`` or
        ``(idx, ok, payload, records)``.  Raises
        :class:`EndpointLostError` when the channel is gone."""
        raise NotImplementedError

    def dead(self, ready_set) -> bool:
        """Death indication independent of the reply channel."""
        return False

    def confirm_dead(self) -> bool:
        """Re-check after :meth:`dead` (local sentinel race guard)."""
        return True

    def death(self, lost: Optional[EndpointLostError]):
        """``(fail_kind, description)`` for the attempt history."""
        raise NotImplementedError


class Transport:
    """A source of worker endpoints with a replacement/recovery policy."""

    #: Remote transports force pool mode even at ``jobs=1`` and mark
    #: their failures ``host_lost``.
    is_remote = False

    def open(self, config: WorkerConfig) -> None:
        """Prepare for one pool run (called before :meth:`start`)."""

    def start(self, want: int) -> List[WorkerEndpoint]:
        """Stand up the initial endpoints (at most ``want`` useful)."""
        raise NotImplementedError

    def replace(self, endpoint: WorkerEndpoint, *, pending: int,
                stalled: bool) -> List[WorkerEndpoint]:
        """React to ``endpoint``'s death; return replacements (if any)."""
        return []

    def revive(self, now: float) -> List[WorkerEndpoint]:
        """Endpoints recovered by background policy (reconnects)."""
        return []

    @property
    def exhausted(self) -> bool:
        """True when this transport can never produce an endpoint again."""
        return False

    def close(self) -> None:
        """Tear down after the pool loop (endpoints already stopped)."""


# ----------------------------------------------------------------------
# local fork transport (the original supervisor dialect)
# ----------------------------------------------------------------------
class _ForkEndpoint(WorkerEndpoint):
    """One supervised fork worker and its pipe."""

    __slots__ = ("transport", "process", "conn", "current", "deadline",
                 "last_progress", "_shutdown_token")

    stall_kind = "hang"
    where = "worker"
    host = None

    def __init__(self, transport: "LocalForkTransport", ctx, wid: int):
        self.transport = transport
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   name=f"repro-supervised-{wid}",
                                   daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.current = None
        self.deadline: Optional[float] = None
        #: Last heartbeat progress sample for the task in flight (None
        #: until the first heartbeat after an assignment).
        self.last_progress: Optional[int] = None
        # Forced teardown (second Ctrl-C) runs os._exit, which skips the
        # multiprocessing atexit reaping of daemon children — register so
        # the coordinator can kill this worker directly.
        coord = signals.get_shutdown()
        self._shutdown_token = (coord.register_process(self.process)
                                if coord is not None else None)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def assign(self, att, timeout: Optional[float]) -> None:
        att.attempts += 1
        self.current = att
        self.last_progress = None
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        try:
            # The 5th element carries the supervisor's ambient span ids
            # (None, and hence a legacy-shaped message, when tracing is
            # off) so worker-side spans parent under the sweep span.
            ctx = trace_context()
            if ctx is None:
                self.conn.send(("run", att.idx, att.task, att.attempts))
            else:
                self.conn.send(("run", att.idx, att.task, att.attempts,
                                ctx))
        except (OSError, ValueError) as exc:
            raise EndpointLostError(f"assign failed: {exc}") from None

    def stop(self, *, kill: bool = False) -> None:
        self.transport._note_stopped(self)
        if kill and self.process.is_alive():
            self.process.terminate()
        else:
            try:
                self.conn.send(("stop",))
            except Exception:
                pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)
        self.conn.close()
        if self._shutdown_token is not None:
            coord = signals.get_shutdown()
            if coord is not None:
                coord.unregister_process(self._shutdown_token)

    def wait_handles(self) -> tuple:
        return (self.conn, self.process.sentinel)

    def drain_handle(self):
        return self.conn

    def readable(self, ready_set) -> bool:
        return self.conn in ready_set

    def recv(self):
        try:
            msg = self.conn.recv()
        except (EOFError, OSError) as exc:
            # Pipe died mid-message: the process sentinel stays the
            # authority on whether the worker is actually dead.
            raise EndpointLostError(f"reply pipe closed: {exc!r}") from None
        except Exception as exc:
            # Bytes arrived but could not be unpickled — a torn or
            # garbled frame.  The pipe is unrecoverable (framing is
            # lost), so the worker must be killed and its cell re-run.
            raise EndpointLostError(f"garbled worker reply: {exc!r}",
                                    garbled=True) from None
        if msg and msg[0] == "hb":
            return tuple(msg)
        if len(msg) >= 4:
            return tuple(msg[:4])
        idx, ok, payload = msg  # legacy 3-tuple reply (no telemetry)
        return (idx, ok, payload, None)

    def dead(self, ready_set) -> bool:
        return (not self.process.is_alive()
                or self.process.sentinel in ready_set)

    def confirm_dead(self) -> bool:
        return not self.process.is_alive()

    def death(self, lost: Optional[EndpointLostError]):
        if lost is not None and self.process.is_alive():
            return ("crash", f"worker reply channel lost ({lost})")
        return classify_exitcode(self.process.exitcode)


class LocalForkTransport(Transport):
    """Fork workers over duplex pipes — the original supervisor path.

    Workers inherit their runner (and any fault plan) through module
    globals at fork time, so nothing is pickled.  The replacement policy
    reproduces the pre-transport supervisor exactly: a *stalled* worker
    is always replaced; a *dead* worker is replaced only while cells are
    pending and the pool is below ``jobs``.
    """

    is_remote = False

    def __init__(self, jobs: int):
        self.jobs = max(1, jobs)
        self._ctx = None
        self._wid = itertools.count()
        self._active = 0
        self._opened = False

    def open(self, config: WorkerConfig) -> None:
        global _WORKER_RUNNER, _WORKER_FAULTS, _WORKER_RLIMIT, \
            _WORKER_HEARTBEAT
        self._ctx = multiprocessing.get_context("fork")
        _WORKER_RUNNER = config.runner
        _WORKER_FAULTS = config.fault_plan
        _WORKER_RLIMIT = config.rlimit_bytes
        _WORKER_HEARTBEAT = config.heartbeat_interval
        self._active = 0
        self._opened = True

    def start(self, want: int) -> List[WorkerEndpoint]:
        return [self._spawn() for _ in range(min(self.jobs, max(0, want)))]

    def _spawn(self) -> _ForkEndpoint:
        ep = _ForkEndpoint(self, self._ctx, next(self._wid))
        self._active += 1
        return ep

    def _note_stopped(self, ep) -> None:
        self._active = max(0, self._active - 1)

    def replace(self, endpoint, *, pending: int,
                stalled: bool) -> List[WorkerEndpoint]:
        if stalled or (pending and self._active < self.jobs):
            return [self._spawn()]
        return []

    def close(self) -> None:
        global _WORKER_RUNNER, _WORKER_FAULTS, _WORKER_RLIMIT, \
            _WORKER_HEARTBEAT
        if self._opened:
            _WORKER_RUNNER = None
            _WORKER_FAULTS = None
            _WORKER_RLIMIT = None
            _WORKER_HEARTBEAT = None
            self._opened = False


# ----------------------------------------------------------------------
# TCP transport (remote worker runners)
# ----------------------------------------------------------------------
def _encode_task(task):
    return list(task) if isinstance(task, tuple) else task


def decode_task(obj):
    """Deep list→tuple, inverting JSON's flattening of cell tuples."""
    if isinstance(obj, list):
        return tuple(decode_task(x) for x in obj)
    return obj


class _HostState:
    """Per-host ladder: consecutive failures, backoff, quarantine."""

    __slots__ = ("addr", "label", "failures", "next_attempt", "connected",
                 "dropped")

    def __init__(self, addr: Tuple[str, int]):
        self.addr = addr
        self.label = f"{addr[0]}:{addr[1]}"
        self.failures = 0
        self.next_attempt = 0.0
        self.connected = False
        self.dropped = False


class _TcpEndpoint(WorkerEndpoint):
    """One framed connection to a remote worker runner's serving child."""

    __slots__ = ("transport", "sock", "_host_state", "pid", "current",
                 "deadline", "last_progress", "clock_offset")

    stall_kind = "host_lost"
    where = "remote"

    def __init__(self, transport: "TcpTransport", host_state: _HostState,
                 sock: socket.socket, welcome: dict,
                 clock_offset: float = 0.0):
        self.transport = transport
        self._host_state = host_state
        self.sock = sock
        self.pid = welcome.get("pid")
        self.current = None
        self.deadline: Optional[float] = None
        self.last_progress: Optional[int] = None
        #: Estimated remote-minus-local wall-clock skew (seconds), from
        #: the handshake round trip; subtracted from reply record
        #: timestamps on ingest so remote spans line up with local ones.
        self.clock_offset = clock_offset

    @property
    def host(self) -> str:  # type: ignore[override]
        return self._host_state.label

    def assign(self, att, timeout: Optional[float]) -> None:
        att.attempts += 1
        self.current = att
        self.last_progress = None
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        frame = {"t": "run", "idx": att.idx,
                 "task": _encode_task(att.task),
                 "attempt": att.attempts,
                 "meta": self.transport.task_meta(att.task)}
        ctx = trace_context()
        if ctx is not None:
            frame["ctx"] = ctx
        send_frame(self.sock, frame)

    def stop(self, *, kill: bool = False) -> None:
        self._host_state.connected = False
        if not kill:
            try:
                send_frame(self.sock, {"t": "stop"})
            except EndpointLostError:
                pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def wait_handles(self) -> tuple:
        return (self.sock,)

    def drain_handle(self):
        return self.sock

    def readable(self, ready_set) -> bool:
        return self.sock in ready_set

    def recv(self):
        msg = recv_frame(self.sock)
        t = msg.get("t")
        if t == "hb":
            return ("hb", msg.get("idx"), msg.get("progress", 0),
                    msg.get("cell"))
        if t == "reply":
            # A completed round trip proves the host healthy: reset its
            # consecutive-failure ladder.
            self._host_state.failures = 0
            ok = bool(msg.get("ok"))
            payload = msg.get("payload")
            if ok:
                from .checkpoint import CheckpointError, decode_result
                try:
                    payload = decode_result(payload)
                except CheckpointError as exc:
                    raise EndpointLostError(
                        f"undecodable result from {self.host}: {exc}",
                        garbled=True) from None
            elif not isinstance(payload, dict):
                payload = {"error": str(payload), "kind": "error"}
            records = msg.get("records")
            if records and self.clock_offset:
                # Normalize remote wall clocks onto the supervisor's at
                # the ingest boundary, so both the live drain and the
                # interrupted-teardown drain see corrected times.
                for record in records:
                    if isinstance(record, dict) and "t" in record:
                        record["t"] = record["t"] - self.clock_offset
            return (msg.get("idx"), ok, payload, records)
        raise EndpointLostError(f"unexpected frame type {t!r} from "
                                f"{self.host}", garbled=True)

    def death(self, lost: Optional[EndpointLostError]):
        detail = str(lost) if lost is not None else "connection closed"
        return ("host_lost", f"host {self.host} lost: {detail}")


class TcpTransport(Transport):
    """Drive remote worker runners over framed TCP with host recovery.

    Parameters
    ----------
    hosts:
        ``[(host, port), ...]`` — one endpoint per entry (list a host
        twice for two remote workers; the runner forks one serving child
        per connection, capped by its ``--slots``).
    spec:
        The handshake payload from :func:`handshake_spec`.
    task_meta:
        ``task_meta(task) -> dict`` of side-channel context a remote
        needs to rebuild fork-inherited state (today: ``num_shards`` so
        the runner can deterministically reconstruct a shard plan and
        verify its digest).
    reconnect:
        :class:`~repro.runtime.retry.RetryPolicy` pacing per-host
        reconnects.  Defaults to capped backoff with decorrelated jitter
        seeded per host, so a fleet of clients re-finding a restarted
        runner does not stampede it.
    """

    is_remote = True
    #: Consecutive failures (connect errors, lost connections, stalls)
    #: before a host is dropped for the rest of the run.
    HOST_MAX_FAILURES = 3
    CONNECT_TIMEOUT = 5.0
    #: First welcome can require the runner to generate the workload
    #: trace, so the initial handshake window is generous...
    WELCOME_TIMEOUT = 300.0
    #: ...while mid-sweep reconnects must not stall the event loop.
    REVIVE_CONNECT_TIMEOUT = 1.0
    REVIVE_WELCOME_TIMEOUT = 5.0

    def __init__(self, hosts: Sequence[Tuple[str, int]], spec: dict, *,
                 task_meta: Optional[Callable[[Any], dict]] = None,
                 reconnect: Optional[RetryPolicy] = None):
        if not hosts:
            raise ConfigError("TcpTransport needs at least one host")
        self.hosts = [_HostState(tuple(addr)) for addr in hosts]
        self.spec = dict(spec)
        self.task_meta = task_meta or (lambda task: {})
        self._reconnect = reconnect
        self._config: Optional[WorkerConfig] = None

    def _policy(self, hs: _HostState) -> RetryPolicy:
        if self._reconnect is not None:
            return self._reconnect
        return RetryPolicy(max_attempts=self.HOST_MAX_FAILURES + 1,
                           base_delay=0.25, backoff=2.0, max_delay=5.0,
                           jitter=True,
                           jitter_seed=zlib.crc32(hs.label.encode()))

    def open(self, config: WorkerConfig) -> None:
        self._config = config

    # -- connection management -----------------------------------------
    def _connect(self, hs: _HostState, *, initial: bool) -> _TcpEndpoint:
        connect_timeout = (self.CONNECT_TIMEOUT if initial
                           else self.REVIVE_CONNECT_TIMEOUT)
        welcome_timeout = (self.WELCOME_TIMEOUT if initial
                           else self.REVIVE_WELCOME_TIMEOUT)
        sock = socket.create_connection(hs.addr, timeout=connect_timeout)
        try:
            sock.settimeout(welcome_timeout)
            hello = dict(self.spec)
            hello["t"] = "hello"
            hb = (self._config.heartbeat_interval
                  if self._config is not None else None)
            hello["heartbeat"] = hb
            hello_sent = time.time()
            send_frame(sock, hello)
            msg = recv_frame(sock)
            welcome_recv = time.time()
        except EndpointLostError as exc:
            sock.close()
            raise OSError(f"handshake with {hs.label} failed: {exc}") \
                from None
        except BaseException:
            sock.close()
            raise
        if msg.get("t") == "refused":
            sock.close()
            if msg.get("retryable"):
                raise OSError(f"host {hs.label} busy: "
                              f"{msg.get('reason', 'refused')}")
            raise HandshakeError.refused(hs.label, msg)
        if msg.get("t") != "welcome":
            sock.close()
            raise OSError(f"host {hs.label} sent unexpected "
                          f"{msg.get('t')!r} instead of welcome")
        sock.settimeout(FRAME_RECV_TIMEOUT)
        hs.connected = True
        # NTP-style skew estimate: the welcome's remote clock sample is
        # assumed taken at the round trip's midpoint.  Older runners
        # send no "now" — skew stays 0 and ingest is a no-op.
        clock_offset = 0.0
        if isinstance(msg.get("now"), (int, float)):
            clock_offset = msg["now"] - (hello_sent + welcome_recv) / 2.0
        get_recorder().event("host.connected", host=hs.label,
                             worker_pid=msg.get("pid"),
                             release=msg.get("release"),
                             clock_skew_s=round(clock_offset, 6))
        logger.info("connected to remote worker %s (pid %s, "
                    "clock skew %+.3fs)", hs.label, msg.get("pid"),
                    clock_offset)
        return _TcpEndpoint(self, hs, sock, msg, clock_offset)

    def _note_failure(self, hs: _HostState, why: str) -> None:
        hs.connected = False
        hs.failures += 1
        if hs.failures > self.HOST_MAX_FAILURES:
            self._drop(hs, why)
            return
        delay = self._policy(hs).delay(hs.failures)
        hs.next_attempt = time.monotonic() + delay
        logger.warning("host %s unavailable (%s); retry %d/%d in %.2fs",
                       hs.label, why, hs.failures, self.HOST_MAX_FAILURES,
                       delay)

    def _drop(self, hs: _HostState, why: str) -> None:
        if hs.dropped:
            return
        hs.dropped = True
        hs.connected = False
        get_recorder().event("host.dropped", level="warning",
                             host=hs.label, reason=why,
                             failures=hs.failures)
        logger.warning("dropping host %s for this run: %s", hs.label, why)

    # -- Transport interface -------------------------------------------
    def start(self, want: int) -> List[WorkerEndpoint]:
        endpoints: List[WorkerEndpoint] = []
        for hs in self.hosts:
            if hs.dropped:
                continue
            try:
                endpoints.append(self._connect(hs, initial=True))
            except HandshakeError:
                # A structured refusal is a configuration error, not a
                # flaky host: fail the run loudly and immediately.
                for ep in endpoints:
                    ep.stop(kill=True)
                raise
            except OSError as exc:
                self._note_failure(hs, str(exc))
        return endpoints

    def replace(self, endpoint, *, pending: int,
                stalled: bool) -> List[WorkerEndpoint]:
        hs = endpoint._host_state
        self._note_failure(hs, "stalled (heartbeat silence)" if stalled
                           else "connection lost")
        return []

    def revive(self, now: float) -> List[WorkerEndpoint]:
        out: List[WorkerEndpoint] = []
        for hs in self.hosts:
            if hs.dropped or hs.connected or now < hs.next_attempt:
                continue
            try:
                out.append(self._connect(hs, initial=False))
            except HandshakeError as exc:
                # Mid-sweep the run must survive: a host that restarted
                # into an incompatible build is dropped, not fatal.
                self._drop(hs, str(exc))
            except OSError as exc:
                self._note_failure(hs, str(exc))
        return out

    @property
    def exhausted(self) -> bool:
        return all(hs.dropped for hs in self.hosts)

    def close(self) -> None:
        for hs in self.hosts:
            hs.connected = False
