"""Seeded chaos soak: kill-and-resume loops that must converge bit-identically.

The robustness layer makes three promises: an interrupted sweep exits
resumable, a resumed sweep re-runs only what is missing, and however many
times a sweep is killed mid-flight, the final merged results are
**bit-identical** to one uninterrupted run.  This harness proves all three
at once by brute force:

1. run one *baseline* sweep, uninterrupted, in a fresh child process;
2. run up to ``kill_cycles`` *chaos* cycles against a shared checkpoint
   directory — each cycle forks a child that runs the same sweep under
   graceful shutdown, and a seeded RNG picks how it dies: SIGINT or
   SIGTERM after a random delay, outright SIGKILL, or an injected
   :class:`~repro.runtime.faults.FaultPlan` fault (worker crash, hang,
   OOM, or the worker SIGTERM-ing its own supervisor); between cycles the
   journal tail is occasionally torn mid-line to simulate a kill during a
   checkpoint write;
3. when a cycle survives to completion (or the cycle budget is spent, at
   which point one clean cycle runs), compare its results — and
   optionally its telemetry manifest's stable view — byte-for-byte
   against the baseline.

Every random choice flows from one ``seed``, so a failing soak replays
exactly.  The harness is engine-agnostic: the caller supplies
``run_sweep(checkpoint_dir, fault_plan, telemetry_dir) -> list`` which
builds whatever engine configuration is under test (serial, sharded,
memory-budgeted...) and returns the grid results in a stable order.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import (
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_RESOURCE_EXHAUSTED,
    ConfigError,
    ReproError,
    SweepInterrupted,
)
from .faults import FaultPlan, tear_jsonl_tail
from .signals import graceful_shutdown

#: Everything a cycle can do to the sweep.  ``complete`` runs a clean
#: cycle (useful to weight convergence into long soaks); the ``fault:*``
#: actions inject one worker-side fault on a random cell's first attempt
#: so the supervisor's retry completes the cell.
ACTIONS: Tuple[str, ...] = (
    "sigint", "sigterm", "sigkill",
    "fault:crash", "fault:hang", "fault:oom", "fault:sigterm-parent",
)

#: Actions that need the caller's engine to have a (short) per-cell
#: timeout configured: a hung worker is only ever reaped by the stall
#: watchdog.
TIMEOUT_ACTIONS = frozenset({"fault:hang"})

#: What :func:`host_chaos` can do to a remote worker host mid-sweep:
#: SIGKILL its whole process group (host dies, connections reset) or
#: SIGSTOP it (host partitioned: alive but silent, so only the
#: heartbeat-silence watchdog can notice).
HOST_ACTIONS: Tuple[str, ...] = ("host-kill", "host-partition")


@dataclass(frozen=True)
class CycleOutcome:
    """What one chaos cycle did and how the sweep child died (or didn't)."""

    cycle: int
    action: str
    exitcode: Optional[int]  # None: child had to be force-killed as stuck
    completed: bool          # child delivered final results
    journal_cells: int       # distinct full cells journaled after the cycle
    torn: bool               # journal tail torn before the *next* cycle
    duration_s: float


@dataclass
class ChaosReport:
    """Result of one :func:`chaos_soak` run."""

    seed: int
    cycles: List[CycleOutcome] = field(default_factory=list)
    converged: bool = False           # some cycle delivered final results
    identical: bool = False           # ...bit-identical to the baseline
    manifest_identical: Optional[bool] = None  # None: manifests not compared
    baseline_sha256: str = ""
    final_sha256: str = ""

    @property
    def ok(self) -> bool:
        """The property under test: converged, bit-identical, manifests too."""
        return (self.converged and self.identical
                and self.manifest_identical is not False)

    def summary(self) -> str:
        lines = [f"chaos soak seed={self.seed}: {len(self.cycles)} cycle(s), "
                 f"converged={self.converged} identical={self.identical} "
                 f"manifest_identical={self.manifest_identical}"]
        for c in self.cycles:
            lines.append(
                f"  cycle {c.cycle}: {c.action:<22} exit={c.exitcode!r:>5} "
                f"completed={c.completed} journal_cells={c.journal_cells}"
                f"{' torn' if c.torn else ''} ({c.duration_s:.2f}s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# child-side plumbing
# ----------------------------------------------------------------------
def _encode_results(results: Sequence) -> bytes:
    """Canonical bytes of a result list (the bit-identity anchor)."""
    from .checkpoint import encode_result

    return json.dumps([encode_result(r) for r in results],
                      sort_keys=True, separators=(",", ":")).encode()


def _child_main(conn, run_sweep, checkpoint_dir, plan, telemetry_dir) -> None:
    """Run one sweep attempt in a forked child, reporting via ``conn``.

    Exit codes mirror the CLI contract exactly (that contract is part of
    what the soak verifies): 0 with results on the pipe, 75 when the
    sweep was interrupted gracefully, 3 on resource exhaustion, 2 on any
    other error.
    """
    try:
        with graceful_shutdown():
            try:
                results = run_sweep(checkpoint_dir, plan, telemetry_dir)
            except SweepInterrupted:
                os._exit(EXIT_INTERRUPTED)
            except KeyboardInterrupt:
                os._exit(EXIT_INTERRUPTED)
            except MemoryError:
                os._exit(EXIT_RESOURCE_EXHAUSTED)
            except ReproError as exc:
                if getattr(exc, "kind", None) in ("memory", "disk"):
                    os._exit(EXIT_RESOURCE_EXHAUSTED)
                traceback.print_exc()
                os._exit(EXIT_FAILED)
            conn.send_bytes(_encode_results(results))
            conn.close()
            os._exit(0)
    except BaseException:  # pragma: no cover - diagnostics only
        traceback.print_exc()
        os._exit(EXIT_FAILED)


def journal_cell_count(checkpoint_dir: str) -> int:
    """Distinct *full* (non-shard) cells across the journals in a dir.

    Reads the raw JSONL rather than :class:`CheckpointJournal` so the
    count never mutates the journal (no tail recovery, no GC) — the soak
    observes, the sweep under test repairs.
    """
    cells = set()
    try:
        names = os.listdir(checkpoint_dir)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(checkpoint_dir, name),
                      encoding="utf-8") as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    cell = record.get("cell") if isinstance(record, dict) \
                        else None
                    if not isinstance(cell, list) or not cell:
                        continue
                    if str(cell[0]).endswith("-shard"):
                        continue
                    cells.add(json.dumps(cell))
        except OSError:
            continue
    return len(cells)


def _journal_paths(checkpoint_dir: str) -> List[str]:
    try:
        return sorted(os.path.join(checkpoint_dir, n)
                      for n in os.listdir(checkpoint_dir)
                      if n.endswith(".jsonl"))
    except OSError:
        return []


def _manifest_sha(telemetry_dir: Optional[str]) -> Optional[str]:
    """Stable-view digest of the single run under a telemetry dir."""
    if telemetry_dir is None:
        return None
    from ..obs.manifest import (
        find_runs,
        load_manifest,
        manifest_stable_bytes,
    )

    runs = find_runs(telemetry_dir)
    if len(runs) != 1:
        return None
    return hashlib.sha256(
        manifest_stable_bytes(load_manifest(runs[0]))).hexdigest()


# ----------------------------------------------------------------------
# the soak loop
# ----------------------------------------------------------------------
def chaos_soak(run_sweep: Callable[[str, Optional[FaultPlan], Optional[str]],
                                   Sequence],
               workdir: str, *,
               seed: int = 0,
               kill_cycles: int = 5,
               kill_delay: Tuple[float, float] = (0.05, 0.6),
               actions: Sequence[str] = ACTIONS,
               tear_probability: float = 0.25,
               cycle_timeout: float = 120.0,
               compare_manifests: bool = True,
               grid_cells: int = 8) -> ChaosReport:
    """Soak one sweep configuration under seeded kills until convergence.

    ``run_sweep(checkpoint_dir, fault_plan, telemetry_dir)`` must run the
    full sweep with checkpointing rooted at ``checkpoint_dir`` (wiring
    ``fault_plan`` and ``telemetry_dir`` into the engine when not None)
    and return the grid results as a list in deterministic order.

    ``grid_cells`` tells the fault scheduler how many grid cells exist so
    injected faults land on a random real cell index.  Returns a
    :class:`ChaosReport`; the soak itself never raises on divergence —
    assert on ``report.ok`` (and print ``report.summary()`` on failure).
    """
    for action in actions:
        if action not in ACTIONS and action != "complete":
            raise ConfigError(f"unknown chaos action {action!r}; "
                              f"known: {sorted(ACTIONS) + ['complete']}")
    rng = random.Random(seed)
    os.makedirs(workdir, exist_ok=True)
    baseline_ckpt = os.path.join(workdir, "baseline-ckpt")
    chaos_ckpt = os.path.join(workdir, "chaos-ckpt")
    baseline_tel = (os.path.join(workdir, "baseline-telemetry")
                    if compare_manifests else None)
    final_tel = (os.path.join(workdir, "final-telemetry")
                 if compare_manifests else None)

    report = ChaosReport(seed=seed)

    # Baseline: one uninterrupted run in its own child (so its signal
    # handlers, fork pool and telemetry never leak into the soak's
    # process) against a private checkpoint dir.
    exitcode, payload = _run_cycle(run_sweep, baseline_ckpt, None,
                                   baseline_tel, action=None, delay=None,
                                   cycle_timeout=cycle_timeout)
    if exitcode != 0 or payload is None:
        raise ReproError(
            f"chaos soak baseline run failed (exit {exitcode!r}) -- "
            "the sweep must pass uninterrupted before it is worth killing")
    report.baseline_sha256 = hashlib.sha256(payload).hexdigest()
    baseline_manifest = _manifest_sha(baseline_tel)

    final_payload: Optional[bytes] = None
    for cycle in range(kill_cycles + 1):
        last = cycle == kill_cycles
        action = "complete" if last else rng.choice(list(actions))
        plan = None
        delay = None
        if action.startswith("fault:"):
            plan = _plan_for(action, rng.randrange(max(1, grid_cells)))
        elif action in ("sigint", "sigterm", "sigkill"):
            delay = rng.uniform(*kill_delay)
        t0 = time.monotonic()
        exitcode, payload = _run_cycle(
            run_sweep, chaos_ckpt, plan,
            final_tel if last else None,
            action=None if action == "complete" else action,
            delay=delay, cycle_timeout=cycle_timeout)
        completed = payload is not None and exitcode == 0
        torn = False
        if not completed and rng.random() < tear_probability:
            torn = any(tear_jsonl_tail(p)
                       for p in _journal_paths(chaos_ckpt))
        report.cycles.append(CycleOutcome(
            cycle=cycle, action=action, exitcode=exitcode,
            completed=completed,
            journal_cells=journal_cell_count(chaos_ckpt), torn=torn,
            duration_s=time.monotonic() - t0))
        if completed:
            final_payload = payload
            # The graded comparison wants the *final* run's manifest; a
            # convergence before the last cycle ran without telemetry,
            # so replay one clean cycle with it.
            if not last and final_tel is not None:
                exitcode, payload = _run_cycle(
                    run_sweep, chaos_ckpt, None, final_tel, action=None,
                    delay=None, cycle_timeout=cycle_timeout)
                if exitcode == 0 and payload is not None:
                    final_payload = payload
            break

    if final_payload is not None:
        report.converged = True
        report.final_sha256 = hashlib.sha256(final_payload).hexdigest()
        report.identical = report.final_sha256 == report.baseline_sha256
        if compare_manifests:
            final_manifest = _manifest_sha(final_tel)
            if baseline_manifest is not None and final_manifest is not None:
                report.manifest_identical = \
                    final_manifest == baseline_manifest
    return report


def _plan_for(action: str, cell_index: int) -> FaultPlan:
    """A first-attempt-only fault plan for one random grid cell."""
    fault = action[len("fault:"):]
    if fault == "crash":
        return FaultPlan(crash={cell_index: 1})
    if fault == "hang":
        return FaultPlan(hang={cell_index: 1})
    if fault == "oom":
        return FaultPlan(exhaust_memory={cell_index: 1})
    if fault == "sigterm-parent":
        return FaultPlan(sigterm_parent={cell_index: 1})
    raise ConfigError(f"unknown fault action {action!r}")


def _run_cycle(run_sweep, checkpoint_dir, plan, telemetry_dir, *,
               action: Optional[str], delay: Optional[float],
               cycle_timeout: float) -> Tuple[Optional[int],
                                              Optional[bytes]]:
    """Fork one sweep child; optionally signal it after ``delay``.

    Returns ``(exitcode, payload)``; ``exitcode`` is None when the child
    wedged past ``cycle_timeout`` and had to be force-killed, ``payload``
    is the encoded result bytes when the child completed.
    """
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_main,
                       args=(child_conn, run_sweep, checkpoint_dir, plan,
                             telemetry_dir))
    proc.start()
    child_conn.close()
    try:
        if action in ("sigint", "sigterm", "sigkill"):
            # Let the sweep get going, then kill it.  If it finishes
            # first, the payload below simply records a completion.
            deadline = time.monotonic() + (delay or 0.0)
            while time.monotonic() < deadline and proc.is_alive():
                time.sleep(0.005)
            if proc.is_alive():
                signum = {"sigint": signal.SIGINT,
                          "sigterm": signal.SIGTERM,
                          "sigkill": signal.SIGKILL}[action]
                os.kill(proc.pid, signum)
        proc.join(cycle_timeout)
        if proc.is_alive():
            proc.kill()
            proc.join(10.0)
            return None, None
        payload = None
        try:
            if parent_conn.poll(0):
                payload = parent_conn.recv_bytes()
        except (EOFError, OSError):
            payload = None
        return proc.exitcode, payload
    finally:
        parent_conn.close()
        if proc.is_alive():  # pragma: no cover - defensive
            proc.kill()
        proc.join(10.0)


# ----------------------------------------------------------------------
# multi-host chaos
# ----------------------------------------------------------------------
class _Runner:
    """One ``repro.runtime.remote_worker`` subprocess in its own session
    (so a host-kill can SIGKILL the runner *and* its serving children as
    one process group, exactly like losing the machine)."""

    def __init__(self, cache_dir: str):
        import re
        import subprocess

        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.remote_worker",
             "--listen", "127.0.0.1:0", "--slots", "2",
             "--trace-cache", cache_dir],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            start_new_session=True)
        line = self.proc.stdout.readline()
        m = re.search(r"listening on ([\d.]+):(\d+)", line or "")
        if not m:
            self.kill()
            raise ReproError(
                f"remote worker runner failed to start (got {line!r})")
        self.addr = f"{m.group(1)}:{m.group(2)}"

    def signal_group(self, signum: int) -> None:
        try:
            os.killpg(os.getpgid(self.proc.pid), signum)
        except (ProcessLookupError, PermissionError):
            pass

    def kill(self) -> None:
        self.signal_group(signal.SIGKILL)
        try:
            self.proc.wait(timeout=10.0)
        except Exception:  # pragma: no cover - defensive
            pass
        if self.proc.stdout is not None:
            self.proc.stdout.close()


def host_chaos(workload: str, workdir: str, *, seed: int = 0,
               cycles: int = 2,
               kill_delay: Tuple[float, float] = (0.1, 0.8),
               actions: Sequence[str] = HOST_ACTIONS,
               cycle_timeout: float = 300.0) -> ChaosReport:
    """Kill (or partition) a remote worker host mid-sweep; require
    bit-identical convergence.

    Each cycle starts two loopback runner processes, launches a
    distributed sweep child against both (plus local workers), and after
    a seeded delay delivers the cycle's action to one runner's whole
    process group: SIGKILL (connections reset — the supervisor sees the
    loss immediately) or SIGSTOP (a network partition's observable shape:
    the host stays connected but falls silent, so only heartbeat-silence
    detection can reclaim its cells).  The sweep must either complete in
    that same run — lost cells reassigned to the surviving host and the
    local workers — or exit resumable (75), in which case one resumed
    cycle must finish the job.  Either way the final results must be
    byte-identical to a single-host serial baseline.
    """
    for action in actions:
        if action not in HOST_ACTIONS:
            raise ConfigError(f"unknown host action {action!r}; "
                              f"known: {sorted(HOST_ACTIONS)}")
    from ..analysis.engine import SweepEngine

    rng = random.Random(seed)
    os.makedirs(workdir, exist_ok=True)
    cache_dir = os.path.join(workdir, "trace-cache")
    cells = [("classify", bb, "dubois") for bb in (16, 64)] + \
            [("protocol", 32, "SD")]

    def make_sweep(hosts):
        def run_sweep(checkpoint_dir, fault_plan, telemetry_dir):
            # jobs=1 with hosts set: the pool is remote-only, so every
            # cell crosses the wire and the victim host is guaranteed to
            # be holding work when the chaos action lands.
            engine = SweepEngine.for_workload(
                workload, jobs=1, shards=2, cache_dir=cache_dir,
                checkpoint_dir=checkpoint_dir, fault_plan=fault_plan,
                telemetry_dir=telemetry_dir, timeout=5.0, hosts=hosts)
            return list(engine.run_grid(cells))
        return run_sweep

    report = ChaosReport(seed=seed)
    baseline_ckpt = os.path.join(workdir, "baseline-ckpt")
    exitcode, payload = _run_cycle(make_sweep(None), baseline_ckpt, None,
                                   None, action=None, delay=None,
                                   cycle_timeout=cycle_timeout)
    if exitcode != 0 or payload is None:
        raise ReproError(
            f"host chaos baseline run failed (exit {exitcode!r})")
    report.baseline_sha256 = hashlib.sha256(payload).hexdigest()

    for cycle in range(cycles):
        action = actions[cycle % len(actions)] if actions else "host-kill"
        chaos_ckpt = os.path.join(workdir, f"cycle{cycle}-ckpt")
        runners = [_Runner(cache_dir), _Runner(cache_dir)]
        victim = runners[rng.randrange(2)]
        signum = (signal.SIGKILL if action == "host-kill"
                  else signal.SIGSTOP)
        delay = rng.uniform(*kill_delay)
        import threading
        timer = threading.Timer(delay, victim.signal_group, args=(signum,))
        timer.start()
        t0 = time.monotonic()
        try:
            hosts = ",".join(r.addr for r in runners)
            exitcode, payload = _run_cycle(
                make_sweep(hosts), chaos_ckpt, None, None, action=None,
                delay=None, cycle_timeout=cycle_timeout)
            if payload is None and exitcode == EXIT_INTERRUPTED:
                # Resumable exit under host loss: one resumed run (local
                # only) must converge from the journal.
                exitcode, payload = _run_cycle(
                    make_sweep(None), chaos_ckpt, None, None, action=None,
                    delay=None, cycle_timeout=cycle_timeout)
        finally:
            timer.cancel()
            for r in runners:
                r.kill()
        completed = payload is not None and exitcode == 0
        report.cycles.append(CycleOutcome(
            cycle=cycle, action=action, exitcode=exitcode,
            completed=completed,
            journal_cells=journal_cell_count(chaos_ckpt), torn=False,
            duration_s=time.monotonic() - t0))
        if not completed:
            return report
        sha = hashlib.sha256(payload).hexdigest()
        report.final_sha256 = sha
        if sha != report.baseline_sha256:
            return report
    report.converged = bool(report.cycles)
    report.identical = report.converged and \
        report.final_sha256 == report.baseline_sha256
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny CLI wrapper used by the CI chaos-soak job.

    Runs the soak over a named workload with a small grid on every
    supported execution path; exits non-zero if any path fails to
    converge bit-identically.
    """
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.chaos",
        description="seeded kill-and-resume chaos soak")
    parser.add_argument("--workload", default="JACOBI64")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kill-cycles", type=int, default=4)
    parser.add_argument("--paths", default="serial,sharded",
                        help="comma list: serial,sharded,finite,hosts "
                             "(hosts = loopback multi-host sweep with a "
                             "host killed/partitioned mid-flight)")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args(argv)

    from ..analysis.engine import SweepEngine

    def make_runner(jobs, shards, cells_of):
        def run_sweep(checkpoint_dir, fault_plan, telemetry_dir):
            engine = SweepEngine.for_workload(
                args.workload, jobs=jobs, shards=shards,
                checkpoint_dir=checkpoint_dir, fault_plan=fault_plan,
                telemetry_dir=telemetry_dir, timeout=5.0)
            return list(engine.run_grid(cells_of()))
        return run_sweep

    classify_cells = lambda: [("classify", bb, "dubois")
                              for bb in (16, 64, 256)] + \
                            [("compare", 32, None)]
    finite_cells = lambda: [("finite", 16, "c256w4"),
                            ("classify", 32, "dubois")]
    paths = {
        "serial": (make_runner(1, None, classify_cells), 4),
        "sharded": (make_runner(2, 2, classify_cells), 4),
        "finite": (make_runner(2, 2, finite_cells), 2),
    }
    failed = False
    base = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    for name in args.paths.split(","):
        name = name.strip()
        if name == "hosts":
            report = host_chaos(args.workload, os.path.join(base, name),
                                seed=args.seed,
                                cycles=max(1, args.kill_cycles // 2))
            ok = report.converged and report.identical
        elif name in paths:
            runner, n_cells = paths[name]
            report = chaos_soak(
                runner, os.path.join(base, name), seed=args.seed,
                kill_cycles=args.kill_cycles, grid_cells=n_cells)
            ok = report.ok
        else:
            parser.error(f"unknown path {name!r}")
        print(f"[chaos:{name}]")
        print(report.summary())
        if not ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
