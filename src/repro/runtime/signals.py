"""Cooperative shutdown and liveness signalling for interruptible sweeps.

Two small facilities live here, shared by the CLI, the sweep engine, the
supervised worker pool and the chaos harness:

* A process-wide :class:`ShutdownCoordinator` implementing **two-phase
  graceful shutdown**.  The first SIGINT/SIGTERM flips a flag that every
  long-running loop polls (via :func:`check_interrupt` or
  :func:`note_progress`); dispatch stops, in-flight work is drained or
  cancelled, the checkpoint journal is flushed, and the process exits
  with :data:`repro.errors.EXIT_INTERRUPTED`.  A second signal forces
  immediate teardown: registered child processes are killed and the
  process ``os._exit``\\ s without further ceremony.

* A process-local **progress counter** ticked from the hot event loops
  (protocol simulation, classifier feeding) in
  :data:`HEARTBEAT_CHUNK`-sized strides.  Worker processes sample it
  from a heartbeat thread so the supervisor can tell a *slow* cell
  (counter advancing) from a *hung* one (counter frozen); in the parent
  process the same tick doubles as a cancellation point for serial
  cells.

Neither facility imports anything heavy: this module must be importable
from the innermost loops without dragging in the engine.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Optional

from ..errors import EXIT_INTERRUPTED, SweepInterrupted

__all__ = [
    "HEARTBEAT_CHUNK",
    "ShutdownCoordinator",
    "get_shutdown",
    "graceful_shutdown",
    "check_interrupt",
    "note_progress",
    "progress_count",
    "interruptible_sleep",
    "reset_in_child",
]

#: Stride, in trace events, between progress ticks in the hot loops.  At
#: paper throughput (~0.1-1 M ev/s per core) this is a tick every
#: ~0.06-0.6 s — far finer than any stall timeout — while keeping the
#: per-event overhead of liveness reporting at zero (the loops iterate
#: pre-sliced chunks; there is no per-event check).
HEARTBEAT_CHUNK = 1 << 16

# Shutdown phases.
_NONE = 0
_REQUESTED = 1
_FORCED = 2


class ShutdownCoordinator:
    """Process-wide two-phase shutdown state machine.

    Installed (usually by the CLI or the chaos harness) via
    :func:`graceful_shutdown`; queried by everything else through the
    module-level helpers so that library code never needs a reference.
    """

    def __init__(self):
        self._phase = _NONE
        self._signum: Optional[int] = None
        self._lock = threading.Lock()
        # Child processes to kill on *forced* teardown.  Normal graceful
        # drain is handled by the supervisor itself; this registry only
        # exists because ``os._exit`` skips the multiprocessing atexit
        # cleanup that would otherwise reap daemon children.
        self._procs: dict = {}
        self._next_token = 0

    # -- state ---------------------------------------------------------

    @property
    def requested(self) -> bool:
        """True once the first signal (or a programmatic request) arrived."""
        return self._phase >= _REQUESTED

    @property
    def signum(self) -> Optional[int]:
        return self._signum

    def request(self, signum: Optional[int] = None) -> None:
        """Enter graceful-shutdown phase (idempotent; second call forces)."""
        if self._phase >= _REQUESTED:
            self.force()
            return
        self._phase = _REQUESTED
        self._signum = signum

    def force(self) -> None:
        """Immediate teardown: kill registered children and exit."""
        self._phase = _FORCED
        for proc in list(self._procs.values()):
            try:
                proc.kill()
            except Exception:
                pass
        os._exit(EXIT_INTERRUPTED)

    # -- child registry ------------------------------------------------

    def register_process(self, proc) -> int:
        """Register a child for forced teardown; returns an unregister token."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._procs[token] = proc
        return token

    def unregister_process(self, token: int) -> None:
        with self._lock:
            self._procs.pop(token, None)

    # -- signal plumbing ----------------------------------------------

    def _handler(self, signum, frame):  # pragma: no cover - exercised via CLI
        if self._phase == _NONE:
            name = signal.Signals(signum).name
            os.write(2, (f"\n[repro] {name} received -- stopping dispatch and "
                         "draining in-flight cells (signal again to force "
                         "quit)\n").encode())
        self.request(signum)


# The active coordinator (None outside a graceful_shutdown() block).
_active: Optional[ShutdownCoordinator] = None

# Process-local progress counter; monotone within one process lifetime.
_progress = 0


def get_shutdown() -> Optional[ShutdownCoordinator]:
    """The coordinator installed in this process, or None."""
    return _active


class graceful_shutdown:
    """Context manager installing two-phase SIGINT/SIGTERM handling.

    Usable only from the main thread (elsewhere it degrades to a no-op
    coordinator without signal handlers, so library callers and tests can
    still drive shutdown programmatically via ``coordinator.request()``).
    """

    def __init__(self):
        self.coordinator = ShutdownCoordinator()
        self._previous = None
        self._installed: dict = {}

    def __enter__(self) -> ShutdownCoordinator:
        global _active
        self._previous = _active
        _active = self.coordinator
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._installed[signum] = signal.signal(
                        signum, self.coordinator._handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self.coordinator

    def __exit__(self, exc_type, exc, tb):
        global _active
        for signum, old in self._installed.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _active = self._previous
        return False


def check_interrupt() -> None:
    """Raise :class:`SweepInterrupted` if a graceful shutdown is pending."""
    coord = _active
    if coord is not None and coord.requested:
        raise SweepInterrupted(
            "sweep interrupted by signal"
            if coord.signum is not None else "sweep interrupted")


def note_progress(n: int = 1) -> None:
    """Advance the liveness counter by ``n`` events (a cancellation point).

    Called from the hot loops once per :data:`HEARTBEAT_CHUNK` of events.
    In worker processes the heartbeat thread samples the counter; in the
    parent process this also polls the shutdown flag so serial cells stop
    mid-trace instead of running to completion under a pending interrupt.
    """
    global _progress
    _progress += n
    check_interrupt()


def progress_count() -> int:
    """Current value of the process-local progress counter."""
    return _progress


def interruptible_sleep(seconds: float, step: float = 0.05) -> None:
    """Sleep, but wake early (raising) if shutdown is requested."""
    deadline = time.monotonic() + seconds
    while True:
        check_interrupt()
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(step, remaining))


def reset_in_child() -> None:
    """Drop inherited shutdown/progress state after ``fork``.

    Workers coordinate through the supervisor, not through the parent's
    signal flags: a flag set an instant before ``fork`` must not make
    every ``note_progress`` in the child raise.  Also ignores SIGINT so a
    terminal Ctrl-C (delivered to the whole foreground process group)
    reaches only the parent, which then winds workers down in order —
    and restores the default SIGTERM disposition so the supervisor's
    ``terminate()`` actually kills the worker instead of tripping an
    inherited graceful-shutdown handler.
    """
    global _active, _progress
    _active = None
    _progress = 0
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
