"""Retry policies for the resilient sweep executor.

A :class:`RetryPolicy` describes how many times a grid cell may be
attempted in worker processes and how long to back off between attempts
(capped exponential).  Backoff is deterministic by default — no jitter,
so fault-injection tests replay identically — with opt-in *decorrelated
jitter* behind a seeded RNG for the places where synchronized retries
would stampede a shared resource (a fleet of sweep clients all
re-finding a restarted remote worker runner at once).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed or hung grid cells.

    Parameters
    ----------
    max_attempts:
        Total attempts per cell in worker processes (first try included)
        before the supervisor degrades the cell to serial in-process
        execution.  Must be at least 1.
    base_delay:
        Backoff before the second attempt, in seconds.
    backoff:
        Multiplier applied for each further attempt.
    max_delay:
        Ceiling on any single backoff delay, in seconds.
    jitter:
        Opt in to *decorrelated jitter* (Brooker): each delay is drawn
        uniformly from ``[base_delay, 3 * previous_delay]`` and capped at
        :attr:`max_delay`, which de-synchronizes independent retriers
        while keeping the same cap and floor.  Off by default so the
        deterministic fault-injection suites stay byte-stable.
    jitter_seed:
        Seed for the jitter RNG.  Two policies built with the same seed
        replay the same delay sequence — host-reconnect policies seed
        this per host so backoff is reproducible *and* decorrelated
        across hosts.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: bool = False
    jitter_seed: Optional[int] = None

    #: RNG / previous-delay state for decorrelated jitter (excluded from
    #: equality and repr; rebuilt per instance in ``__post_init__``).
    _jitter_state: Optional[list] = field(default=None, init=False,
                                          repr=False, compare=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be non-negative")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff factor must be >= 1, got {self.backoff}")
        if self.jitter:
            object.__setattr__(
                self, "_jitter_state",
                [random.Random(self.jitter_seed), self.base_delay])

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after ``attempt`` failures (1-based).

        ``delay(1)`` is the pause after the first failure; successive
        failures grow the delay by :attr:`backoff`, capped at
        :attr:`max_delay`.  With :attr:`jitter` enabled the schedule is
        instead the seeded decorrelated-jitter walk (same floor and cap).
        """
        if attempt < 1:
            return 0.0
        if self._jitter_state is not None:
            rng, prev = self._jitter_state
            drawn = min(self.max_delay,
                        rng.uniform(self.base_delay,
                                    max(self.base_delay, prev * 3.0)))
            self._jitter_state[1] = drawn
            return drawn
        return min(self.max_delay,
                   self.base_delay * self.backoff ** (attempt - 1))

    def sleep(self, attempt: int) -> None:
        """Back off before the next attempt, honouring shutdown requests.

        A graceful-shutdown request arriving mid-backoff raises
        :class:`~repro.errors.SweepInterrupted` immediately instead of
        letting a capped 2 s delay eat into the < 5 s exit budget.
        """
        from .signals import interruptible_sleep
        interruptible_sleep(self.delay(attempt))

    @classmethod
    def from_retries(cls, retries: int, **kwargs) -> "RetryPolicy":
        """Policy allowing ``retries`` retries after the first attempt."""
        return cls(max_attempts=retries + 1, **kwargs)


#: Policy used when the caller does not supply one.
DEFAULT_RETRY_POLICY = RetryPolicy()
