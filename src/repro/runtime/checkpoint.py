"""Durable checkpoint journal for sweep grids.

A paper-scale sweep (LU200, MP3D10000, WATER288) spends minutes per grid
cell; a killed run should not recompute cells it already finished.  The
journal is an append-only JSONL file, one line per completed cell:

.. code-block:: json

    {"v": 1, "key": "<trace key>", "cell": ["classify", 64, "dubois"],
     "result": {"type": "DuboisBreakdown", ...}}

* **Keyed by (trace key, cell)** — the trace key is the workload's trace
  *cache* key when the engine was built from one (so the journal is
  invalidated exactly when the cached trace is), else a content hash of
  the trace arrays.
* **Durable** — each record is one ``json.dumps`` line, flushed and
  fsynced before :meth:`CheckpointJournal.record` returns; a crash can
  lose at most the in-flight cell.
* **Corruption-tolerant** — a truncated final line (the kill happened
  mid-write) is skipped on load, as is any record with the wrong version
  or trace key; a record whose result no longer decodes invalidates only
  itself.

Results are serialized structurally (no pickle), so a journal written by
one run decodes to objects that compare equal to a fresh computation —
resume is byte-identical as far as any consumer can observe.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional, Tuple

from ..classify.breakdown import DuboisBreakdown, SimpleBreakdown
from ..classify.compare import ClassificationComparison
from ..errors import CheckpointError
from ..obs.recorder import get_recorder
from ..protocols.results import Counters, ProtocolResult

_VERSION = 1


def default_checkpoint_dir() -> str:
    """``$REPRO_CHECKPOINT_DIR`` or ``~/.cache/repro/checkpoints``."""
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "checkpoints")


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def encode_result(result: Any) -> dict:
    """Encode one grid-cell result to a JSON-safe tagged dict."""
    if isinstance(result, DuboisBreakdown):
        return {"type": "DuboisBreakdown",
                **{f.name: getattr(result, f.name)
                   for f in dataclasses.fields(result)}}
    if isinstance(result, SimpleBreakdown):
        return {"type": "SimpleBreakdown",
                **{f.name: getattr(result, f.name)
                   for f in dataclasses.fields(result)}}
    if isinstance(result, ClassificationComparison):
        return {"type": "ClassificationComparison",
                "trace_name": result.trace_name,
                "block_bytes": result.block_bytes,
                "ours": encode_result(result.ours),
                "eggers": encode_result(result.eggers),
                "torrellas": encode_result(result.torrellas)}
    if isinstance(result, ProtocolResult):
        return {"type": "ProtocolResult",
                "protocol": result.protocol,
                "trace_name": result.trace_name,
                "block_bytes": result.block_bytes,
                "num_procs": result.num_procs,
                "breakdown": encode_result(result.breakdown),
                "counters": result.counters.as_dict(),
                "replacement_misses": result.replacement_misses}
    raise CheckpointError(
        f"cannot checkpoint result of type {type(result).__name__}")


def decode_result(blob: dict) -> Any:
    """Invert :func:`encode_result`."""
    kind = blob.get("type")
    fields = {k: v for k, v in blob.items() if k != "type"}
    try:
        if kind == "DuboisBreakdown":
            return DuboisBreakdown(**fields)
        if kind == "SimpleBreakdown":
            return SimpleBreakdown(**fields)
        if kind == "ClassificationComparison":
            return ClassificationComparison(
                trace_name=fields["trace_name"],
                block_bytes=fields["block_bytes"],
                ours=decode_result(fields["ours"]),
                eggers=decode_result(fields["eggers"]),
                torrellas=decode_result(fields["torrellas"]))
        if kind == "ProtocolResult":
            return ProtocolResult(
                protocol=fields["protocol"],
                trace_name=fields["trace_name"],
                block_bytes=fields["block_bytes"],
                num_procs=fields["num_procs"],
                breakdown=decode_result(fields["breakdown"]),
                counters=Counters(**fields["counters"]),
                replacement_misses=fields.get("replacement_misses", 0))
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed {kind} record: {exc}") from None
    raise CheckpointError(f"unknown checkpoint result type {kind!r}")


def _cell_key(cell) -> Tuple:
    """Normalize a cell for dictionary keying (JSON round-trips lists)."""
    return tuple(cell)


class CheckpointJournal:
    """Append-only JSONL journal of completed grid cells for one trace.

    Parameters
    ----------
    directory:
        Journal directory (created on first write).
    trace_key:
        The trace's identity; records with a different key are ignored on
        load, so a stale journal can never poison a new trace's sweep.
    """

    def __init__(self, directory: Optional[str], trace_key: str):
        self.directory = directory or default_checkpoint_dir()
        self.trace_key = trace_key
        self.path = os.path.join(self.directory, f"{trace_key}.jsonl")
        self._fh = None

    # ------------------------------------------------------------------
    def load(self) -> Dict[Tuple, Any]:
        """Completed cells from a previous run: ``{cell: result}``.

        Unparseable lines (e.g. a torn final write) and records from other
        trace keys or journal versions are skipped, not fatal.
        """
        completed: Dict[Tuple, Any] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed run
                if (record.get("v") != _VERSION
                        or record.get("key") != self.trace_key):
                    continue
                try:
                    completed[_cell_key(record["cell"])] = decode_result(
                        record["result"])
                except (CheckpointError, KeyError, TypeError):
                    continue  # one bad record invalidates only itself
        return completed

    #: Free-space preflight requirement before the journal is opened for
    #: appending: journals are small (one JSON line per cell), but
    #: fsyncing onto a full disk corrupts the very file that makes a
    #: killed sweep resumable, so require modest headroom up front.
    MIN_FREE_BYTES = 8 << 20

    def record(self, cell, result) -> None:
        """Durably append one completed cell (flush + fsync).

        The first append runs a disk free-space preflight and raises
        :class:`~repro.errors.ResourceExhaustedError` (``kind="disk"``)
        rather than writing a journal the next run could not trust.
        """
        if self._fh is None:
            from .resources import ensure_free_space

            os.makedirs(self.directory, exist_ok=True)
            ensure_free_space(self.directory, self.MIN_FREE_BYTES,
                              label="checkpoint journal")
            self._fh = open(self.path, "a", encoding="utf-8")
        with get_recorder().span("checkpoint.write", cell=list(cell),
                                 key=self.trace_key):
            line = json.dumps({"v": _VERSION, "key": self.trace_key,
                               "cell": list(cell),
                               "result": encode_result(result)},
                              sort_keys=True)
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
