"""Durable checkpoint journal for sweep grids.

A paper-scale sweep (LU200, MP3D10000, WATER288) spends minutes per grid
cell; a killed run should not recompute cells it already finished.  The
journal is an append-only JSONL file, one line per completed cell:

.. code-block:: json

    {"v": 1, "key": "<trace key>", "cell": ["classify", 64, "dubois"],
     "result": {"type": "DuboisBreakdown", ...}}

* **Keyed by (trace key, cell)** — the trace key is the workload's trace
  *cache* key when the engine was built from one (so the journal is
  invalidated exactly when the cached trace is), else a content hash of
  the trace arrays.
* **Durable** — each record is one ``json.dumps`` line, flushed and
  fsynced before :meth:`CheckpointJournal.record` returns; a crash can
  lose at most the in-flight cell.
* **Versioned** — the first line is a header carrying the journal format
  version and a digest of the code release that wrote it.  Resuming
  against a journal whose digest no longer matches raises
  :class:`~repro.errors.StaleJournalError` with a clear remedy instead of
  silently mixing results computed by different code.  (Headerless
  journals from older releases still load, record by record.)
* **Corruption-tolerant** — a torn final line (the kill happened
  mid-write) is *truncated away* on open, so the next append starts on a
  clean line boundary; any record with the wrong version or trace key is
  skipped; a record whose result no longer decodes invalidates only
  itself.
* **Compactable** — :meth:`CheckpointJournal.compact` atomically rewrites
  the journal as one record per cell (latest wins), dropping duplicate
  lines from retried runs and shard partials whose merged parent cell is
  already journaled.

Results are serialized structurally (no pickle), so a journal written by
one run decodes to objects that compare equal to a fresh computation —
resume is byte-identical as far as any consumer can observe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from ..classify.breakdown import DuboisBreakdown, SimpleBreakdown
from ..classify.compare import ClassificationComparison
from ..errors import CheckpointError, StaleJournalError
from ..obs.recorder import get_recorder
from ..protocols.results import Counters, ProtocolResult

_VERSION = 1

#: Version of the journal *file* format (the header line); bump when the
#: record schema or result encoding changes incompatibly.  v3 added the
#: execution-path (kernel) binding to the header digest.
JOURNAL_VERSION = 3

#: Marker distinguishing the header line from cell records.
_HEADER_KIND = "repro-journal"


def _code_version() -> str:
    # Imported lazily: repro/__init__ pulls in this module before
    # defining __version__.
    import repro
    return repro.__version__


def journal_digest(trace_key: str, kernel: Optional[str] = None) -> str:
    """Digest binding a journal to the code and execution path that wrote it.

    Covers the journal format version, the ``repro`` release, the
    *effective* kernel mode (``vectorized``/``interpreted`` — ``None``
    resolves ``auto`` for this process) and the trace key — the things
    that decide whether old records may be mixed with fresh computations.
    A resumed sweep under a different ``--kernel`` therefore recomputes
    from scratch instead of mixing execution paths.
    """
    from ..kernels import effective_kernel_mode
    if kernel is None:
        kernel = effective_kernel_mode("auto")
    blob = (f"journal:{JOURNAL_VERSION}|code:{_code_version()}"
            f"|kernel:{kernel}|key:{trace_key}")
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def default_checkpoint_dir() -> str:
    """``$REPRO_CHECKPOINT_DIR`` or ``~/.cache/repro/checkpoints``."""
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "checkpoints")


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def encode_result(result: Any) -> dict:
    """Encode one grid-cell result to a JSON-safe tagged dict."""
    if isinstance(result, DuboisBreakdown):
        return {"type": "DuboisBreakdown",
                **{f.name: getattr(result, f.name)
                   for f in dataclasses.fields(result)}}
    if isinstance(result, SimpleBreakdown):
        return {"type": "SimpleBreakdown",
                **{f.name: getattr(result, f.name)
                   for f in dataclasses.fields(result)}}
    if isinstance(result, ClassificationComparison):
        return {"type": "ClassificationComparison",
                "trace_name": result.trace_name,
                "block_bytes": result.block_bytes,
                "ours": encode_result(result.ours),
                "eggers": encode_result(result.eggers),
                "torrellas": encode_result(result.torrellas)}
    if isinstance(result, ProtocolResult):
        return {"type": "ProtocolResult",
                "protocol": result.protocol,
                "trace_name": result.trace_name,
                "block_bytes": result.block_bytes,
                "num_procs": result.num_procs,
                "breakdown": encode_result(result.breakdown),
                "counters": result.counters.as_dict(),
                "replacement_misses": result.replacement_misses}
    raise CheckpointError(
        f"cannot checkpoint result of type {type(result).__name__}")


def decode_result(blob: dict) -> Any:
    """Invert :func:`encode_result`."""
    kind = blob.get("type")
    fields = {k: v for k, v in blob.items() if k != "type"}
    try:
        if kind == "DuboisBreakdown":
            return DuboisBreakdown(**fields)
        if kind == "SimpleBreakdown":
            return SimpleBreakdown(**fields)
        if kind == "ClassificationComparison":
            return ClassificationComparison(
                trace_name=fields["trace_name"],
                block_bytes=fields["block_bytes"],
                ours=decode_result(fields["ours"]),
                eggers=decode_result(fields["eggers"]),
                torrellas=decode_result(fields["torrellas"]))
        if kind == "ProtocolResult":
            return ProtocolResult(
                protocol=fields["protocol"],
                trace_name=fields["trace_name"],
                block_bytes=fields["block_bytes"],
                num_procs=fields["num_procs"],
                breakdown=decode_result(fields["breakdown"]),
                counters=Counters(**fields["counters"]),
                replacement_misses=fields.get("replacement_misses", 0))
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed {kind} record: {exc}") from None
    raise CheckpointError(f"unknown checkpoint result type {kind!r}")


def _cell_key(cell) -> Tuple:
    """Normalize a cell for dictionary keying (JSON round-trips lists)."""
    return tuple(cell)


class CheckpointJournal:
    """Append-only JSONL journal of completed grid cells for one trace.

    Parameters
    ----------
    directory:
        Journal directory (created on first write).
    trace_key:
        The trace's identity; records with a different key are ignored on
        load, so a stale journal can never poison a new trace's sweep.
    kernel:
        The *effective* kernel mode whose results this journal holds
        (``"vectorized"`` or ``"interpreted"``; ``None`` resolves
        ``auto`` for this process).  Part of the header digest, so
        resuming under a different mode raises
        :class:`~repro.errors.StaleJournalError` instead of mixing
        execution paths.
    """

    def __init__(self, directory: Optional[str], trace_key: str,
                 kernel: Optional[str] = None):
        from ..kernels import effective_kernel_mode
        self.directory = directory or default_checkpoint_dir()
        self.trace_key = trace_key
        self.kernel = effective_kernel_mode(kernel or "auto")
        self.path = os.path.join(self.directory, f"{trace_key}.jsonl")
        self._fh = None
        #: Lines skipped or superseded during the last :meth:`load` — a
        #: nonzero value means :meth:`compact` would shrink the file.
        self.stale_lines = 0
        # Open-time hygiene: reap temp files leaked by killed writers
        # (compaction tmps here, manifest tmps when the telemetry dir is
        # colocated) and repair a torn tail before anything reads it.
        from .resources import gc_stale_tmp

        gc_stale_tmp(self.directory)
        self._recover_tail()

    # ------------------------------------------------------------------
    # torn-tail recovery & header
    # ------------------------------------------------------------------
    def _recover_tail(self) -> None:
        """Truncate a partial final line left by a mid-write kill.

        Each record is fsynced as one line, so the only possible damage
        from a crash is an unterminated tail.  Cutting the file back to
        its last newline restores the invariant that appends always start
        on a line boundary — without it, the first record of the *next*
        run would glue onto the torn fragment and corrupt both.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size == 0:
            return
        with open(self.path, "r+b") as fh:
            fh.seek(max(0, size - 1))
            if fh.read(1) == b"\n":
                return
            # Walk back in blocks to the last newline.
            keep = 0
            pos = size
            block = 4096
            while pos > 0:
                step = min(block, pos)
                fh.seek(pos - step)
                chunk = fh.read(step)
                nl = chunk.rfind(b"\n")
                if nl != -1:
                    keep = pos - step + nl + 1
                    break
                pos -= step
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
        get_recorder().event("checkpoint.recovered", level="warning",
                             key=self.trace_key,
                             dropped_bytes=size - keep)

    def _header_line(self) -> str:
        return json.dumps({"kind": _HEADER_KIND,
                           "journal_v": JOURNAL_VERSION,
                           "key": self.trace_key,
                           "kernel": self.kernel,
                           "digest": journal_digest(self.trace_key,
                                                    self.kernel),
                           "writer": _code_version()},
                          sort_keys=True)

    def _check_header(self, record: dict) -> None:
        """Reject a journal whose header digest no longer matches."""
        if record.get("digest") == journal_digest(self.trace_key,
                                                  self.kernel):
            return
        writer = record.get("writer", "unknown")
        theirs = record.get("kernel", "unknown")
        raise StaleJournalError(
            f"checkpoint journal {self.path} is stale: written by repro "
            f"{writer} (journal format v{record.get('journal_v')}, kernel "
            f"{theirs}), but this is repro {_code_version()} (format "
            f"v{JOURNAL_VERSION}, kernel {self.kernel}). Results computed "
            f"by different code or execution paths must not be mixed -- "
            f"delete the journal or run without --resume to recompute.")

    def _iter_records(self):
        """Yield raw record dicts, validating the header if present.

        Tracks ``self.stale_lines`` (skipped/garbage lines) so callers
        can decide whether compaction is worthwhile.
        """
        self.stale_lines = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            first = True
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.stale_lines += 1
                    continue  # torn write from a killed run
                if first:
                    first = False
                    if (isinstance(record, dict)
                            and record.get("kind") == _HEADER_KIND):
                        self._check_header(record)
                        continue
                    # Headerless journal from an older release: records
                    # are still versioned individually, so fall through.
                if (record.get("v") != _VERSION
                        or record.get("key") != self.trace_key):
                    self.stale_lines += 1
                    continue
                yield record

    # ------------------------------------------------------------------
    def load(self) -> Dict[Tuple, Any]:
        """Completed cells from a previous run: ``{cell: result}``.

        Unparseable lines and records from other trace keys or record
        versions are skipped, not fatal; a *stale header* (different
        code release) raises :class:`~repro.errors.StaleJournalError`.
        """
        completed: Dict[Tuple, Any] = {}
        for record in self._iter_records():
            try:
                cell = _cell_key(record["cell"])
                if cell in completed:
                    self.stale_lines += 1  # duplicate from a retried run
                completed[cell] = decode_result(record["result"])
            except (CheckpointError, KeyError, TypeError):
                self.stale_lines += 1
                continue  # one bad record invalidates only itself
        return completed

    #: Free-space preflight requirement before the journal is opened for
    #: appending: journals are small (one JSON line per cell), but
    #: fsyncing onto a full disk corrupts the very file that makes a
    #: killed sweep resumable, so require modest headroom up front.
    MIN_FREE_BYTES = 8 << 20

    def _open_for_append(self):
        from .resources import ensure_free_space

        os.makedirs(self.directory, exist_ok=True)
        ensure_free_space(self.directory, self.MIN_FREE_BYTES,
                          label="checkpoint journal")
        fresh = not os.path.exists(self.path) or \
            os.path.getsize(self.path) == 0
        if not fresh:
            # Appending to a journal we did not load(): still refuse to
            # mix records across code releases.
            with open(self.path, "r", encoding="utf-8") as fh:
                try:
                    first = json.loads(fh.readline().strip() or "null")
                except json.JSONDecodeError:
                    first = None
            if isinstance(first, dict) and first.get("kind") == _HEADER_KIND:
                self._check_header(first)
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._fh.write(self._header_line() + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def record(self, cell, result) -> None:
        """Durably append one completed cell (flush + fsync).

        The first append runs a disk free-space preflight and raises
        :class:`~repro.errors.ResourceExhaustedError` (``kind="disk"``)
        rather than writing a journal the next run could not trust; a
        fresh journal starts with the versioned header line.
        """
        if self._fh is None:
            self._open_for_append()
        with get_recorder().span("checkpoint.write", cell=list(cell),
                                 key=self.trace_key):
            line = json.dumps({"v": _VERSION, "key": self.trace_key,
                               "cell": list(cell),
                               "result": encode_result(result)},
                              sort_keys=True)
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the journal without redundant lines.

        Keeps the latest record per cell and drops (a) duplicate records
        from retried/resumed runs, (b) garbage or foreign-key lines, and
        (c) shard-partial records whose merged parent cell is already
        journaled — once ``("classify", 64, "dubois")`` is durable, its
        ``("classify-shard", 64, "dubois", <digest>, k)`` partials can
        never be read again.  Returns the number of lines dropped.
        Written via a temp sibling + ``os.replace`` so a kill mid-compact
        leaves the original journal intact.
        """
        if not os.path.exists(self.path):
            return 0
        if self._fh is not None:
            self.close()
        latest: Dict[Tuple, dict] = {}
        duplicates = 0
        for record in self._iter_records():
            try:
                cell = _cell_key(record["cell"])
            except (KeyError, TypeError):
                self.stale_lines += 1
                continue
            if cell in latest:
                duplicates += 1
            latest[cell] = record
        dropped = self.stale_lines + duplicates
        for cell in list(latest):
            kind = cell[0] if cell else ""
            if isinstance(kind, str) and kind.endswith("-shard"):
                parent = (kind[:-len("-shard")],) + tuple(cell[1:3])
                if parent in latest:
                    del latest[cell]
                    dropped += 1
        if dropped == 0:
            return 0
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self._header_line() + "\n")
            for record in latest.values():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        get_recorder().event("checkpoint.compacted", key=self.trace_key,
                             dropped_lines=dropped, kept=len(latest))
        self.stale_lines = 0
        return dropped

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
