"""Supervised fan-out of independent grid cells over pluggable transports.

``SweepEngine.run_grid`` used to hand the grid to a bare ``pool.map``: one
crashed worker, one hung cell or one raised exception aborted the whole
sweep and discarded every completed cell.  :class:`Supervisor` replaces it
with per-cell task tracking:

* each worker is a :class:`~repro.runtime.transport.WorkerEndpoint`
  provided by a transport — a dedicated ``fork`` process driven over its
  own duplex pipe (:class:`~repro.runtime.transport.LocalForkTransport`,
  the default), or a remote worker runner over framed TCP
  (:class:`~repro.runtime.transport.TcpTransport`) — so the supervisor
  always knows *which* cell a worker is running and since when;
* the event loop multiplexes reply channels **and** process sentinels via
  :func:`multiprocessing.connection.wait` — a dead worker or a reset
  connection is noticed immediately, not at ``join`` time;
* a per-cell stall timeout kills hung workers and reschedules their cell;
* failed/hung cells retry under a capped-exponential
  :class:`~repro.runtime.retry.RetryPolicy`; cells that keep failing in
  workers degrade to one serial in-process attempt (a fresh interpreter
  state is not required — cells are pure functions of the shared
  precompute);
* a lost *host* (connection reset, torn frame, heartbeat silence) is a
  ``host_lost`` failure: the cell is reassigned to surviving endpoints —
  safe because dispatch is idempotent and keyed by the same checkpoint
  keys ``--resume`` uses — while the transport's per-host ladder
  reconnects under capped backoff and eventually quarantines a flapping
  host.  When every transport is exhausted (all remote hosts dropped, no
  local workers), the remaining cells fall back to serial in-process
  execution instead of dying with the fleet;
* only when the serial fallback also fails does the supervisor raise
  :class:`~repro.errors.CellFailedError`, carrying the cell, its attempt
  history and the partial results of every completed cell.

The supervisor is also the enforcement point of the resource governor
(:mod:`repro.runtime.resources`): workers soft-cap their own address
space via ``RLIMIT_AS`` (``worker_rlimit_bytes``) so an over-budget cell
raises a clean ``MemoryError`` instead of being SIGKILLed mid-write, and
every failure is *classified* — a worker-reported ``MemoryError`` and a
SIGKILL/137 death are OOM-class, a nonzero exit or other signal is
crash-class, a timeout is hang-class, a dead connection is host-class.
With ``oom_action="raise"`` an OOM-class failure aborts immediately with
a structured :class:`~repro.errors.ResourceExhaustedError` (attempt
history plus all partial results) so the sweep engine's degradation
ladder can re-plan the run instead of blindly retrying the same
oversized configuration.

Local fork workers inherit their runner (and any fault plan) through
module globals at fork time, so nothing is pickled — the same zero-copy
trick the old pool used.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import CellFailedError, ResourceExhaustedError, SweepInterrupted
from ..obs import get_recorder
from . import signals
from .faults import FaultPlan
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .transport import (
    EndpointLostError,
    LocalForkTransport,
    Transport,
    WorkerConfig,
    WorkerEndpoint,
    _task_attr,
)

logger = logging.getLogger(__name__)


class _Attempt:
    """Mutable per-cell scheduling record."""

    __slots__ = ("idx", "task", "attempts", "not_before", "history")

    def __init__(self, idx: int, task):
        self.idx = idx
        self.task = task
        self.attempts = 0          # worker attempts consumed so far
        self.not_before = 0.0      # monotonic time gating the next attempt
        self.history: List[dict] = []


class Supervisor:
    """Run independent tasks with crash/hang/host-loss detection, retries
    and graceful degradation to serial execution.

    Parameters
    ----------
    runner:
        ``runner(task) -> result``.  Must be inheritable by fork (local
        workers receive it through a module global, never pickled).
    jobs:
        Local worker process count; ``1`` (or platforms without ``fork``)
        spawns no local workers — everything runs serially in-process
        unless remote transports provide endpoints.
    retry:
        The :class:`RetryPolicy` governing worker attempts and backoff.
    timeout:
        **Stall** seconds before a worker is presumed hung.  This is not
        a wall-clock cap on the cell: workers heartbeat their progress
        counter (ticked by the hot loops every
        :data:`~repro.runtime.signals.HEARTBEAT_CHUNK` events), and a
        worker is killed — and its task rescheduled — only when the
        counter stops advancing for ``timeout`` seconds.  A slow but
        alive paper-scale cell therefore never trips the watchdog, while
        a genuinely hung worker still dies within ``timeout`` of its
        last progress.  For remote endpoints the same watchdog doubles
        as the heartbeat-silence detector: a partitioned host stops
        beating and its cell is reassigned as ``host_lost``.  ``None``
        disables stall detection entirely.
    fault_plan:
        Optional deterministic :class:`FaultPlan` (tests only).
    worker_rlimit_bytes:
        Per-worker address-space *growth* cap in bytes (above the
        fork-inherited baseline), installed in each local worker via
        ``resource.setrlimit(RLIMIT_AS)``.  ``None`` leaves workers
        uncapped.
    oom_action:
        What an OOM-class failure (worker ``MemoryError`` reply, or a
        SIGKILL/137 death) does: ``"retry"`` (default) treats it like
        any other failure; ``"raise"`` aborts the pool immediately with
        :class:`~repro.errors.ResourceExhaustedError` carrying the task,
        attempt history and all partial results — the hook the sweep
        engine's degradation ladder hangs off.
    transports:
        Extra :class:`~repro.runtime.transport.Transport` instances
        (remote hosts) joining the local fork pool.  The local transport
        is constructed implicitly from ``jobs``.
    """

    #: Upper bound on one event-loop wait (keeps deadline checks timely,
    #: and bounds how stale the shutdown-flag poll can get).
    POLL_INTERVAL = 0.25
    #: After a shutdown request: how long to wait for in-flight cells to
    #: finish (and be journaled) before cancelling them.  Kept well under
    #: the "< 5 s to exit" budget.
    DRAIN_GRACE = 1.5

    def __init__(self, runner: Callable[[Any], Any], *, jobs: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 worker_rlimit_bytes: Optional[int] = None,
                 oom_action: str = "retry",
                 transports: Optional[Sequence[Transport]] = None):
        if oom_action not in ("retry", "raise"):
            raise ValueError(f"oom_action must be 'retry' or 'raise', "
                             f"got {oom_action!r}")
        self.runner = runner
        self.jobs = max(1, jobs)
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.worker_rlimit_bytes = worker_rlimit_bytes
        self.oom_action = oom_action
        self.transports = list(transports or ())
        #: Worker heartbeat period: at least 4 samples per stall window
        #: so one lost/late beat cannot look like a stall, capped at 1 s
        #: so heartbeats stay cheap on long windows.
        self.heartbeat_interval = (max(0.02, min(1.0, timeout / 4))
                                   if timeout is not None else 1.0)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Any], *,
            completed: Optional[Dict[Any, Any]] = None,
            on_result: Optional[Callable[[Any, Any], None]] = None) -> List:
        """Run every task, returning results in task order.

        ``completed`` maps already-finished tasks to their results (the
        checkpoint resume path); those tasks are not re-run and
        ``on_result`` is not re-fired for them.  ``on_result(task, result)``
        is invoked once per freshly computed task, in completion order —
        the journaling hook.
        """
        results: Dict[int, Any] = {}
        todo: List[_Attempt] = []
        for idx, task in enumerate(tasks):
            if completed is not None and task in completed:
                results[idx] = completed[task]
            else:
                todo.append(_Attempt(idx, task))
        if todo:
            has_remote = any(t.is_remote for t in self.transports)
            can_fork = "fork" in multiprocessing.get_all_start_methods()
            use_pool = (len(todo) > 1 and
                        (has_remote or (self.jobs > 1 and can_fork)))
            if use_pool:
                self._run_pool(todo, results, on_result, tasks)
            else:
                self._run_serial_only(todo, results, on_result)
        return [results[idx] for idx in range(len(tasks))]

    def _pool_transports(self) -> List[Transport]:
        """Transports joining this pool run: local fork first, then any
        remote transports, so local capacity soaks up cells before slower
        channels do."""
        trs: List[Transport] = []
        if (self.jobs > 1
                and "fork" in multiprocessing.get_all_start_methods()):
            trs.append(LocalForkTransport(self.jobs))
        trs.extend(self.transports)
        return trs

    # ------------------------------------------------------------------
    # serial execution (jobs=1 / no fork) with retries
    # ------------------------------------------------------------------
    def _run_serial_only(self, todo, results, on_result) -> None:
        for att in todo:
            signals.check_interrupt()
            try:
                results[att.idx] = self._attempt_serial(att)
            except CellFailedError:
                raise self._failure(att, results, todo) from None
            if on_result is not None:
                on_result(att.task, results[att.idx])

    def _attempt_serial(self, att: _Attempt):
        """One in-process attempt cycle honouring the retry policy."""
        rec = get_recorder()
        while att.attempts < self.retry.max_attempts:
            att.attempts += 1
            rec.event("task.assigned", cell=_task_attr(att.task),
                      attempt=att.attempts, where="serial")
            try:
                if self.fault_plan is not None:
                    self.fault_plan.apply_serial(att.task, att.attempts,
                                                 att.idx)
                result = self.runner(att.task)
            except Exception as exc:
                att.history.append({"attempt": att.attempts,
                                    "where": "serial",
                                    "error": traceback.format_exc(limit=20),
                                    "kind": ("oom" if isinstance(exc,
                                             MemoryError) else "error")})
                retrying = att.attempts < self.retry.max_attempts
                self._note_failure(att, action="retry" if retrying
                                   else "abort")
                if retrying:
                    self.retry.sleep(att.attempts)
                continue
            rec.event("task.done", cell=_task_attr(att.task),
                      attempt=att.attempts)
            return result
        raise CellFailedError("retries exhausted", cell=att.task,
                              attempts=att.history)

    def _note_failure(self, att: _Attempt, *, action: str) -> None:
        """Surface one failed attempt the moment it happens.

        Emits the ``task.failed`` telemetry event and a warning-level log
        record carrying the failure class and what happens next — silent
        retries were how degraded runs used to hide from operators.
        """
        entry = att.history[-1] if att.history else {}
        detail_lines = (entry.get("error") or "").strip().splitlines()
        detail = detail_lines[-1] if detail_lines else "unknown failure"
        next_step = {"retry": "retrying after backoff",
                     "fallback": "queued for serial fallback",
                     "degrade": "handing off to the degradation ladder",
                     "abort": "aborting the run"}[action]
        log = logger.error if action == "abort" else logger.warning
        log("task %r attempt %d failed in %s (%s): %s; %s",
            att.task, att.attempts, entry.get("where", "worker"),
            entry.get("kind", "error"), detail, next_step)
        get_recorder().event(
            "task.failed",
            level="error" if action == "abort" else "warning",
            cell=_task_attr(att.task), attempt=att.attempts,
            fail_kind=entry.get("kind", "error"), action=action)

    # ------------------------------------------------------------------
    # supervised pool execution
    # ------------------------------------------------------------------
    def _run_pool(self, todo, results, on_result, tasks) -> None:
        config = WorkerConfig(self.runner, fault_plan=self.fault_plan,
                              rlimit_bytes=self.worker_rlimit_bytes,
                              heartbeat_interval=self.heartbeat_interval)
        transports = self._pool_transports()
        endpoints: List[WorkerEndpoint] = []
        pending = deque(todo)
        #: cells that exhausted worker attempts (or outlived every
        #: transport), awaiting the serial fallback (run after the pool
        #: drains so one bad cell cannot stall healthy workers).
        fallback: List[_Attempt] = []
        outstanding = len(todo)
        try:
            for tr in transports:
                tr.open(config)
                endpoints.extend(tr.start(len(todo)))
            while outstanding > len(fallback):
                coord = signals.get_shutdown()
                if coord is not None and coord.requested:
                    self._drain_interrupted(endpoints, results, todo,
                                            on_result)
                now = time.monotonic()
                for tr in transports:
                    endpoints.extend(tr.revive(now))
                if pending and not endpoints:
                    if all(tr.exhausted for tr in transports):
                        self._fall_back_local(pending, fallback)
                        continue
                    # Every channel is down but a transport is still
                    # reconnecting: wait for its next attempt window.
                    time.sleep(self.POLL_INTERVAL)
                    continue
                self._assign_ready(endpoints, pending, now)
                wait_for, busy = [], []
                for ep in endpoints:
                    if ep.current is not None:
                        wait_for.extend(ep.wait_handles())
                        busy.append(ep)
                if not busy:
                    # Nothing in flight: only backoff-delayed cells remain.
                    delay = min(a.not_before for a in pending) - now
                    if delay > 0:
                        time.sleep(min(delay, self.POLL_INTERVAL))
                    continue
                ready = multiprocessing.connection.wait(
                    wait_for, timeout=self._wait_timeout(busy, pending, now))
                ready_set = set(ready)
                for ep in list(busy):
                    finished = self._service_endpoint(
                        ep, ready_set, endpoints, pending, fallback,
                        results, on_result, todo)
                    outstanding -= finished
                self._reap_timeouts(endpoints, pending, fallback)
        finally:
            for ep in endpoints:
                ep.stop(kill=True)
            for tr in transports:
                tr.close()
        # Degraded path: cells that repeatedly failed in workers get one
        # last serial in-process attempt each.
        rec = get_recorder()
        for att in fallback:
            signals.check_interrupt()
            att.history.append({"attempt": att.attempts + 1,
                                "where": "serial-fallback", "error": None})
            rec.event("task.assigned", cell=_task_attr(att.task),
                      attempt=att.attempts + 1, where="serial-fallback")
            try:
                if self.fault_plan is not None:
                    self.fault_plan.apply_serial(att.task, att.attempts + 1,
                                                 att.idx)
                results[att.idx] = self.runner(att.task)
            except Exception as exc:
                att.history[-1]["error"] = traceback.format_exc(limit=20)
                att.history[-1]["kind"] = ("oom" if isinstance(exc,
                                           MemoryError) else "error")
                att.attempts += 1
                self._note_failure(att, action="abort")
                raise self._failure(att, results, todo) from None
            rec.event("task.done", cell=_task_attr(att.task),
                      attempt=att.attempts + 1)
            if on_result is not None:
                on_result(att.task, results[att.idx])

    # -- pool helpers --------------------------------------------------
    def _fall_back_local(self, pending, fallback) -> None:
        """Every transport is permanently out of endpoints (all remote
        hosts dropped, no local workers): move the remaining cells to the
        serial in-process fallback instead of dying with the fleet."""
        get_recorder().event("transport.fallback", level="warning",
                             cells=len(pending))
        logger.warning(
            "no worker endpoints survive (all transports exhausted); "
            "running %d remaining cell(s) serially in-process",
            len(pending))
        while pending:
            fallback.append(pending.popleft())

    def _assign_ready(self, endpoints, pending, now) -> None:
        for ep in list(endpoints):
            if ep.current is not None or not pending:
                continue
            for _ in range(len(pending)):
                att = pending.popleft()
                if att.not_before <= now:
                    try:
                        ep.assign(att, self.timeout)
                    except EndpointLostError as exc:
                        # The channel died between replies: the attempt
                        # never started, so un-count it and retire the
                        # endpoint.
                        att.attempts -= 1
                        ep.current = None
                        pending.appendleft(att)
                        self._retire(ep, endpoints, pending, lost=exc,
                                     stalled=False)
                        break
                    attrs = {"worker_pid": ep.pid}
                    if ep.host is not None:
                        attrs["host"] = ep.host
                    get_recorder().event(
                        "task.assigned", cell=_task_attr(att.task),
                        attempt=att.attempts, **attrs)
                    break
                pending.append(att)
            else:
                break  # every pending cell is backoff-delayed

    def _wait_timeout(self, busy, pending, now) -> float:
        timeout = self.POLL_INTERVAL
        for ep in busy:
            if ep.deadline is not None:
                timeout = min(timeout, max(0.0, ep.deadline - now))
        for att in pending:
            timeout = min(timeout, max(0.0, att.not_before - now))
        return timeout

    def _retire(self, ep, endpoints, pending, *, lost, stalled) -> None:
        """Stop a dead/stalled endpoint and ask its transport for
        replacements."""
        if ep.host is not None and (lost is not None or stalled):
            detail = (str(lost) if lost is not None
                      else "heartbeat silence (stalled)")
            get_recorder().event("host.lost", level="warning",
                                 host=ep.host, detail=detail)
        ep.stop(kill=True)
        if ep in endpoints:
            endpoints.remove(ep)
        endpoints.extend(ep.transport.replace(ep, pending=len(pending),
                                              stalled=stalled))

    def _service_endpoint(self, ep, ready_set, endpoints, pending, fallback,
                          results, on_result, todo) -> int:
        """Handle one endpoint's reply or death; returns cells finished."""
        lost: Optional[EndpointLostError] = None
        if ep.readable(ready_set):
            try:
                msg = ep.recv()
            except EndpointLostError as exc:
                lost = exc
                msg = None
            if msg is not None and msg[0] == "hb":
                self._note_heartbeat(ep, msg)
                return 0
            if msg is not None:
                idx, ok, payload, records = msg
                if records:
                    # Merge the worker's buffered telemetry into the
                    # parent stream before the task outcome is recorded,
                    # so the cell's spans precede its task.done event.
                    if ep.host is not None:
                        records = [dict(r, attrs=dict(r.get("attrs") or {},
                                                      host=ep.host))
                                   if isinstance(r, dict) else r
                                   for r in records]
                    get_recorder().ingest(records)
                att, ep.current, ep.deadline = ep.current, None, None
                if ok:
                    results[att.idx] = payload
                    done_attrs = {"cell": _task_attr(att.task),
                                  "attempt": att.attempts}
                    if ep.host is not None:
                        done_attrs["host"] = ep.host
                    get_recorder().event("task.done", **done_attrs)
                    if on_result is not None:
                        on_result(att.task, payload)
                    return 1
                if not isinstance(payload, dict):  # legacy string reply
                    payload = {"error": str(payload), "kind": "error"}
                att.history.append({"attempt": att.attempts,
                                    "where": ep.where,
                                    "error": payload["error"],
                                    "kind": payload.get("kind", "error")})
                self._maybe_raise_oom(att, results, todo)
                return self._reschedule(att, pending, fallback)
        # Death handling.  A remote endpoint is dead the moment its
        # channel fails; a local fork worker whose pipe merely hit EOF
        # defers to the process sentinel (the pre-transport behavior) —
        # unless the channel is *garbled*, in which case the pipe can
        # never deliver another frame and the worker must be killed even
        # though its process may still be alive.
        force_dead = lost is not None and (ep.host is not None
                                           or lost.garbled)
        if force_dead or ep.dead(ready_set):
            if not force_dead and not ep.confirm_dead():
                return 0  # pragma: no cover - sentinel race
            att, ep.current = ep.current, None
            kind, description = ep.death(lost)
            if att is not None:
                att.history.append({
                    "attempt": att.attempts, "where": ep.where,
                    "error": description, "kind": kind})
                self._maybe_raise_oom(att, results, todo)
                # Reschedule *before* retiring: the transport's replace()
                # decision sees the cell back in the pending queue, so the
                # last worker's death with the last cell in hand still
                # spawns a successor.
                self._reschedule(att, pending, fallback)
            self._retire(ep, endpoints, pending, lost=lost, stalled=False)
        return 0

    def _maybe_raise_oom(self, att, results, todo) -> None:
        """Abort the pool on an OOM-class failure when so configured.

        Raising here (instead of rescheduling) is what prevents the
        crash-loop: re-running the same oversized task can only summon
        the OOM killer again; the caller must re-plan (fewer workers,
        more shards, or serial) and gets the partial results to resume
        from.
        """
        if self.oom_action != "raise" or att.history[-1].get("kind") != "oom":
            return
        self._note_failure(att, action="degrade")
        partial = {a.task: results[a.idx] for a in todo if a.idx in results}
        detail = ((att.history[-1]["error"] or "").strip().splitlines()
                  or ["out of memory"])[-1]
        raise ResourceExhaustedError(
            f"task {att.task!r} exhausted memory on attempt "
            f"{att.attempts} ({detail})",
            kind="memory", cell=att.task, attempts=att.history,
            partial=partial)

    def _note_heartbeat(self, ep, msg) -> None:
        """Fold one ``("hb", idx, progress, cell)`` liveness report.

        The stall deadline is pushed out only when the progress counter
        *advanced* since the previous sample — a heartbeat thread keeps
        beating inside a worker stuck in ``time.sleep`` or a foreign
        C call, so mere liveness must not count as progress.  The first
        sample after an assignment only establishes the baseline (the
        assignment itself already armed the deadline).
        """
        _, idx, progress, cellattr = msg
        att = ep.current
        if att is None or att.idx != idx:
            return  # stale beat from a task that already replied
        advanced = (ep.last_progress is not None
                    and progress > ep.last_progress)
        ep.last_progress = progress
        if advanced and self.timeout is not None:
            ep.deadline = time.monotonic() + self.timeout
        attrs = {"worker_pid": ep.pid}
        if ep.host is not None:
            attrs["host"] = ep.host
        get_recorder().metric("worker.heartbeat", progress, unit="events",
                              cell=cellattr, **attrs)

    def _reap_timeouts(self, endpoints, pending, fallback) -> None:
        """Kill endpoints whose progress counter stalled for ``timeout``.

        ``deadline`` is armed at assignment and re-armed by every
        heartbeat that shows progress, so only a genuinely frozen worker
        ever reaches it (see :meth:`_note_heartbeat`).  For a remote
        endpoint heartbeat silence means the *host* is unreachable
        (partitioned, frozen, or dead), so the failure is classified
        ``host_lost`` rather than ``hang``.
        """
        if self.timeout is None:
            return
        now = time.monotonic()
        for ep in list(endpoints):
            if ep.current is None or ep.deadline is None or now < ep.deadline:
                continue
            att, ep.current = ep.current, None
            att.history.append({"attempt": att.attempts, "where": ep.where,
                                "error": f"no progress for {self.timeout}s "
                                         "(stalled)",
                                "kind": ep.stall_kind})
            self._retire(ep, endpoints, pending, lost=None, stalled=True)
            self._reschedule(att, pending, fallback)

    def _drain_interrupted(self, endpoints, results, todo, on_result) -> None:
        """Graceful-shutdown endgame for the pool (first SIGINT/SIGTERM).

        Stops dispatching, gives in-flight cells :data:`DRAIN_GRACE`
        seconds to finish (journaling each result via ``on_result``),
        then abandons whatever is still running and raises
        :class:`~repro.errors.SweepInterrupted`.  The caller's
        ``finally`` kills the workers; abandoned cells simply stay out
        of the journal, so ``--resume`` re-runs exactly those.  Remote
        in-flight cells drain through the same window: their reply
        channels sit in the same ``wait`` set as local pipes.
        """
        rec = get_recorder()
        busy = [ep for ep in endpoints if ep.current is not None]
        rec.event("shutdown.requested", level="warning", where="pool",
                  in_flight=len(busy))
        logger.warning("shutdown requested: draining %d in-flight cell(s), "
                       "%.1fs grace", len(busy), self.DRAIN_GRACE)
        deadline = time.monotonic() + self.DRAIN_GRACE
        while busy:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            by_handle = {ep.drain_handle(): ep for ep in busy}
            ready = multiprocessing.connection.wait(
                list(by_handle), timeout=remaining)
            for handle in ready:
                ep = by_handle[handle]
                try:
                    msg = ep.recv()
                except EndpointLostError:
                    ep.current = None  # died mid-drain: leave unjournaled
                    continue
                if msg and msg[0] == "hb":
                    continue
                idx, ok, payload, records = msg
                if records:
                    # Same host stamping the live drain applies, so
                    # per-host accounting stays consistent across a
                    # graceful shutdown.
                    if ep.host is not None:
                        records = [dict(r, attrs=dict(r.get("attrs") or {},
                                                      host=ep.host))
                                   if isinstance(r, dict) else r
                                   for r in records]
                    rec.ingest(records)
                att, ep.current = ep.current, None
                if ok and att is not None and att.idx == idx:
                    results[att.idx] = payload
                    done_attrs = {"cell": _task_attr(att.task),
                                  "attempt": att.attempts}
                    if ep.host is not None:
                        done_attrs["host"] = ep.host
                    rec.event("task.done", **done_attrs)
                    if on_result is not None:
                        on_result(att.task, payload)
            busy = [ep for ep in endpoints if ep.current is not None]
        cancelled = [ep.current.task for ep in endpoints
                     if ep.current is not None]
        for task in cancelled:
            rec.event("task.failed", level="warning",
                      cell=_task_attr(task), fail_kind="interrupted",
                      action="abandon")
        partial = {a.task: results[a.idx] for a in todo if a.idx in results}
        raise SweepInterrupted(
            f"sweep interrupted: {len(partial)} cell(s) journaled, "
            f"{len(cancelled)} in-flight cell(s) cancelled",
            completed_cells=len(partial), partial=partial)

    def _reschedule(self, att, pending, fallback) -> int:
        """Queue a failed attempt for retry or the serial fallback."""
        if att.attempts >= self.retry.max_attempts:
            self._note_failure(att, action="fallback")
            fallback.append(att)
        else:
            self._note_failure(att, action="retry")
            att.not_before = (time.monotonic()
                              + self.retry.delay(att.attempts))
            pending.append(att)
        return 0

    # ------------------------------------------------------------------
    def _failure(self, att, results, todo) -> CellFailedError:
        partial = {a.task: results[a.idx] for a in todo
                   if a.idx in results}
        return CellFailedError(
            f"cell {att.task!r} failed after {len(att.history)} attempt(s)",
            cell=att.task, attempts=att.history, partial=partial)
