"""Supervised fan-out of independent grid cells over fork workers.

``SweepEngine.run_grid`` used to hand the grid to a bare ``pool.map``: one
crashed worker, one hung cell or one raised exception aborted the whole
sweep and discarded every completed cell.  :class:`Supervisor` replaces it
with per-cell task tracking:

* each worker is a dedicated ``fork`` process driven over its own duplex
  pipe, so the supervisor always knows *which* cell a worker is running
  and since when;
* the event loop multiplexes result pipes **and** process sentinels via
  :func:`multiprocessing.connection.wait` — a dead worker is noticed
  immediately, not at ``join`` time;
* a per-cell wall-clock timeout kills hung workers and reschedules their
  cell;
* failed/hung cells retry under a capped-exponential
  :class:`~repro.runtime.retry.RetryPolicy`; cells that keep failing in
  workers degrade to one serial in-process attempt (a fresh interpreter
  state is not required — cells are pure functions of the shared
  precompute);
* only when the serial fallback also fails does the supervisor raise
  :class:`~repro.errors.CellFailedError`, carrying the cell, its attempt
  history and the partial results of every completed cell.

The supervisor is also the enforcement point of the resource governor
(:mod:`repro.runtime.resources`): workers soft-cap their own address
space via ``RLIMIT_AS`` (``worker_rlimit_bytes``) so an over-budget cell
raises a clean ``MemoryError`` instead of being SIGKILLed mid-write, and
every failure is *classified* — a worker-reported ``MemoryError`` and a
SIGKILL/137 death are OOM-class, a nonzero exit or other signal is
crash-class, a timeout is hang-class.  With ``oom_action="raise"`` an
OOM-class failure aborts immediately with a structured
:class:`~repro.errors.ResourceExhaustedError` (attempt history plus all
partial results) so the sweep engine's degradation ladder can re-plan the
run instead of blindly retrying the same oversized configuration.

Workers inherit their runner (and any fault plan) through module globals
at fork time, so nothing is pickled — the same zero-copy trick the old
pool used.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import multiprocessing.connection
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import CellFailedError, ResourceExhaustedError, SweepInterrupted
from ..obs import get_recorder, worker_begin
from . import signals
from .faults import FaultPlan
from .resources import apply_worker_rlimit, classify_exitcode, peak_rss_bytes
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

logger = logging.getLogger(__name__)

# Fork-inherited worker state (set in the parent just before spawning).
_WORKER_RUNNER: Optional[Callable[[Any], Any]] = None
_WORKER_FAULTS: Optional[FaultPlan] = None
_WORKER_RLIMIT: Optional[int] = None
_WORKER_HEARTBEAT: Optional[float] = None


def _task_attr(task):
    """A task rendered for telemetry ``attrs`` (grid cells are tuples)."""
    if isinstance(task, (tuple, list)):
        return list(task)
    return task


def _failure_payload(exc: BaseException) -> dict:
    """Structured failure reply: traceback text plus a failure class."""
    kind = "error"
    if isinstance(exc, MemoryError):
        kind = "oom"
    elif isinstance(exc, ResourceExhaustedError):
        kind = "oom" if exc.kind == "memory" else "error"
    return {"error": traceback.format_exc(limit=20), "kind": kind}


def _heartbeat_loop(conn, send_lock, current, interval) -> None:
    """Daemon thread: periodically report the worker's progress counter.

    Sends ``("hb", idx, progress, cell)`` for the task in flight.  The
    supervisor compares successive ``progress`` samples: a *slow* cell
    keeps advancing the counter (the hot loops tick it every
    :data:`~repro.runtime.signals.HEARTBEAT_CHUNK` events) while a *hung*
    one freezes it — which is exactly the distinction the stall watchdog
    needs.  Sends share ``send_lock`` with result replies so the two
    never interleave on the pipe.
    """
    while True:
        time.sleep(interval)
        cur = current[0]
        if cur is None:
            continue
        idx, task = cur
        try:
            with send_lock:
                conn.send(("hb", idx, signals.progress_count(),
                           _task_attr(task)))
        except Exception:
            return  # pipe gone: the worker is exiting


def _worker_main(conn) -> None:
    """Worker loop: receive ``("run", idx, task, attempt)``, send results.

    Replies ``(idx, ok, payload, records)`` where ``records`` is the
    worker's buffered telemetry (``None`` when telemetry is off) — the
    child recorder installed by :func:`repro.obs.worker_begin` is drained
    after every task so spans and metrics ride the existing reply pipe
    back into the parent stream.  A ``("stop",)`` message (or a closed
    pipe) ends the loop.  When the parent configured
    ``worker_rlimit_bytes``, the worker soft-caps its address space
    *relative to what fork inherited* before serving tasks, so an
    over-budget cell dies as a classified ``MemoryError`` reply, never as
    a kernel SIGKILL.

    Workers drop the parent's inherited shutdown flag and ignore SIGINT
    (:func:`repro.runtime.signals.reset_in_child`): on Ctrl-C the parent
    alone coordinates the wind-down over the pipes.  When the parent
    configured a heartbeat interval, a daemon thread reports liveness
    between replies (see :func:`_heartbeat_loop`).
    """
    runner = _WORKER_RUNNER
    faults = _WORKER_FAULTS
    signals.reset_in_child()
    recorder = worker_begin()
    if _WORKER_RLIMIT is not None:
        apply_worker_rlimit(_WORKER_RLIMIT)
    send_lock = threading.Lock()
    current: List = [None]  # [(idx, task)] while a task is in flight
    if _WORKER_HEARTBEAT is not None:
        threading.Thread(target=_heartbeat_loop,
                         args=(conn, send_lock, current, _WORKER_HEARTBEAT),
                         name="repro-heartbeat", daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        _, idx, task, attempt = msg
        current[0] = (idx, task)
        try:
            if faults is not None:
                faults.apply_worker(task, attempt, idx)
            result = runner(task)
            ok, payload = True, result
        except BaseException as exc:
            ok, payload = False, _failure_payload(exc)
        current[0] = None
        records = None
        if recorder is not None:
            recorder.metric("worker.ru_maxrss_kb",
                            peak_rss_bytes() // 1024, unit="kb",
                            cell=_task_attr(task))
            records = recorder.drain()
        try:
            with send_lock:
                conn.send((idx, ok, payload, records))
        except Exception:
            # The result (or error) could not cross the pipe; report a
            # sendable failure so the supervisor can retry the cell.
            try:
                with send_lock:
                    conn.send((idx, False,
                               {"error": "worker could not send result for "
                                         f"task {idx}", "kind": "error"},
                               None))
            except Exception:
                return


class _Attempt:
    """Mutable per-cell scheduling record."""

    __slots__ = ("idx", "task", "attempts", "not_before", "history")

    def __init__(self, idx: int, task):
        self.idx = idx
        self.task = task
        self.attempts = 0          # worker attempts consumed so far
        self.not_before = 0.0      # monotonic time gating the next attempt
        self.history: List[dict] = []


class _Worker:
    """One supervised fork worker and its pipe."""

    __slots__ = ("process", "conn", "current", "deadline", "last_progress",
                 "_shutdown_token")

    def __init__(self, ctx, wid: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   name=f"repro-supervised-{wid}", daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.current: Optional[_Attempt] = None
        self.deadline: Optional[float] = None
        #: Last heartbeat progress sample for the task in flight (None
        #: until the first heartbeat after an assignment).
        self.last_progress: Optional[int] = None
        # Forced teardown (second Ctrl-C) runs os._exit, which skips the
        # multiprocessing atexit reaping of daemon children — register so
        # the coordinator can kill this worker directly.
        coord = signals.get_shutdown()
        self._shutdown_token = (coord.register_process(self.process)
                                if coord is not None else None)

    def assign(self, att: _Attempt, timeout: Optional[float]) -> None:
        att.attempts += 1
        self.current = att
        self.last_progress = None
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        self.conn.send(("run", att.idx, att.task, att.attempts))

    def stop(self, *, kill: bool = False) -> None:
        if kill and self.process.is_alive():
            self.process.terminate()
        else:
            try:
                self.conn.send(("stop",))
            except Exception:
                pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)
        self.conn.close()
        if self._shutdown_token is not None:
            coord = signals.get_shutdown()
            if coord is not None:
                coord.unregister_process(self._shutdown_token)


class Supervisor:
    """Run independent tasks with crash/hang detection, retries and
    graceful degradation to serial execution.

    Parameters
    ----------
    runner:
        ``runner(task) -> result``.  Must be inheritable by fork (workers
        receive it through a module global, never pickled).
    jobs:
        Worker process count; ``1`` (or platforms without ``fork``) runs
        everything serially in-process.
    retry:
        The :class:`RetryPolicy` governing worker attempts and backoff.
    timeout:
        **Stall** seconds before a worker is presumed hung.  This is not
        a wall-clock cap on the cell: workers heartbeat their progress
        counter (ticked by the hot loops every
        :data:`~repro.runtime.signals.HEARTBEAT_CHUNK` events), and a
        worker is killed — and its task rescheduled — only when the
        counter stops advancing for ``timeout`` seconds.  A slow but
        alive paper-scale cell therefore never trips the watchdog, while
        a genuinely hung worker still dies within ``timeout`` of its
        last progress.  ``None`` disables stall detection entirely.
    fault_plan:
        Optional deterministic :class:`FaultPlan` (tests only).
    worker_rlimit_bytes:
        Per-worker address-space *growth* cap in bytes (above the
        fork-inherited baseline), installed in each worker via
        ``resource.setrlimit(RLIMIT_AS)``.  ``None`` leaves workers
        uncapped.
    oom_action:
        What an OOM-class failure (worker ``MemoryError`` reply, or a
        SIGKILL/137 death) does: ``"retry"`` (default) treats it like
        any other failure; ``"raise"`` aborts the pool immediately with
        :class:`~repro.errors.ResourceExhaustedError` carrying the task,
        attempt history and all partial results — the hook the sweep
        engine's degradation ladder hangs off.
    """

    #: Upper bound on one event-loop wait (keeps deadline checks timely,
    #: and bounds how stale the shutdown-flag poll can get).
    POLL_INTERVAL = 0.25
    #: After a shutdown request: how long to wait for in-flight cells to
    #: finish (and be journaled) before cancelling them.  Kept well under
    #: the "< 5 s to exit" budget.
    DRAIN_GRACE = 1.5

    def __init__(self, runner: Callable[[Any], Any], *, jobs: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 worker_rlimit_bytes: Optional[int] = None,
                 oom_action: str = "retry"):
        if oom_action not in ("retry", "raise"):
            raise ValueError(f"oom_action must be 'retry' or 'raise', "
                             f"got {oom_action!r}")
        self.runner = runner
        self.jobs = max(1, jobs)
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.worker_rlimit_bytes = worker_rlimit_bytes
        self.oom_action = oom_action
        #: Worker heartbeat period: at least 4 samples per stall window
        #: so one lost/late beat cannot look like a stall, capped at 1 s
        #: so heartbeats stay cheap on long windows.
        self.heartbeat_interval = (max(0.02, min(1.0, timeout / 4))
                                   if timeout is not None else 1.0)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Any], *,
            completed: Optional[Dict[Any, Any]] = None,
            on_result: Optional[Callable[[Any, Any], None]] = None) -> List:
        """Run every task, returning results in task order.

        ``completed`` maps already-finished tasks to their results (the
        checkpoint resume path); those tasks are not re-run and
        ``on_result`` is not re-fired for them.  ``on_result(task, result)``
        is invoked once per freshly computed task, in completion order —
        the journaling hook.
        """
        results: Dict[int, Any] = {}
        todo: List[_Attempt] = []
        for idx, task in enumerate(tasks):
            if completed is not None and task in completed:
                results[idx] = completed[task]
            else:
                todo.append(_Attempt(idx, task))
        if todo:
            use_pool = (self.jobs > 1 and len(todo) > 1 and
                        "fork" in multiprocessing.get_all_start_methods())
            if use_pool:
                self._run_pool(todo, results, on_result, tasks)
            else:
                self._run_serial_only(todo, results, on_result)
        return [results[idx] for idx in range(len(tasks))]

    # ------------------------------------------------------------------
    # serial execution (jobs=1 / no fork) with retries
    # ------------------------------------------------------------------
    def _run_serial_only(self, todo, results, on_result) -> None:
        for att in todo:
            signals.check_interrupt()
            try:
                results[att.idx] = self._attempt_serial(att)
            except CellFailedError:
                raise self._failure(att, results, todo) from None
            if on_result is not None:
                on_result(att.task, results[att.idx])

    def _attempt_serial(self, att: _Attempt):
        """One in-process attempt cycle honouring the retry policy."""
        rec = get_recorder()
        while att.attempts < self.retry.max_attempts:
            att.attempts += 1
            rec.event("task.assigned", cell=_task_attr(att.task),
                      attempt=att.attempts, where="serial")
            try:
                if self.fault_plan is not None:
                    self.fault_plan.apply_serial(att.task, att.attempts,
                                                 att.idx)
                result = self.runner(att.task)
            except Exception as exc:
                att.history.append({"attempt": att.attempts,
                                    "where": "serial",
                                    "error": traceback.format_exc(limit=20),
                                    "kind": ("oom" if isinstance(exc,
                                             MemoryError) else "error")})
                retrying = att.attempts < self.retry.max_attempts
                self._note_failure(att, action="retry" if retrying
                                   else "abort")
                if retrying:
                    self.retry.sleep(att.attempts)
                continue
            rec.event("task.done", cell=_task_attr(att.task),
                      attempt=att.attempts)
            return result
        raise CellFailedError("retries exhausted", cell=att.task,
                              attempts=att.history)

    def _note_failure(self, att: _Attempt, *, action: str) -> None:
        """Surface one failed attempt the moment it happens.

        Emits the ``task.failed`` telemetry event and a warning-level log
        record carrying the failure class and what happens next — silent
        retries were how degraded runs used to hide from operators.
        """
        entry = att.history[-1] if att.history else {}
        detail_lines = (entry.get("error") or "").strip().splitlines()
        detail = detail_lines[-1] if detail_lines else "unknown failure"
        next_step = {"retry": "retrying after backoff",
                     "fallback": "queued for serial fallback",
                     "degrade": "handing off to the degradation ladder",
                     "abort": "aborting the run"}[action]
        log = logger.error if action == "abort" else logger.warning
        log("task %r attempt %d failed in %s (%s): %s; %s",
            att.task, att.attempts, entry.get("where", "worker"),
            entry.get("kind", "error"), detail, next_step)
        get_recorder().event(
            "task.failed",
            level="error" if action == "abort" else "warning",
            cell=_task_attr(att.task), attempt=att.attempts,
            fail_kind=entry.get("kind", "error"), action=action)

    # ------------------------------------------------------------------
    # supervised pool execution
    # ------------------------------------------------------------------
    def _run_pool(self, todo, results, on_result, tasks) -> None:
        global _WORKER_RUNNER, _WORKER_FAULTS, _WORKER_RLIMIT, \
            _WORKER_HEARTBEAT
        ctx = multiprocessing.get_context("fork")
        _WORKER_RUNNER = self.runner
        _WORKER_FAULTS = self.fault_plan
        _WORKER_RLIMIT = self.worker_rlimit_bytes
        _WORKER_HEARTBEAT = self.heartbeat_interval
        workers: List[_Worker] = []
        wid = itertools.count()
        pending = deque(todo)
        #: cells that exhausted worker attempts, awaiting the serial
        #: fallback (run after the pool drains so one bad cell cannot
        #: stall healthy workers).
        fallback: List[_Attempt] = []
        outstanding = len(todo)
        try:
            for _ in range(min(self.jobs, len(todo))):
                workers.append(_Worker(ctx, next(wid)))
            while outstanding > len(fallback):
                coord = signals.get_shutdown()
                if coord is not None and coord.requested:
                    self._drain_interrupted(workers, results, todo,
                                            on_result)
                now = time.monotonic()
                self._assign_ready(workers, pending, now)
                wait_for, busy = [], []
                for w in workers:
                    if w.current is not None:
                        wait_for.append(w.conn)
                        wait_for.append(w.process.sentinel)
                        busy.append(w)
                if not busy:
                    # Nothing in flight: only backoff-delayed cells remain.
                    delay = min(a.not_before for a in pending) - now
                    if delay > 0:
                        time.sleep(min(delay, self.POLL_INTERVAL))
                    continue
                ready = multiprocessing.connection.wait(
                    wait_for, timeout=self._wait_timeout(busy, pending, now))
                ready_set = set(ready)
                for w in list(busy):
                    finished = self._service_worker(
                        w, ready_set, workers, pending, fallback,
                        results, on_result, ctx, wid, todo)
                    outstanding -= finished
                self._reap_timeouts(workers, pending, fallback, ctx, wid)
        finally:
            for w in workers:
                w.stop(kill=True)
            _WORKER_RUNNER = None
            _WORKER_FAULTS = None
            _WORKER_RLIMIT = None
            _WORKER_HEARTBEAT = None
        # Degraded path: cells that repeatedly failed in workers get one
        # last serial in-process attempt each.
        rec = get_recorder()
        for att in fallback:
            signals.check_interrupt()
            att.history.append({"attempt": att.attempts + 1,
                                "where": "serial-fallback", "error": None})
            rec.event("task.assigned", cell=_task_attr(att.task),
                      attempt=att.attempts + 1, where="serial-fallback")
            try:
                if self.fault_plan is not None:
                    self.fault_plan.apply_serial(att.task, att.attempts + 1,
                                                 att.idx)
                results[att.idx] = self.runner(att.task)
            except Exception as exc:
                att.history[-1]["error"] = traceback.format_exc(limit=20)
                att.history[-1]["kind"] = ("oom" if isinstance(exc,
                                           MemoryError) else "error")
                att.attempts += 1
                self._note_failure(att, action="abort")
                raise self._failure(att, results, todo) from None
            rec.event("task.done", cell=_task_attr(att.task),
                      attempt=att.attempts + 1)
            if on_result is not None:
                on_result(att.task, results[att.idx])

    # -- pool helpers --------------------------------------------------
    def _assign_ready(self, workers, pending, now) -> None:
        for w in workers:
            if w.current is not None or not pending:
                continue
            for _ in range(len(pending)):
                att = pending.popleft()
                if att.not_before <= now:
                    w.assign(att, self.timeout)
                    get_recorder().event(
                        "task.assigned", cell=_task_attr(att.task),
                        attempt=att.attempts, worker_pid=w.process.pid)
                    break
                pending.append(att)
            else:
                break  # every pending cell is backoff-delayed

    def _wait_timeout(self, busy, pending, now) -> float:
        timeout = self.POLL_INTERVAL
        for w in busy:
            if w.deadline is not None:
                timeout = min(timeout, max(0.0, w.deadline - now))
        for att in pending:
            timeout = min(timeout, max(0.0, att.not_before - now))
        return timeout

    def _service_worker(self, w, ready_set, workers, pending, fallback,
                        results, on_result, ctx, wid, todo) -> int:
        """Handle one worker's result or death; returns cells finished."""
        if w.conn in ready_set:
            records = None
            try:
                msg = w.conn.recv()
                if msg and msg[0] == "hb":
                    self._note_heartbeat(w, msg)
                    return 0
                if len(msg) >= 4:
                    idx, ok, payload, records = msg[:4]
                else:  # legacy 3-tuple reply (no telemetry channel)
                    idx, ok, payload = msg
            except (EOFError, OSError):
                ok = None  # pipe died mid-message: treat as a crash
            if records:
                # Merge the worker's buffered telemetry into the parent
                # stream before the task outcome is recorded, so the
                # cell's spans precede its task.done/task.failed event.
                get_recorder().ingest(records)
            if ok is not None:
                att, w.current, w.deadline = w.current, None, None
                if ok:
                    results[att.idx] = payload
                    get_recorder().event("task.done",
                                         cell=_task_attr(att.task),
                                         attempt=att.attempts)
                    if on_result is not None:
                        on_result(att.task, payload)
                    return 1
                if not isinstance(payload, dict):  # legacy string reply
                    payload = {"error": str(payload), "kind": "error"}
                att.history.append({"attempt": att.attempts,
                                    "where": "worker",
                                    "error": payload["error"],
                                    "kind": payload.get("kind", "error")})
                self._maybe_raise_oom(att, results, todo)
                return self._reschedule(att, pending, fallback)
        if not w.process.is_alive() or w.process.sentinel in ready_set:
            if w.process.is_alive():  # pragma: no cover - sentinel race
                return 0
            att, w.current = w.current, None
            exitcode = w.process.exitcode
            kind, description = classify_exitcode(exitcode)
            w.stop(kill=True)
            workers.remove(w)
            if att is not None:
                att.history.append({
                    "attempt": att.attempts, "where": "worker",
                    "error": description, "kind": kind})
                self._maybe_raise_oom(att, results, todo)
                self._reschedule(att, pending, fallback)
            if pending and len(workers) < self.jobs:
                # Replace the dead worker while cells remain.
                workers.append(_Worker(ctx, next(wid)))
        return 0

    def _maybe_raise_oom(self, att, results, todo) -> None:
        """Abort the pool on an OOM-class failure when so configured.

        Raising here (instead of rescheduling) is what prevents the
        crash-loop: re-running the same oversized task can only summon
        the OOM killer again; the caller must re-plan (fewer workers,
        more shards, or serial) and gets the partial results to resume
        from.
        """
        if self.oom_action != "raise" or att.history[-1].get("kind") != "oom":
            return
        self._note_failure(att, action="degrade")
        partial = {a.task: results[a.idx] for a in todo if a.idx in results}
        detail = ((att.history[-1]["error"] or "").strip().splitlines()
                  or ["out of memory"])[-1]
        raise ResourceExhaustedError(
            f"task {att.task!r} exhausted memory on attempt "
            f"{att.attempts} ({detail})",
            kind="memory", cell=att.task, attempts=att.history,
            partial=partial)

    def _note_heartbeat(self, w, msg) -> None:
        """Fold one ``("hb", idx, progress, cell)`` liveness report.

        The stall deadline is pushed out only when the progress counter
        *advanced* since the previous sample — a heartbeat thread keeps
        beating inside a worker stuck in ``time.sleep`` or a foreign
        C call, so mere liveness must not count as progress.  The first
        sample after an assignment only establishes the baseline (the
        assignment itself already armed the deadline).
        """
        _, idx, progress, cellattr = msg
        att = w.current
        if att is None or att.idx != idx:
            return  # stale beat from a task that already replied
        advanced = (w.last_progress is not None
                    and progress > w.last_progress)
        w.last_progress = progress
        if advanced and self.timeout is not None:
            w.deadline = time.monotonic() + self.timeout
        get_recorder().metric("worker.heartbeat", progress, unit="events",
                              cell=cellattr, worker_pid=w.process.pid)

    def _reap_timeouts(self, workers, pending, fallback, ctx, wid) -> None:
        """Kill workers whose progress counter stalled for ``timeout``.

        ``deadline`` is armed at assignment and re-armed by every
        heartbeat that shows progress, so only a genuinely frozen worker
        ever reaches it (see :meth:`_note_heartbeat`).
        """
        if self.timeout is None:
            return
        now = time.monotonic()
        for w in list(workers):
            if w.current is None or w.deadline is None or now < w.deadline:
                continue
            att, w.current = w.current, None
            att.history.append({"attempt": att.attempts, "where": "worker",
                                "error": f"no progress for {self.timeout}s "
                                         "(stalled)",
                                "kind": "hang"})
            w.stop(kill=True)
            workers.remove(w)
            workers.append(_Worker(ctx, next(wid)))
            self._reschedule(att, pending, fallback)

    def _drain_interrupted(self, workers, results, todo, on_result) -> None:
        """Graceful-shutdown endgame for the pool (first SIGINT/SIGTERM).

        Stops dispatching, gives in-flight cells :data:`DRAIN_GRACE`
        seconds to finish (journaling each result via ``on_result``),
        then abandons whatever is still running and raises
        :class:`~repro.errors.SweepInterrupted`.  The caller's
        ``finally`` kills the workers; abandoned cells simply stay out
        of the journal, so ``--resume`` re-runs exactly those.
        """
        rec = get_recorder()
        busy = [w for w in workers if w.current is not None]
        rec.event("shutdown.requested", level="warning", where="pool",
                  in_flight=len(busy))
        logger.warning("shutdown requested: draining %d in-flight cell(s), "
                       "%.1fs grace", len(busy), self.DRAIN_GRACE)
        deadline = time.monotonic() + self.DRAIN_GRACE
        while busy:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=remaining)
            for w in busy:
                if w.conn not in ready:
                    continue
                try:
                    msg = w.conn.recv()
                except (EOFError, OSError):
                    w.current = None  # died mid-drain: leave unjournaled
                    continue
                if msg and msg[0] == "hb":
                    continue
                idx, ok, payload = msg[0], msg[1], msg[2]
                records = msg[3] if len(msg) >= 4 else None
                if records:
                    rec.ingest(records)
                att, w.current = w.current, None
                if ok and att is not None and att.idx == idx:
                    results[att.idx] = payload
                    rec.event("task.done", cell=_task_attr(att.task),
                              attempt=att.attempts)
                    if on_result is not None:
                        on_result(att.task, payload)
            busy = [w for w in workers if w.current is not None]
        cancelled = [w.current.task for w in workers
                     if w.current is not None]
        for task in cancelled:
            rec.event("task.failed", level="warning",
                      cell=_task_attr(task), fail_kind="interrupted",
                      action="abandon")
        partial = {a.task: results[a.idx] for a in todo if a.idx in results}
        raise SweepInterrupted(
            f"sweep interrupted: {len(partial)} cell(s) journaled, "
            f"{len(cancelled)} in-flight cell(s) cancelled",
            completed_cells=len(partial), partial=partial)

    def _reschedule(self, att, pending, fallback) -> int:
        """Queue a failed attempt for retry or the serial fallback."""
        if att.attempts >= self.retry.max_attempts:
            self._note_failure(att, action="fallback")
            fallback.append(att)
        else:
            self._note_failure(att, action="retry")
            att.not_before = (time.monotonic()
                              + self.retry.delay(att.attempts))
            pending.append(att)
        return 0

    # ------------------------------------------------------------------
    def _failure(self, att, results, todo) -> CellFailedError:
        partial = {a.task: results[a.idx] for a in todo
                   if a.idx in results}
        return CellFailedError(
            f"cell {att.task!r} failed after {len(att.history)} attempt(s)",
            cell=att.task, attempts=att.history, partial=partial)
