"""Resource governor: memory/disk budgets, OOM classification, degradation.

A paper-scale sweep (LU200, MP3D10000, WATER288) can exceed physical
memory: a whole-trace columnar cell or a wide ``--shards`` fan-out gets
SIGKILLed by the kernel OOM killer, and a supervisor that only sees
"worker died" retries the *same* oversized configuration until retries
are exhausted.  This module makes the sweep engine admit, budget and
degrade instead of crash-looping:

* a calibrated **footprint model** (:func:`estimate_cell_bytes`) maps one
  grid cell's columnar row count and per-(block, processor) state onto a
  conservative byte estimate, used for **preflight admission**
  (:func:`plan_admission`) — never launch more concurrent cells/shards
  than the ``--memory-budget`` allows;
* per-worker **soft caps** (:func:`apply_worker_rlimit`, built on
  ``resource.setrlimit(RLIMIT_AS)``) turn an over-budget worker into a
  clean :class:`MemoryError` that the worker harness converts into a
  structured :class:`~repro.errors.ResourceExhaustedError` instead of a
  mid-write SIGKILL;
* **failure classification** (:func:`classify_exitcode`) separates
  OOM-class deaths (SIGKILL / exit 137) from ordinary crashes so the
  engine's **degradation ladder** (:func:`degradation_rungs`) can halve
  worker concurrency, then shrink per-worker footprint by raising the
  shard count, then fall back to serial in-process execution;
* a **disk budget** (:func:`ensure_free_space`, :func:`dir_size_bytes`)
  guards the trace cache and checkpoint directories.

The model constants are deliberately *over*-estimates: admission must be
an upper bound on real usage (checked against measured peak RSS in
``tests/test_resources.py``), because under-admission merely leaves cores
idle while over-admission re-invites the OOM killer.
"""

from __future__ import annotations

import logging
import os
import shutil
import signal
import time
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError, ResourceExhaustedError

logger = logging.getLogger(__name__)

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

#: Environment variable overriding the default memory budget (bytes or a
#: size string like ``1.5G``); ``--memory-budget`` wins over it.
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"

_SIZE_SUFFIXES = {
    "": 1, "B": 1,
    "K": 1 << 10, "KB": 1 << 10, "KIB": 1 << 10,
    "M": 1 << 20, "MB": 1 << 20, "MIB": 1 << 20,
    "G": 1 << 30, "GB": 1 << 30, "GIB": 1 << 30,
    "T": 1 << 40, "TB": 1 << 40, "TIB": 1 << 40,
}


def parse_size(text) -> int:
    """Parse a human byte size (``"512M"``, ``"1.5G"``, ``"4096"``).

    Suffixes are binary (K/M/G/T = KiB/MiB/GiB/TiB, case-insensitive,
    optional trailing ``B``).  Integers pass through unchanged.
    """
    if isinstance(text, int):
        return text
    s = str(text).strip().upper().replace(" ", "")
    digits = s
    suffix = ""
    for i, ch in enumerate(s):
        if ch not in "0123456789.":
            digits, suffix = s[:i], s[i:]
            break
    try:
        value = float(digits)
        scale = _SIZE_SUFFIXES[suffix]
    except (ValueError, KeyError):
        raise ConfigError(
            f"cannot parse size {text!r} (use e.g. 512M, 1.5G, 4096)"
        ) from None
    if value < 0:
        raise ConfigError(f"size must be non-negative, got {text!r}")
    return int(value * scale)


def format_size(num_bytes: int) -> str:
    """Render a byte count compactly (``"1.5G"``, ``"512.0M"``)."""
    value = float(num_bytes)
    for unit in ("B", "K", "M", "G", "T"):
        if abs(value) < 1024 or unit == "T":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}T"  # pragma: no cover - unreachable


# ----------------------------------------------------------------------
# process / machine introspection
# ----------------------------------------------------------------------
def total_memory_bytes() -> Optional[int]:
    """Physical memory of this machine in bytes (``None`` when unknown)."""
    try:
        page = os.sysconf("SC_PAGE_SIZE")
        pages = os.sysconf("SC_PHYS_PAGES")
        if page > 0 and pages > 0:
            return page * pages
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        pass
    return None  # pragma: no cover - non-POSIX


def current_vm_bytes() -> Optional[int]:
    """This process's current virtual address-space size (``None`` off-Linux).

    Read from ``/proc/self/statm``; this is the baseline a forked worker
    inherits, which an ``RLIMIT_AS`` cap must sit *above* — limiting the
    absolute address space below what fork already mapped would kill the
    worker on its first allocation.
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return None


def apply_worker_rlimit(extra_bytes: Optional[int]) -> Optional[int]:
    """Soft-cap this process's address space at *current + extra_bytes*.

    Called inside a freshly forked worker: the limit is set relative to
    the address space inherited from the parent (columnar arrays, numpy,
    the interpreter), so ``extra_bytes`` budgets only the worker's *own*
    growth.  Exceeding the cap raises a clean ``MemoryError`` at the
    offending allocation instead of inviting the kernel OOM killer.

    Returns the absolute soft limit that was installed, or ``None`` when
    no cap could be applied (non-POSIX, unreadable statm, or a
    pre-existing harder limit); failure to cap is never fatal — the
    governor then relies on admission alone.
    """
    if resource is None or extra_bytes is None:
        return None
    base = current_vm_bytes()
    if base is None:
        return None
    target = base + max(0, int(extra_bytes))
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            target = min(target, hard)
        if soft != resource.RLIM_INFINITY:
            target = min(target, soft)
        resource.setrlimit(resource.RLIMIT_AS, (target, hard))
    except (ValueError, OSError):  # pragma: no cover - EPERM etc.
        return None
    return target


def peak_rss_bytes(who: str = "self") -> int:
    """Peak resident set size in bytes (``who``: ``"self"``/``"children"``).

    ``ru_maxrss`` is kilobytes on Linux; the benchmarks record this per
    entry so ``BENCH_throughput.json`` carries a memory trajectory
    alongside the events/s one.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    which = (resource.RUSAGE_CHILDREN if who == "children"
             else resource.RUSAGE_SELF)
    return resource.getrusage(which).ru_maxrss * 1024


# ----------------------------------------------------------------------
# footprint model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FootprintModel:
    """Calibrated byte costs behind :func:`estimate_cell_bytes`.

    The sweep's per-worker footprint is dominated by three terms:

    * ``worker_base_bytes`` — interpreter + numpy + result objects that
      every worker pays once regardless of trace size;
    * ``bytes_per_event`` — per data row: the columnar int64 triple
      (24 B), the decoded plain-int row lists fed to the streaming loops
      (three boxed ints + list slots, ~110 B), and per-row derived
      columns (block ids, offset bits, shard sub-trace copies);
    * ``bytes_per_block_proc`` — per (block, processor) state pair:
      presence/EM/FR flags, word-version dicts, invalidation buffers.
      One data row touches at most one pair, so ``min(rows, pairs)`` is
      bounded by the row count — the model charges every row once, which
      over-counts (pairs repeat) but keeps the estimate an upper bound
      without knowing the block size.

    Constants are calibrated against measured peak RSS on the benchmark
    traces (see ``tests/test_resources.py::TestFootprintModel``); they
    err high on purpose — admission must never under-estimate.
    """

    worker_base_bytes: int = 48 << 20
    bytes_per_event: int = 200
    bytes_per_block_proc: int = 112

    def cell_bytes(self, num_events: int, shards: int = 1) -> int:
        """Estimated peak bytes of one cell (or one shard of it)."""
        shards = max(1, shards)
        rows = -(-max(0, num_events) // shards)  # ceil
        return (self.worker_base_bytes
                + rows * (self.bytes_per_event + self.bytes_per_block_proc))


#: Model used when the caller does not supply one.
DEFAULT_FOOTPRINT_MODEL = FootprintModel()


def estimate_cell_bytes(trace, which: Optional[str] = None, shards: int = 1,
                        *, model: Optional[FootprintModel] = None) -> int:
    """Estimated peak bytes of running one grid cell over ``trace``.

    ``trace`` may be a :class:`~repro.trace.trace.Trace` or a plain event
    count.  ``which`` names the protocol/classifier (currently every cell
    kind shares one conservative model — the per-(block, proc) state term
    dominates identically); ``shards > 1`` divides the per-row terms,
    which is exactly why the degradation ladder raises the shard count to
    shrink per-worker footprint.
    """
    model = model or DEFAULT_FOOTPRINT_MODEL
    num_events = trace if isinstance(trace, int) else len(trace)
    return model.cell_bytes(num_events, shards)


# ----------------------------------------------------------------------
# preflight admission
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Admission:
    """Outcome of preflight admission under a memory budget.

    ``jobs``/``shards`` are the admitted concurrency and shard count;
    ``worker_cap_bytes`` is the per-worker address-space growth cap to
    install via :func:`apply_worker_rlimit` (``None`` when no budget);
    ``over_budget`` flags that even one serial worker exceeds the budget
    (the sweep still runs, serially and uncapped, with a warning — a
    budget is a scheduling input, not a correctness gate).
    """

    jobs: int
    shards: int
    worker_cap_bytes: Optional[int]
    over_budget: bool = False

    def describe(self) -> str:
        cap = (format_size(self.worker_cap_bytes)
               if self.worker_cap_bytes else "none")
        return (f"jobs={self.jobs} shards={self.shards} "
                f"worker_cap={cap}"
                + (" (over budget: serial, uncapped)"
                   if self.over_budget else ""))


def plan_admission(budget_bytes: int, jobs: int, shards: int,
                   estimate: Callable[[int], int], *,
                   shardable: bool = True,
                   max_shards: int = 64) -> Admission:
    """Fit ``jobs`` concurrent workers under ``budget_bytes``.

    ``estimate(s)`` is the per-worker footprint at shard count ``s``
    (typically :func:`estimate_cell_bytes` curried over the trace).  The
    policy mirrors the degradation ladder, applied *before* launch:

    1. if one worker at the requested shard count fits, admit
       ``min(jobs, budget // per_worker)`` workers (at least one);
    2. else, while the cells are shardable, double the shard count —
       smaller per-shard footprint — until one worker fits (capped at
       ``max_shards``);
    3. else run serial and uncapped, flagged ``over_budget``.

    The per-worker cap is the budget's fair share (``budget / jobs``),
    never below the estimate itself, so a worker that behaves per the
    model is never killed by its own rlimit.
    """
    if budget_bytes <= 0:
        raise ConfigError(
            f"memory budget must be positive, got {budget_bytes}")
    shards = max(1, shards)
    per_worker = estimate(shards)
    while per_worker > budget_bytes and shardable and shards < max_shards:
        shards = min(max_shards, shards * 2)
        per_worker = estimate(shards)
    if per_worker > budget_bytes:
        return Admission(jobs=1, shards=max(1, shards), worker_cap_bytes=None,
                         over_budget=True)
    admitted = max(1, min(jobs, budget_bytes // per_worker))
    cap = max(per_worker, budget_bytes // admitted)
    return Admission(jobs=int(admitted), shards=shards,
                     worker_cap_bytes=int(cap))


def resolve_memory_budget(explicit: Optional[int] = None) -> Optional[int]:
    """The effective memory budget: explicit value, else the environment.

    ``$REPRO_MEMORY_BUDGET`` lets CI and batch harnesses impose a budget
    without touching every command line.  ``None`` means ungoverned.
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(MEMORY_BUDGET_ENV)
    if env:
        return parse_size(env)
    return None


# ----------------------------------------------------------------------
# failure classification
# ----------------------------------------------------------------------
#: Signals whose delivery usually means the kernel (or an operator)
#: reclaimed memory: the OOM killer sends SIGKILL, full cgroups likewise.
_OOM_SIGNALS = frozenset({signal.SIGKILL} if hasattr(signal, "SIGKILL")
                         else set())


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def classify_exitcode(exitcode: Optional[int]) -> Tuple[str, str]:
    """Classify a dead worker's exit status: ``(kind, description)``.

    ``kind`` is one of:

    * ``"oom"`` — killed by SIGKILL (negative exitcode from
      ``multiprocessing``, or the shell-style ``128 + signum`` form,
      e.g. 137): on a healthy run the only SIGKILL sender is the kernel
      OOM killer, so the degradation ladder treats it as an
      out-of-memory death;
    * ``"crash"`` — any other signal (SIGSEGV, SIGABRT, ...) or a
      nonzero exit: a genuine bug, retried under the normal policy;
    * ``"exit"`` — exit status 0 with work outstanding (a worker that
      vanished cleanly mid-task, e.g. a stray ``sys.exit``).

    The description always spells out the signal by name
    (``signal.Signals(-exitcode).name``) so ``CellFailedError`` attempt
    histories say ``SIGKILL``, not ``exitcode -9``.
    """
    if exitcode is None:
        return "crash", "worker died (exit status unknown)"
    if exitcode < 0:
        name = _signal_name(-exitcode)
        if -exitcode in {int(s) for s in _OOM_SIGNALS}:
            return "oom", (f"worker killed by {name} (exitcode {exitcode}): "
                           f"likely the kernel OOM killer")
        return "crash", f"worker killed by {name} (exitcode {exitcode})"
    if exitcode > 128:
        name = _signal_name(exitcode - 128)
        if exitcode - 128 in {int(s) for s in _OOM_SIGNALS}:
            return "oom", (f"worker killed by {name} (exitcode {exitcode}): "
                           f"likely the kernel OOM killer")
        return "crash", f"worker killed by {name} (exitcode {exitcode})"
    if exitcode == 0:
        return "exit", "worker exited cleanly with work outstanding"
    return "crash", f"worker died (exitcode {exitcode})"


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rung:
    """One step of the graceful-degradation ladder."""

    jobs: int
    #: Shard override for this rung (``None``: keep the engine's setting).
    shards: Optional[int]
    #: Serial in-process execution (no pool, no rlimit) — the last rung.
    serial: bool
    label: str


def degradation_rungs(jobs: int, shards: Optional[int]) -> List[Rung]:
    """The ladder of configurations tried after OOM-class failures.

    Rather than blind same-config retry, each OOM-class failure moves the
    sweep one rung down; every rung reuses completed (journaled) results,
    so only the incomplete cells pay the re-plan:

    1. the configured ``(jobs, shards)``;
    2. **halved worker concurrency** — fewer concurrent footprints;
    3. **doubled shard count** at the halved concurrency — smaller
       per-shard footprint, merged over the bit-identical shard path;
    4. **serial in-process** — one cell at a time in the parent, no pool
       and no rlimit: the configuration every machine can run.

    Rungs that would repeat the previous configuration are skipped (a
    ``jobs=1`` engine goes straight to serial).
    """
    rungs: List[Rung] = [Rung(jobs, shards, serial=False, label="configured")]
    half = max(1, jobs // 2)
    if half < jobs and half > 1:
        rungs.append(Rung(half, shards, serial=False,
                          label=f"halved workers ({jobs} -> {half})"))
    if half > 1:
        base = shards if shards and shards > 1 else 1
        doubled = max(2, base * 2)
        rungs.append(Rung(half, doubled, serial=False,
                          label=f"raised shard count to {doubled}"))
    rungs.append(Rung(1, 1, serial=True, label="serial in-process"))
    return rungs


# ----------------------------------------------------------------------
# disk budget
# ----------------------------------------------------------------------
def disk_free_bytes(path: str) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (``None``: unknown)."""
    probe = path
    while probe and not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    try:
        return shutil.disk_usage(probe or ".").free
    except OSError:  # pragma: no cover - vanished mount
        return None


def ensure_free_space(path: str, needed_bytes: int, *,
                      label: str = "write") -> None:
    """Free-space preflight: raise before filling the disk, not after.

    Raises :class:`~repro.errors.ResourceExhaustedError` (``kind="disk"``)
    when the filesystem holding ``path`` has less than ``needed_bytes``
    free.  A failed write would corrupt or half-write an entry; failing
    *before* the write keeps the cache/journal consistent.
    """
    free = disk_free_bytes(path)
    if free is not None and free < needed_bytes:
        raise ResourceExhaustedError(
            f"not enough disk space for {label} under {path!r}: "
            f"{format_size(needed_bytes)} needed, "
            f"{format_size(free)} free",
            kind="disk", limit_bytes=free, needed_bytes=needed_bytes)


def dir_size_bytes(directory: str, suffixes: Tuple[str, ...] = ()) -> int:
    """Total size of the files directly under ``directory``.

    ``suffixes`` filters by file ending (empty: every regular file).
    Entries that vanish mid-scan (concurrent eviction) are skipped.
    """
    total = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if suffixes and not name.endswith(suffixes):
            continue
        try:
            total += os.path.getsize(os.path.join(directory, name))
        except OSError:
            continue
    return total


#: Default age (seconds) an orphaned ``*.tmp`` file must reach before
#: :func:`gc_stale_tmp` removes it.  Overridable per deployment with
#: ``$REPRO_TMP_MAX_AGE_S`` (float seconds) — long-running writers on a
#: slow shared filesystem may need a larger guard, scratch dirs on CI a
#: smaller one.
DEFAULT_TMP_MAX_AGE_S = 3600.0


def resolve_tmp_max_age(max_age_s: Optional[float] = None) -> float:
    """The effective GC age guard: explicit arg, env override, default."""
    if max_age_s is not None:
        return max_age_s
    env = os.environ.get("REPRO_TMP_MAX_AGE_S")
    if env:
        try:
            return float(env)
        except ValueError:
            warn_resource(
                f"ignoring invalid REPRO_TMP_MAX_AGE_S={env!r} "
                f"(expected float seconds); using the "
                f"{DEFAULT_TMP_MAX_AGE_S:.0f}s default")
    return DEFAULT_TMP_MAX_AGE_S


def gc_stale_tmp(directory: str, *, max_age_s: Optional[float] = None,
                 now: Optional[float] = None) -> int:
    """Remove orphaned temp files left behind by killed writers.

    Atomic writes in the trace cache, checkpoint journal and telemetry
    manifest all go through a ``*.tmp`` sibling that is renamed into
    place; a writer killed between create and rename leaks the sibling
    forever.  Called on directory *open*, this sweeps any file whose name
    carries a ``.tmp`` segment (``foo.npz.1234.tmp.npz``,
    ``manifest.json.tmp``, ``<key>.jsonl.tmp``) and whose mtime is older
    than ``max_age_s`` — the age guard keeps a concurrently *live* writer
    in another process safe.  ``max_age_s`` defaults to
    ``$REPRO_TMP_MAX_AGE_S``, else :data:`DEFAULT_TMP_MAX_AGE_S`; a file
    exactly at the guard age is stale (strict ``<`` keeps it only while
    younger).  Returns the number of files removed.
    """
    max_age_s = resolve_tmp_max_age(max_age_s)
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    if now is None:
        now = time.time()
    removed = 0
    for name in names:
        stem = name.split("/")[-1]
        parts = stem.split(".")
        if "tmp" not in parts[1:]:
            continue
        path = os.path.join(directory, name)
        try:
            if not os.path.isfile(path):
                continue
            if now - os.path.getmtime(path) < max_age_s:
                continue
            os.unlink(path)
            removed += 1
        except OSError:  # pragma: no cover - raced with another GC
            continue
    if removed:
        logger.info("removed %d orphaned temp file(s) under %s",
                    removed, directory)
    return removed


def warn_resource(message: str) -> None:
    """Uniform, greppable resource-governor warning.

    Goes out both as a :mod:`warnings` warning (the API contract existing
    callers and tests rely on) and as a warning-level log record, so a
    ``-v`` console and the telemetry stream see degradations the moment
    they happen.
    """
    logger.warning("[resource-governor] %s", message)
    warnings.warn(f"[resource-governor] {message}", stacklevel=3)
