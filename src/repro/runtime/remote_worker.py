"""Remote worker runner: serve sweep cells to a supervisor over TCP.

::

    python -m repro.runtime.remote_worker --listen 0.0.0.0:7301 \\
        --slots 2 --trace-cache ~/.cache/repro/traces

One runner process listens on a socket.  For every accepted connection
it performs the versioned handshake (see
:mod:`repro.runtime.transport`): the client's ``hello`` must match this
runner's repro release, wire protocol and checkpoint journal version,
name a workload the runner can generate, carry that workload's exact
trace identity, and request a kernel mode the runner honours — any
mismatch is answered with a structured ``refused`` frame naming both
sides' values, so a stale host can never silently compute divergent
results.  Accepted connections are served by a forked child (one remote
worker per connection, capped by ``--slots``); children share the
runner's cached trace and :class:`~repro.analysis.engine.SharedPrecompute`
pages through fork, so serving N connections costs one trace generation.

The serving child speaks the supervisor's task/reply/heartbeat protocol
over length-prefixed JSON frames: ``run`` frames carry a grid cell (plus
``meta.num_shards`` for shard subtasks, from which the child rebuilds
the shard plan deterministically and *verifies its digest* against the
one embedded in the task — a digest mismatch is a structured error
reply, never a silently different partition); replies carry the
checkpoint-encoded result and the child's buffered telemetry records; a
heartbeat thread reports the progress counter so the supervisor's stall
watchdog can tell a slow remote cell from a dead host.
"""

from __future__ import annotations

import argparse
import errno
import logging
import os
import signal
import socket
import sys
import threading
import time
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, ReproError
from ..obs import Recorder, apply_trace_context, use_recorder
from . import signals
from .checkpoint import (
    JOURNAL_VERSION,
    CheckpointError,
    encode_result,
)
from .resources import peak_rss_bytes
from .transport import (
    EndpointLostError,
    PROTOCOL_VERSION,
    _failure_payload,
    _task_attr,
    decode_task,
    recv_frame,
    send_frame,
)

logger = logging.getLogger(__name__)

#: How long a connected client may take to send its ``hello``.
HELLO_TIMEOUT = 10.0


def _release() -> str:
    import repro
    return repro.__version__


def parse_listen(spec: str) -> Tuple[str, int]:
    """Parse ``--listen HOST:PORT`` (port 0 binds an ephemeral port)."""
    host, sep, port = (spec or "").rpartition(":")
    if not sep or not host:
        raise ConfigError(f"invalid --listen {spec!r}: expected host:port")
    try:
        port_n = int(port)
    except ValueError:
        raise ConfigError(f"invalid port in --listen {spec!r}") from None
    if not 0 <= port_n < 65536:
        raise ConfigError(f"port out of range in --listen {spec!r}")
    return host, port_n


class RemoteWorkerHost:
    """One runner process: handshake, fork a serving child per client."""

    def __init__(self, listen: Tuple[str, int], *, slots: int = 2,
                 cache_dir: Optional[str] = None,
                 kernel: str = "auto"):
        if slots < 1:
            raise ConfigError(f"--slots must be >= 1, got {slots}")
        self.listen = listen
        self.slots = slots
        self.cache_dir = cache_dir
        self.kernel = kernel
        self._engines: Dict[Tuple[str, str], object] = {}
        self._children: Dict[int, float] = {}
        self._sock: Optional[socket.socket] = None
        self._stop = False

    # -- lifecycle -----------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(self.listen)
        sock.listen(16)
        sock.settimeout(0.5)  # poll the stop flag between accepts
        self._sock = sock
        return sock.getsockname()[:2]

    def shutdown(self) -> None:
        self._stop = True

    def serve_forever(self) -> None:
        if self._sock is None:
            self.bind()
        try:
            while not self._stop:
                self._reap_children()
                try:
                    conn, addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us
                try:
                    self._handle_connection(conn, addr)
                except Exception:
                    logger.exception("connection from %s failed", addr)
                    conn.close()
        finally:
            self._sock.close()
            for pid in list(self._children):
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
            self._reap_children()

    def _reap_children(self) -> None:
        for pid in list(self._children):
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                done = pid
            if done:
                self._children.pop(pid, None)

    # -- handshake -----------------------------------------------------
    def _engine(self, workload: str, kernel: str):
        """The cached serving engine for one (workload, kernel) pair.

        Built *before* forking the serving child so the trace and its
        precompute are shared copy-on-write by every child.
        """
        key = (workload, kernel)
        if key not in self._engines:
            from ..analysis.engine import SweepEngine
            logger.info("preparing workload %s (kernel=%s)...", workload,
                        kernel)
            engine = SweepEngine.for_workload(workload,
                                              cache_dir=self.cache_dir,
                                              kernel=kernel)
            engine.precompute  # force the derived columns now
            self._engines[key] = engine
        return self._engines[key]

    def _mine(self, kernel: str) -> dict:
        from ..kernels import effective_kernel_mode
        pinned = (effective_kernel_mode(self.kernel)
                  if self.kernel != "auto" else kernel)
        return {"proto": PROTOCOL_VERSION, "release": _release(),
                "journal_v": JOURNAL_VERSION, "kernel": pinned}

    def _check_hello(self, hello: dict):
        """Validate one ``hello``; returns ``(engine, None)`` or
        ``(None, refused_frame)``."""
        from ..kernels import effective_kernel_mode

        def refused(reason: str, *, retryable: bool = False) -> dict:
            theirs = {k: hello.get(k) for k in
                      ("proto", "release", "journal_v", "kernel",
                       "trace_key", "workload")}
            return {"t": "refused", "reason": reason,
                    "retryable": retryable,
                    "host": self._mine(str(hello.get("kernel"))),
                    "client": theirs}

        if hello.get("t") != "hello":
            return None, refused(f"expected hello, got {hello.get('t')!r}")
        if hello.get("proto") != PROTOCOL_VERSION:
            return None, refused(
                f"protocol version mismatch: host speaks "
                f"{PROTOCOL_VERSION}, client sent {hello.get('proto')!r}")
        if hello.get("release") != _release():
            return None, refused(
                f"repro release mismatch: host runs {_release()}, client "
                f"runs {hello.get('release')!r}")
        if hello.get("journal_v") != JOURNAL_VERSION:
            return None, refused(
                f"journal format mismatch: host writes v{JOURNAL_VERSION}, "
                f"client expects v{hello.get('journal_v')!r}")
        kernel = hello.get("kernel")
        if kernel not in ("vectorized", "interpreted"):
            return None, refused(
                f"invalid kernel mode {kernel!r}: expected the client's "
                f"*effective* mode (vectorized or interpreted)")
        if self.kernel != "auto" and \
                effective_kernel_mode(self.kernel) != kernel:
            return None, refused(
                f"kernel mode mismatch: host is pinned to "
                f"--kernel {self.kernel} "
                f"({effective_kernel_mode(self.kernel)}), client requires "
                f"{kernel}")
        if effective_kernel_mode(kernel) != kernel:
            return None, refused(
                f"kernel mode {kernel!r} unavailable on this host "
                f"(effective mode is {effective_kernel_mode(kernel)!r})")
        workload = hello.get("workload")
        if not workload:
            return None, refused(
                "client trace has no workload name; remote execution "
                "needs a named workload the host can regenerate")
        try:
            engine = self._engine(str(workload), kernel)
        except ReproError as exc:
            return None, refused(f"cannot serve workload "
                                 f"{workload!r}: {exc}")
        # Trace identity: the client keys its checkpoint journal by
        # either the workload cache key (``for_workload`` engines) or a
        # content hash of the trace arrays (CLI sweeps over a generated
        # trace).  Accept both — each one proves we regenerated the
        # byte-identical trace.
        from ..trace.cache import WorkloadTraceCache, workload_cache_key
        wl = WorkloadTraceCache(self.cache_dir)._resolve(str(workload))
        accepted = {workload_cache_key(wl), _content_trace_key(engine)}
        if hello.get("trace_key") not in accepted:
            return None, refused(
                f"trace identity mismatch for workload {workload!r}: host "
                f"generated {sorted(accepted)!r}, client sent "
                f"{hello.get('trace_key')!r}")
        return engine, None

    def _handle_connection(self, conn: socket.socket, addr) -> None:
        if len(self._children) >= self.slots:
            send_frame(conn, {"t": "refused", "retryable": True,
                              "reason": f"all {self.slots} slot(s) busy",
                              "host": self._mine("auto"), "client": {}})
            conn.close()
            return
        conn.settimeout(HELLO_TIMEOUT)
        try:
            hello = recv_frame(conn)
        except EndpointLostError as exc:
            logger.warning("no hello from %s: %s", addr, exc)
            conn.close()
            return
        engine, refusal = self._check_hello(hello)
        if refusal is not None:
            logger.warning("refusing %s: %s", addr, refusal["reason"])
            try:
                send_frame(conn, refusal)
            except EndpointLostError:
                pass
            conn.close()
            return
        pid = os.fork()
        if pid == 0:  # serving child
            code = 0
            try:
                self._sock.close()
                serve_connection(conn, engine, hello)
            except BaseException:
                code = 1
            finally:
                os._exit(code)
        self._children[pid] = time.monotonic()
        conn.close()
        logger.info("serving %s from child pid %d (%d/%d slots)",
                    addr, pid, len(self._children), self.slots)


def _content_trace_key(engine) -> str:
    """The content-hash trace identity CLI-built engines fall back to."""
    from ..analysis.engine import SweepEngine
    probe = SweepEngine(engine.trace)
    return probe.trace_key


def _hb_loop(conn, send_lock, current, interval: float) -> None:
    """Daemon thread: frame the worker heartbeat over the socket."""
    while True:
        time.sleep(interval)
        cur = current[0]
        if cur is None:
            continue
        idx, task = cur
        try:
            with send_lock:
                send_frame(conn, {"t": "hb", "idx": idx,
                                  "progress": signals.progress_count(),
                                  "cell": _task_attr(task)})
        except EndpointLostError:
            return  # socket gone: the child is exiting


def _prepare_task(pre, task, meta: dict):
    """Decode one wire task; rebuild and verify shard plans by digest.

    Shard subtasks reference a plan the supervisor built before
    dispatch.  The child reconstructs it deterministically from the
    task's block size, partition dimension and ``meta.num_shards`` —
    and then *requires* the digests to match, so a host whose plan
    construction diverged (different trace, different LPT tie-break)
    errors out instead of computing a partition of the wrong blocks.
    """
    from ..analysis.engine import partition_dim_for
    from ..mem.addresses import BlockMap

    task = decode_task(task)
    kind = task[0] if isinstance(task, tuple) and task else None
    if isinstance(kind, str) and kind.endswith("-shard"):
        digest = task[3]
        num_shards = int((meta or {}).get("num_shards", 0))
        if num_shards < 1:
            raise ConfigError(
                f"shard task {task!r} arrived without meta.num_shards")
        plan = pre.shard_plan(BlockMap(task[1]), num_shards,
                              dim=partition_dim_for(task))
        if plan.digest != digest:
            raise ConfigError(
                f"shard plan digest mismatch for {task!r}: host built "
                f"{plan.digest!r}, client dispatched {digest!r} — the "
                f"hosts are not partitioning the same trace")
    return task


def serve_connection(conn: socket.socket, engine, hello: dict) -> None:
    """Serve one supervisor connection (runs in the forked child)."""
    signals.reset_in_child()
    conn.settimeout(None)
    pre = engine.precompute
    recorder = Recorder.buffering()
    send_lock = threading.Lock()
    current: list = [None]
    heartbeat = hello.get("heartbeat")
    with use_recorder(recorder):
        # "now" lets the client estimate this host's wall-clock skew
        # from the handshake round trip and normalize span times on
        # ingest (see TcpTransport._connect).
        send_frame(conn, {"t": "welcome", "pid": os.getpid(),
                          "release": _release(),
                          "host": f"{socket.gethostname()}:{os.getpid()}",
                          "now": time.time()})
        if heartbeat:
            threading.Thread(target=_hb_loop,
                             args=(conn, send_lock, current,
                                   float(heartbeat)),
                             name="repro-remote-heartbeat",
                             daemon=True).start()
        while True:
            try:
                msg = recv_frame(conn)
            except EndpointLostError:
                return
            t = msg.get("t")
            if t == "stop":
                return
            if t != "run":
                continue
            idx, attempt = msg.get("idx"), msg.get("attempt")
            wire_task = msg.get("task")
            current[0] = (idx, wire_task)
            try:
                task = _prepare_task(pre, wire_task, msg.get("meta"))
                current[0] = (idx, task)
                with apply_trace_context(msg.get("ctx")):
                    result = pre.run_cell(task)
                ok, payload = True, encode_result(result)
            except BaseException as exc:
                if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                    raise
                ok, payload = False, _failure_payload(exc)
            current[0] = None
            recorder.metric("worker.ru_maxrss_kb",
                            peak_rss_bytes() // 1024, unit="kb",
                            cell=_task_attr(wire_task))
            records = recorder.drain()
            try:
                with send_lock:
                    send_frame(conn, {"t": "reply", "idx": idx, "ok": ok,
                                      "payload": payload,
                                      "records": records or None})
            except EndpointLostError:
                return


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.runtime.remote_worker",
        description="Serve sweep cells to remote supervisors over TCP.")
    parser.add_argument("--listen", required=True,
                        help="HOST:PORT to listen on (port 0 = ephemeral)")
    parser.add_argument("--slots", type=int, default=2,
                        help="max concurrent serving children (default 2)")
    parser.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="on-disk trace cache shared with other "
                             "runners (strongly recommended)")
    parser.add_argument("--kernel", default="auto",
                        choices=("auto", "vectorized", "interpreted"),
                        help="pin the kernel mode this host will serve; "
                             "'auto' honours whatever the client requests")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="[remote-worker] %(levelname)s %(message)s")
    try:
        host = RemoteWorkerHost(parse_listen(args.listen),
                                slots=args.slots,
                                cache_dir=args.trace_cache,
                                kernel=args.kernel)
        bound = host.bind()
    except (ConfigError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _on_term(signum, frame):
        host.shutdown()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    # The supervisor-facing contract: one parseable line announcing the
    # bound address (tests and scripts read the ephemeral port off it).
    print(f"listening on {bound[0]}:{bound[1]}", flush=True)
    try:
        host.serve_forever()
    except OSError as exc:  # pragma: no cover - listener-level failure
        if exc.errno not in (errno.EBADF, errno.EINTR):
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
