"""Deterministic fault injection for the resilient executor.

The supervisor, checkpoint and cache hardening are only trustworthy if
their failure paths are exercised, so this module provides hooks that make
failures *reproducible*: a :class:`FaultPlan` says exactly which cell
fails, how (crash / hang / raise), and for how many attempts.  The plan is
keyed by the cell descriptor or its grid index, and consulted with the
supervisor's attempt number, so it needs no cross-process mutable state —
a forked worker inherits the plan and decides from ``(cell, attempt)``
alone.

Crash, hang and exhaust-memory faults model *worker-level* failures (a
dead process, a stuck cell, an over-budget cell) and therefore only fire
inside worker processes; raise faults model deterministic per-cell errors
and fire on the serial path too, which is how the exhausted-retries path
is tested.  The exhaust-memory fault genuinely allocates past the
worker's ``RLIMIT_AS`` soft cap when one is installed (raising the same
``MemoryError`` a real over-budget cell would), so the resource
governor's OOM path is exercised end-to-end without a real
machine-threatening OOM.

:func:`corrupt_file` deterministically damages an on-disk cache entry
(truncation or byte garbling) for the trace-cache integrity tests.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReproError


class FaultInjectedError(ReproError):
    """Raised by an injected ``raise`` fault (test-only failure mode)."""


@dataclass(frozen=True)
class FaultPlan:
    """Which cells fail, how, and for how many attempts.

    Each mapping is keyed by a cell descriptor (the grid's
    ``(kind, block_bytes, which)`` tuple) **or** by the cell's integer
    index in the submitted grid; the value is the number of leading
    attempts that fail.  ``crash={2: 1}`` kills the worker running the
    third grid cell on its first attempt only — the retry succeeds.
    """

    #: attempts that hard-kill the worker process (``os._exit``).
    crash: Dict[Any, int] = field(default_factory=dict)
    #: attempts that hang (sleep ``hang_seconds``) until the timeout kills
    #: the worker.
    hang: Dict[Any, int] = field(default_factory=dict)
    #: attempts that raise :class:`FaultInjectedError` (fires on the serial
    #: fallback path as well).
    raises: Dict[Any, int] = field(default_factory=dict)
    #: attempts that allocate memory until the worker's ``RLIMIT_AS`` soft
    #: cap raises ``MemoryError`` (worker-only, like crash/hang — the
    #: serial fallback must be able to complete the cell).  Without an
    #: installed rlimit the fault raises ``MemoryError`` directly instead
    #: of actually threatening the machine.
    exhaust_memory: Dict[Any, int] = field(default_factory=dict)
    #: attempts that SIGTERM the *parent* (supervisor) process from inside
    #: the worker, then hang — the chaos harness's "the whole sweep got
    #: killed mid-cell" scenario.  The parent's graceful-shutdown handler
    #: turns this into a drain + resumable exit; the hanging worker is
    #: cancelled during the drain.  Worker-only.
    sigterm_parent: Dict[Any, int] = field(default_factory=dict)
    #: how long a hang fault sleeps; far longer than any test timeout.
    hang_seconds: float = 3600.0
    #: allocation step of the exhaust-memory fault.
    exhaust_chunk_bytes: int = 16 << 20

    def _times(self, table: Dict[Any, int], cell, index: Optional[int]) -> int:
        if index is not None and index in table:
            return table[index]
        return table.get(cell, 0)

    def should_crash(self, cell, attempt: int, index: Optional[int] = None) -> bool:
        return attempt <= self._times(self.crash, cell, index)

    def should_hang(self, cell, attempt: int, index: Optional[int] = None) -> bool:
        return attempt <= self._times(self.hang, cell, index)

    def should_raise(self, cell, attempt: int, index: Optional[int] = None) -> bool:
        return attempt <= self._times(self.raises, cell, index)

    def should_exhaust(self, cell, attempt: int,
                       index: Optional[int] = None) -> bool:
        return attempt <= self._times(self.exhaust_memory, cell, index)

    def should_sigterm_parent(self, cell, attempt: int,
                              index: Optional[int] = None) -> bool:
        return attempt <= self._times(self.sigterm_parent, cell, index)

    # ------------------------------------------------------------------
    def apply_worker(self, cell, attempt: int, index: Optional[int] = None) -> None:
        """Fire any worker-side fault for ``(cell, attempt)``.

        Called by the supervisor's worker loop before running the cell.
        """
        if self.should_crash(cell, attempt, index):
            os._exit(17)  # hard death: no cleanup, no exception propagation
        if self.should_sigterm_parent(cell, attempt, index):
            os.kill(os.getppid(), signal.SIGTERM)
            # Hang rather than complete: the interrupted parent must not
            # receive this cell's result, so the drain cancels it and
            # --resume recomputes it.
            time.sleep(self.hang_seconds)
        if self.should_hang(cell, attempt, index):
            time.sleep(self.hang_seconds)
        if self.should_exhaust(cell, attempt, index):
            exhaust_address_space(chunk_bytes=self.exhaust_chunk_bytes)
        self.apply_serial(cell, attempt, index)

    def apply_serial(self, cell, attempt: int, index: Optional[int] = None) -> None:
        """Fire any fault that also applies to in-process execution."""
        if self.should_raise(cell, attempt, index):
            raise FaultInjectedError(
                f"injected failure for cell {cell!r} (attempt {attempt})")


def exhaust_address_space(*, chunk_bytes: int = 16 << 20) -> None:
    """Deterministically run this process into ``MemoryError``.

    With a finite ``RLIMIT_AS`` soft cap installed (the resource
    governor's per-worker budget) this allocates real memory in
    ``chunk_bytes`` steps until the kernel refuses — the exact failure an
    over-budget cell produces — then frees everything and re-raises the
    ``MemoryError``.  Without a cap the loop would threaten the whole
    machine, so the fault raises directly instead; either way the caller
    observes a clean ``MemoryError`` at a deterministic point.
    """
    try:
        import resource
        soft, _ = resource.getrlimit(resource.RLIMIT_AS)
        capped = soft != resource.RLIM_INFINITY
    except (ImportError, ValueError, OSError):  # pragma: no cover
        capped = False
    if not capped:
        raise MemoryError(
            "injected exhaust_memory fault (no RLIMIT_AS cap installed)")
    hoard = []
    try:
        while True:
            # touch the pages so the allocation is real, not lazy
            hoard.append(bytearray(chunk_bytes))
    except MemoryError:
        del hoard
        raise MemoryError(
            "injected exhaust_memory fault (RLIMIT_AS cap reached)") from None


def tear_jsonl_tail(path: str, *, cut: int = 17) -> bool:
    """Simulate a kill mid-journal-write: leave a torn final JSONL line.

    Rewinds the file past its final newline by ``cut`` bytes, producing
    an unterminated fragment exactly like an interrupted ``write()``.
    The journal's torn-tail recovery must truncate it away on the next
    open.  Returns False (no-op) when the file is too small to tear.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size <= cut + 1:
        return False
    with open(path, "r+b") as f:
        f.truncate(size - cut)
    return True


def corrupt_file(path: str, *, mode: str = "truncate",
                 offset: int = 64, length: int = 64) -> None:
    """Deterministically corrupt an on-disk cache entry.

    ``mode="truncate"`` cuts the file to half its size (a partial write /
    killed process); ``mode="garble"`` overwrites ``length`` bytes at
    ``offset`` with a fixed pattern (silent media corruption) without
    changing the size.
    """
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as f:
            f.truncate(max(1, size // 2))
    elif mode == "garble":
        with open(path, "r+b") as f:
            f.seek(min(offset, max(0, size - 1)))
            f.write(b"\xde\xad\xbe\xef" * (length // 4 + 1))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
