"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TraceError(ReproError):
    """A trace is malformed (bad event, bad processor id, bad opcode...)."""


class TraceFormatError(TraceError):
    """A serialized trace could not be parsed."""


class DataRaceError(TraceError):
    """A trace contains a data race.

    The delayed protocols (RD/SD/SRD) are only correct for race-free traces
    that conform to release consistency (paper section 5.0), so the validator
    raises this when two conflicting accesses are unordered by happens-before.
    """

    def __init__(self, message: str, first=None, second=None):
        super().__init__(message)
        #: The two conflicting events, when known (``(index, event)`` pairs).
        self.first = first
        self.second = second


class LayoutError(ReproError):
    """Invalid memory layout request (overlap, bad alignment, bad size)."""


class ConfigError(ReproError):
    """Invalid configuration value for a workload, protocol or sweep."""


class SimulationError(ReproError):
    """The simulated multiprocessor reached an illegal state (deadlock,

    a generator yielded a malformed operation, a barrier was re-entered
    inconsistently, ...).
    """


class DeadlockError(SimulationError):
    """All runnable threads are blocked on synchronization."""


class ProtocolError(ReproError):
    """A coherence-protocol simulator reached an inconsistent state."""
