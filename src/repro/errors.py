"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Standard process exit codes
# ---------------------------------------------------------------------------
# The CLI (and the chaos harness's sweep children) exit with exactly one of
# these.  ``EXIT_INTERRUPTED`` follows BSD sysexits' ``EX_TEMPFAIL``: the
# run was cut short but left a consistent checkpoint journal, so re-running
# with ``--resume`` completes it.  Note that individual commands may also
# use exit code 1 for an *unclean result* that is not an error (e.g.
# ``repro validate`` on a racy trace).

#: The command ran to completion.
EXIT_COMPLETED = 0
#: The command failed with a :class:`ReproError` (bad input, cell failure
#: after all retries, invariant violation, ...).  Not resumable as-is.
EXIT_FAILED = 2
#: A memory or disk budget could not be satisfied even after the
#: degradation ladder (:class:`ResourceExhaustedError`).  Resumable on a
#: bigger machine or with a larger budget.
EXIT_RESOURCE_EXHAUSTED = 3
#: The sweep was interrupted (SIGINT/SIGTERM) after a graceful drain; the
#: checkpoint journal holds every completed cell and ``--resume`` re-runs
#: only the incomplete ones.  75 == sysexits EX_TEMPFAIL.
EXIT_INTERRUPTED = 75


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TraceError(ReproError):
    """A trace is malformed (bad event, bad processor id, bad opcode...)."""


class TraceFormatError(TraceError):
    """A serialized trace could not be parsed."""


class DataRaceError(TraceError):
    """A trace contains a data race.

    The delayed protocols (RD/SD/SRD) are only correct for race-free traces
    that conform to release consistency (paper section 5.0), so the validator
    raises this when two conflicting accesses are unordered by happens-before.
    """

    def __init__(self, message: str, first=None, second=None):
        super().__init__(message)
        #: The two conflicting events, when known (``(index, event)`` pairs).
        self.first = first
        self.second = second


class LayoutError(ReproError):
    """Invalid memory layout request (overlap, bad alignment, bad size)."""


class ConfigError(ReproError):
    """Invalid configuration value for a workload, protocol or sweep."""


class SimulationError(ReproError):
    """The simulated multiprocessor reached an illegal state (deadlock,

    a generator yielded a malformed operation, a barrier was re-entered
    inconsistently, ...).
    """


class DeadlockError(SimulationError):
    """All runnable threads are blocked on synchronization."""


class ProtocolError(ReproError):
    """A coherence-protocol simulator reached an inconsistent state."""


class CacheIntegrityError(TraceFormatError):
    """A cached trace entry failed its integrity check (bad checksum,

    truncated archive).  The trace cache quarantines such entries and
    regenerates them, so consumers normally never see this escape
    :meth:`repro.trace.cache.WorkloadTraceCache.get`.
    """


class CellFailedError(ReproError):
    """A sweep grid cell exhausted every execution attempt.

    Raised by the resilient execution layer (:mod:`repro.runtime`) only
    after worker retries *and* the serial in-process fallback have failed.
    Carries enough structure for the caller to salvage the run.
    """

    def __init__(self, message: str, *, cell=None, attempts=(),
                 partial=None):
        super().__init__(message)
        #: The grid cell that failed, e.g. ``("classify", 64, "dubois")``.
        self.cell = cell
        #: Attempt history: ``[{"attempt", "where", "error"}, ...]``.
        self.attempts = list(attempts)
        #: Results of the cells that *did* complete, ``{cell: result}``.
        self.partial = dict(partial or {})


class ResourceExhaustedError(ReproError):
    """A memory or disk budget was (or would be) exceeded.

    Raised by the resource governor (:mod:`repro.runtime.resources`) in
    three situations:

    * a supervised worker exceeded its ``RLIMIT_AS`` soft cap and raised
      a clean :class:`MemoryError` (or was SIGKILLed by the kernel OOM
      killer) — the supervisor converts either into this error so the
      sweep engine's degradation ladder can re-plan instead of
      crash-looping the same oversized configuration;
    * a disk free-space preflight found less space than a trace-cache
      entry or checkpoint journal needs;
    * preflight admission could not fit even one worker under the
      configured ``--memory-budget``.

    ``kind`` distinguishes the resource (``"memory"`` or ``"disk"``);
    memory-kind failures are the ones the degradation ladder reacts to.
    """

    def __init__(self, message: str, *, kind: str = "memory", cell=None,
                 attempts=(), partial=None, limit_bytes=None,
                 needed_bytes=None):
        super().__init__(message)
        #: ``"memory"`` or ``"disk"``.
        self.kind = kind
        #: The grid cell/task whose attempt exhausted the budget, if any.
        self.cell = cell
        #: Attempt history (same shape as :class:`CellFailedError`).
        self.attempts = list(attempts)
        #: Results of tasks that completed before the exhaustion.
        self.partial = dict(partial or {})
        #: The budget that was hit, in bytes (when known).
        self.limit_bytes = limit_bytes
        #: The estimated requirement that did not fit (when known).
        self.needed_bytes = needed_bytes


class CheckpointError(ReproError):
    """A sweep checkpoint journal could not be read or written."""


class StaleJournalError(CheckpointError):
    """A checkpoint journal was written by an incompatible code version.

    The journal header carries a digest of the journal format version and
    the ``repro`` release that wrote it; resuming against a journal whose
    digest no longer matches would silently mix results computed by
    different code, so the journal is rejected instead.  Delete the
    journal (or run without ``--resume``) to recompute from scratch.
    """


class HandshakeError(ReproError):
    """A remote worker host refused the transport handshake.

    The hello/welcome handshake binds everything two processes must agree
    on before sharing sweep cells: wire protocol version, repro release,
    checkpoint journal format, effective kernel mode and the trace's
    checkpoint identity.  A refusal is a *structured* disagreement — the
    error names the field that differed and both sides' values, so the
    remedy (upgrade the runner, restart it with the right ``--kernel``,
    warm the right workload) is readable straight off the message.
    """

    def __init__(self, message: str, *, host=None, reason=None,
                 local=None, remote=None):
        super().__init__(message)
        #: ``host:port`` label of the refusing runner.
        self.host = host
        #: The runner's one-line refusal reason.
        self.reason = reason
        #: This process's handshake values (what we offered).
        self.local = dict(local or {})
        #: The runner's handshake values (what it requires).
        self.remote = dict(remote or {})

    @classmethod
    def refused(cls, host: str, frame: dict) -> "HandshakeError":
        """Build from a runner's ``refused`` frame, naming both sides."""
        reason = frame.get("reason", "handshake refused")
        local = frame.get("client") or {}
        remote = frame.get("host") or {}
        return cls(
            f"host {host} refused handshake: {reason} "
            f"(ours={local!r}, theirs={remote!r})",
            host=host, reason=reason, local=local, remote=remote)


class SweepInterrupted(BaseException):
    """A sweep was stopped by a graceful-shutdown request (SIGINT/SIGTERM).

    Deliberately *not* a :class:`ReproError` — it derives from
    ``BaseException`` (like :class:`KeyboardInterrupt`) so that the retry
    and fallback machinery's ``except Exception`` clauses never mistake an
    operator interrupt for a failed cell and burn retry budget on it.
    Whoever catches it (the CLI, the chaos harness) should exit with
    :data:`EXIT_INTERRUPTED`.
    """

    def __init__(self, message: str = "sweep interrupted", *,
                 completed_cells: int = 0, partial=None):
        super().__init__(message)
        #: Number of cells durably journaled before the interrupt.
        self.completed_cells = completed_cells
        #: Results of cells that completed in this process, ``{cell: result}``.
        self.partial = dict(partial or {})


class InvariantViolationError(ReproError):
    """A post-cell invariant check failed in ``--strict-invariants`` mode.

    The same violations are reported as warnings when strict mode is off.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        #: The human-readable violation strings from
        #: :mod:`repro.analysis.invariants`.
        self.violations = list(violations)
