"""Three-way classifier comparison (paper section 3.3, Table 1).

Runs our, Eggers' and Torrellas' classifiers over the same trace in one
pass and packages the counts the paper's Table 1 reports: PTS/TSM, COLD and
PFS/FSM for each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import DuboisBreakdown, SimpleBreakdown
from .dubois import DuboisClassifier
from .eggers import EggersClassifier
from .torrellas import TorrellasClassifier


@dataclass(frozen=True)
class ClassificationComparison:
    """The three breakdowns of one (trace, block size) pair."""

    trace_name: str
    block_bytes: int
    ours: DuboisBreakdown
    eggers: SimpleBreakdown
    torrellas: SimpleBreakdown

    def table1_rows(self) -> dict:
        """The nine counts of one Table 1 column.

        Keys use the paper's row labels (the paper's 'FPS' row label is its
        typo for PFS/FSM; we use PFS).
        """
        return {
            "PTS-ours": self.ours.pts,
            "TSM-Eggers": self.eggers.true_sharing,
            "TSM-Torrellas": self.torrellas.true_sharing,
            "COLD-ours": self.ours.cold,
            "COLD-Eggers": self.eggers.cold,
            "COLD-Torrellas": self.torrellas.cold,
            "PFS-ours": self.ours.pfs,
            "PFS-Eggers": self.eggers.false_sharing,
            "PFS-Torrellas": self.torrellas.false_sharing,
        }

    def __add__(self, other: "ClassificationComparison") -> "ClassificationComparison":
        """Merge shard partials of one (trace, block size) comparison.

        All three schemes keep state per block (or per word, and a word
        belongs to one block), so the counts of a block partition sum to
        the whole-trace counts; the identity attributes must agree.
        """
        if not isinstance(other, ClassificationComparison):
            return NotImplemented
        if (self.trace_name != other.trace_name
                or self.block_bytes != other.block_bytes):
            raise ValueError(
                f"cannot merge comparison shards of different cells: "
                f"({self.trace_name}, {self.block_bytes}) vs "
                f"({other.trace_name}, {other.block_bytes})")
        return ClassificationComparison(
            trace_name=self.trace_name,
            block_bytes=self.block_bytes,
            ours=self.ours + other.ours,
            eggers=self.eggers + other.eggers,
            torrellas=self.torrellas + other.torrellas)

    @property
    def essential_rate_gap(self) -> float:
        """Eggers' (CM+TSM) rate minus ours — the misestimation the paper

        highlights in section 7 (LU32: Eggers 1.68% vs ours 2.14%)."""
        return (self.eggers.rate(self.eggers.essential_estimate)
                - self.ours.essential_rate)


def compare_classifications(trace: Trace, block_bytes: int) -> ClassificationComparison:
    """Classify ``trace`` with all three schemes at ``block_bytes``.

    Single pass over the trace; all three classifiers see identical input,
    so the total miss counts of ours and Eggers' agree exactly (both define
    a miss block-wise) while Torrellas' total also agrees (same block-size
    coherence simulation) — asserted by the integration tests.
    """
    block_map = BlockMap(block_bytes)
    ours = DuboisClassifier(trace.num_procs, block_map)
    eggers = EggersClassifier(trace.num_procs, block_map)
    torrellas = TorrellasClassifier(trace.num_procs, block_map)
    if trace.has_columns:
        # Decode and prefilter once (vectorized); all three classifiers
        # share the same data-only rows and precomputed block ids.
        data = trace.columns().data_only()
        procs, ops = data.proc.tolist(), data.op.tolist()
        addrs = data.addr.tolist()
        blocks = data.block_ids(block_map.offset_bits).tolist()
        offsets = data.word_offsets(block_map.words_per_block).tolist()
        ours.feed_data(procs, ops, addrs, blocks)
        eggers.feed_data(procs, ops, addrs, blocks, [1 << o for o in offsets])
        torrellas.feed_data(procs, ops, addrs, blocks)
    else:
        a1, a2, a3 = ours.access, eggers.access, torrellas.access
        for proc, op, addr in trace.events:
            if op == LOAD or op == STORE:
                a1(proc, op, addr)
                a2(proc, op, addr)
                a3(proc, op, addr)
    return ClassificationComparison(
        trace_name=trace.name or "<anonymous>",
        block_bytes=block_bytes,
        ours=ours.finish(),
        eggers=eggers.finish(),
        torrellas=torrellas.finish(),
    )
