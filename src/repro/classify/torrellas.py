"""Torrellas, Lam & Hennessy's miss classification (paper section 3.1).

Rules, quoted from the paper:

* "a cold miss (CM) is detected if the accessed word is referenced for the
  first time by a given processor" — note: the *word*, not the block.
* "A True Sharing Miss (TSM) is detected on a reference which misses in the
  cache, accesses a word accessed before, and misses in a system with a
  block size of one.  All other misses are False Sharing Misses (FSM)."

The scheme therefore runs two coherence simulations side by side: the real
block size (which decides *whether* a reference misses) and an auxiliary
one-word-block system (which decides whether a non-first-touch miss is
TSM).  The paper criticizes it for depending on which word of the block is
touched first after an invalidation (Figure 3), for inflating cold counts
(a word-granular first-touch test counts block-level re-fetches as cold) and
for being meaningful only for iterative programs.
"""

from __future__ import annotations

from typing import Dict

from ..errors import TraceError
from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import SimpleBreakdown


class TorrellasClassifier:
    """Streaming Torrellas/Lam/Hennessy classifier (infinite caches)."""

    def __init__(self, num_procs: int, block_map: BlockMap,
                 *, labels: list = None):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map
        #: Optional per-miss label sink ("CM"/"TSM"/"FSM" in miss order),
        #: used by the per-miss cross-scheme invariant checks.
        self.labels = labels
        self._all_mask = (1 << num_procs) - 1
        # Block-size system: which processors hold a valid copy of a block.
        self._block_valid: Dict[int, int] = {}
        # Word-size auxiliary system: which processors hold a valid copy of
        # each word (block size of one word).
        self._word_valid: Dict[int, int] = {}
        # Which processors have ever referenced each word (first-touch test).
        self._word_referenced: Dict[int, int] = {}
        self._cold = 0
        self._tsm = 0
        self._fsm = 0
        self._data_refs = 0
        self._finished = False

    def access(self, proc: int, op: int, word_addr: int) -> None:
        """Process one data reference."""
        if self._finished:
            raise TraceError("classifier already finished")
        if op != LOAD and op != STORE:
            raise TraceError(f"access expects LOAD/STORE, got op {op}")
        self._access(proc, op, word_addr, self.block_map.block_of(word_addr))

    def feed_data(self, procs, ops, addrs, blocks) -> None:
        """Fast path: consume pre-decoded, pre-filtered data references.

        Equal-length sequences of **LOAD/STORE rows only**, with ``blocks``
        the precomputed block address of each access (vectorized
        ``addr >> shift`` from the columnar trace).
        """
        if self._finished:
            raise TraceError("classifier already finished")
        acc = self._access
        for proc, op, addr, block in zip(procs, ops, addrs, blocks):
            acc(proc, op, addr, block)

    def _access(self, proc: int, op: int, word_addr: int,
                block: int) -> None:
        self._data_refs += 1
        bit = 1 << proc

        block_valid = self._block_valid.get(block, 0)
        word_valid = self._word_valid.get(word_addr, 0)
        word_referenced = self._word_referenced.get(word_addr, 0)

        misses_in_block_system = not block_valid & bit
        misses_in_word_system = not word_valid & bit
        if misses_in_block_system:
            if not word_referenced & bit:
                self._cold += 1
                label = "CM"
            elif misses_in_word_system:
                self._tsm += 1
                label = "TSM"
            else:
                self._fsm += 1
                label = "FSM"
            if self.labels is not None:
                self.labels.append(label)

        # Update both coherence systems and the first-touch record.
        self._word_referenced[word_addr] = word_referenced | bit
        if op == STORE:
            self._block_valid[block] = bit
            self._word_valid[word_addr] = bit
        else:
            self._block_valid[block] = block_valid | bit
            self._word_valid[word_addr] = word_valid | bit

    def event(self, proc: int, op: int, addr: int) -> None:
        """Process any trace event; synchronization events are ignored."""
        if op == LOAD or op == STORE:
            self.access(proc, op, addr)

    def finish(self) -> SimpleBreakdown:
        """Return the CM/TSM/FSM breakdown."""
        if self._finished:
            raise TraceError("classifier already finished")
        self._finished = True
        return SimpleBreakdown(cold=self._cold, true_sharing=self._tsm,
                               false_sharing=self._fsm,
                               data_refs=self._data_refs)

    @classmethod
    def classify_trace(cls, trace: Trace, block_map: BlockMap) -> SimpleBreakdown:
        """Classify a whole trace at one block size."""
        clf = cls(trace.num_procs, block_map)
        if trace.has_columns:
            data = trace.columns().data_only()
            clf.feed_data(data.proc.tolist(), data.op.tolist(),
                          data.addr.tolist(),
                          data.block_ids(block_map.offset_bits).tolist())
        else:
            access = clf.access
            for proc, op, addr in trace.events:
                if op == LOAD or op == STORE:
                    access(proc, op, addr)
        return clf.finish()
