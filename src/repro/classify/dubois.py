"""The paper's essential/useless miss classification (Appendix A).

This is the reference implementation of the core contribution: every miss of
an infinite-cache write-invalidate execution is classified, *at the end of
the lifetime it begins*, into

* **PC** — pure cold,
* **CTS** — cold and true sharing,
* **CFS** — cold and false sharing,
* **PTS** — pure true sharing (essential, not cold),
* **PFS** — pure false sharing (useless).

State (following Appendix A): per (block, processor) a Presence flag ``P``,
an Essential-Miss flag ``EM`` and a First-Reference flag ``FR``; per (word,
processor) a Communication flag ``C``.  We represent each per-processor flag
family as an integer bitmask per block/word, which keeps the inner loop
allocation-free.

Two places in the paper's Pascal-like pseudocode contain obvious typos that
we correct (both are forced by the prose definitions in section 2.0):

* ``classify`` guards with ``(my_block or (i < proc_id))``; a *write* must
  end the lifetimes of all processors *other than the writer*, so the
  condition is ``(my_block or (i <> proc_id))``.
* the C-flag clearing loop indexes ``C[block_ad + block_len*i]``; it must
  iterate over the ``block_len`` words *of the block*, i.e.
  ``C[base_word(block_ad) + i] for i in 0..block_len-1``.

Extension (paper section 2.0, "refine the definition of cold misses"): cold
misses are split into PC/CTS/CFS by snapshotting, at lifetime start, whether
the block had been modified since the start of the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TraceError
from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import DuboisBreakdown, MissClass, MissRecord

# Internal count indices (plain ints keep the hot loop off enum hashing);
# positions match _MISS_CLASSES.
_PC, _CTS, _CFS, _PTS, _PFS = range(5)
_MISS_CLASSES = (MissClass.PC, MissClass.CTS, MissClass.CFS,
                 MissClass.PTS, MissClass.PFS)


class DuboisClassifier:
    """Streaming implementation of the Appendix A algorithm.

    Feed data events with :meth:`access` (sync events may be passed to
    :meth:`event`; they are ignored), then call :meth:`finish` once.

    Parameters
    ----------
    num_procs:
        Processor count of the trace.
    block_map:
        The block-size configuration to classify under.
    record_misses:
        When true, per-miss :class:`MissRecord` objects are kept in
        :attr:`misses` (costs memory; off by default).
    """

    def __init__(self, num_procs: int, block_map: BlockMap,
                 *, record_misses: bool = False):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map
        self.record_misses = record_misses

        self._all_mask = (1 << num_procs) - 1
        # Per-block state list [P, EM, FR-done, dirty-at-fetch, modified,
        # clear-seq-per-proc] (the first four are per-processor bitmasks) —
        # one dict lookup per access instead of one per flag family.
        #
        # The C flags are *virtual*: per word we keep the last two stores by
        # distinct processors as ``(top_proc, top_seq, second_seq)`` where
        # ``second_seq`` is the newest store by any processor other than
        # ``top_proc``; per (block, proc) we keep the sequence number of the
        # processor's last essential access (slot 5 of the state list).  The
        # C flag of word ``w`` for processor ``p`` is then set iff the
        # newest store to ``w`` by a processor other than ``p`` is more
        # recent than ``p``'s last delivery of the block — so setting,
        # testing and block-wide clearing are all O(1), independent of the
        # block size (a per-word clear loop dominates at large blocks).
        self._state: Dict[int, list] = {}
        self._comm: Dict[int, tuple] = {}
        self._seq = 0
        # Lifetime start index per (block, proc), only when recording.
        self._lifetime_start: Dict[int, List[int]] = {}

        self._counts = [0, 0, 0, 0, 0]  # indexed _PC.._PFS
        self._data_refs = 0
        self._finished = False
        #: Per-miss records (populated only when ``record_misses``).
        self.misses: List[MissRecord] = []

    @property
    def data_refs(self) -> int:
        """Data references (loads + stores) consumed so far.

        Public accessor for consumers that adjust the reference count,
        e.g. the sweep engine's no-op read elision, which re-adds elided
        rows so rates stay comparable.
        """
        return self._data_refs

    # ------------------------------------------------------------------
    # event feeding
    # ------------------------------------------------------------------
    def access(self, proc: int, op: int, word_addr: int) -> None:
        """Process one data reference (``op`` is LOAD or STORE)."""
        if self._finished:
            raise TraceError("classifier already finished")
        block = self.block_map.block_of(word_addr)
        if op == LOAD:
            self._data_refs += 1
            self._seq += 1
            self._read_action(proc, word_addr, block)
        elif op == STORE:
            self._data_refs += 1
            self._seq += 1
            self._write_action(proc, word_addr, block)
        else:
            raise TraceError(f"access expects LOAD/STORE, got op {op}")

    def event(self, proc: int, op: int, addr: int) -> None:
        """Process any trace event; synchronization events are ignored."""
        if op == LOAD or op == STORE:
            self.access(proc, op, addr)

    def feed_data(self, procs, ops, addrs, blocks) -> None:
        """Fast path: consume pre-decoded, pre-filtered data references.

        All four arguments are equal-length sequences of plain ints holding
        **only LOAD/STORE rows** (the vectorized data-op prefilter of
        :class:`~repro.trace.columnar.TraceColumns`), with ``blocks`` the
        precomputed block address of each access (``addr >> shift`` done
        once, vectorized, instead of per event here).
        """
        if self._finished:
            raise TraceError("classifier already finished")
        if self.record_misses:
            # Recording needs _data_refs exact at every action (miss records
            # index into it), so take the plain per-event path.
            for proc, op, addr, block in zip(procs, ops, addrs, blocks):
                self._data_refs += 1
                self._seq += 1
                if op == STORE:
                    self._write_action(proc, addr, block)
                else:
                    self._read_action(proc, addr, block)
            return
        read, write = self._read_action, self._write_action
        classify = self._classify_mask
        state, comm = self._state, self._comm
        base = self._data_refs
        seq = self._seq
        n = 0
        for proc, op, addr, block in zip(procs, ops, addrs, blocks):
            n += 1
            seq += 1
            bit = 1 << proc
            st = state.get(block)
            if op == STORE:
                if st is not None and st[0] & bit:
                    e = comm.get(addr)
                    if (e is None
                            or (e[1] if e[0] != proc else e[2]) <= st[5][proc]):
                        # The access part of the store is a no-op (hit, no
                        # pending communication): invalidate + flag inline.
                        others = st[0] & ~bit
                        if others:
                            classify(block, st, others)
                            st[0] = bit
                        if e is None:
                            comm[addr] = (proc, seq, 0)
                        elif e[0] != proc:
                            comm[addr] = (proc, seq, e[1])
                        else:
                            comm[addr] = (proc, seq, e[2])
                        st[4] = True
                        continue
                self._seq = seq
                write(proc, addr, block)
            else:
                if st is not None and st[0] & bit:
                    e = comm.get(addr)
                    if (e is None
                            or (e[1] if e[0] != proc else e[2]) <= st[5][proc]):
                        # Hit with no pending communication: _read_action
                        # would be a no-op, so skip it (the dominant case).
                        continue
                self._seq = seq
                read(proc, addr, block)
        self._data_refs = base + n
        self._seq = seq

    # ------------------------------------------------------------------
    # Appendix A actions
    # ------------------------------------------------------------------
    def _read_action(self, proc: int, word_addr: int, block: int) -> None:
        bit = 1 << proc
        st = self._state.get(block)
        if st is None:
            st = self._state[block] = [0, 0, 0, 0, False,
                                       [0] * self.num_procs]
        if not st[0] & bit:
            # Miss: a new lifetime starts here.
            st[0] |= bit
            st[1] &= ~bit
            if st[4]:
                st[3] |= bit
            else:
                st[3] &= ~bit
            if self.record_misses:
                self._lifetime_start.setdefault(
                    block, [(0, -1)] * self.num_procs)[proc] \
                    = (self._data_refs - 1, word_addr)
        e = self._comm.get(word_addr)
        if (e is not None
                and (e[1] if e[0] != proc else e[2]) > st[5][proc]):
            # The access touches a value defined by another processor since
            # this processor's last essential miss: the lifetime's miss is
            # essential, and all pending communicated values of the block
            # are considered delivered (advancing the clear sequence clears
            # the virtual C flags of every word of the block for ``proc``).
            st[1] |= bit
            st[5][proc] = self._seq

    def _write_action(self, proc: int, word_addr: int, block: int) -> None:
        # A store is also an access (may start a lifetime / detect sharing).
        self._read_action(proc, word_addr, block)
        bit = 1 << proc
        st = self._state[block]  # always present after the read action
        # The store invalidates every other copy: classify those lifetimes.
        others = st[0] & ~bit
        if others:
            self._classify_mask(block, st, others)
            st[0] = bit
        # Flag the new value for all other processors: record this store as
        # the word's newest, demoting the previous newest-by-another-proc.
        e = self._comm.get(word_addr)
        if e is None:
            self._comm[word_addr] = (proc, self._seq, 0)
        elif e[0] != proc:
            self._comm[word_addr] = (proc, self._seq, e[1])
        else:
            self._comm[word_addr] = (proc, self._seq, e[2])
        st[4] = True

    def _classify_mask(self, block: int, st: list, mask: int) -> None:
        """Classify (and end) the lifetimes of every processor in ``mask``."""
        first_done = st[2]
        essential = st[1]
        dirty = st[3]
        counts = self._counts
        m = mask
        while m:
            low = m & -m
            m ^= low
            if not first_done & low:
                # First completed lifetime for this processor: a cold miss,
                # refined by whether it communicated (EM) or fetched a
                # modified-but-unused block (dirty at fetch).
                if essential & low:
                    mclass = _CTS
                elif dirty & low:
                    mclass = _CFS
                else:
                    mclass = _PC
            elif essential & low:
                mclass = _PTS
            else:
                mclass = _PFS
            counts[mclass] += 1
            if self.record_misses:
                proc = low.bit_length() - 1
                start, word = self._lifetime_start.get(
                    block, [(0, -1)] * self.num_procs)[proc]
                self.misses.append(MissRecord(proc=proc, block=block,
                                              start=start, end=self._data_refs,
                                              mclass=_MISS_CLASSES[mclass],
                                              word=word))
        st[2] = first_done | mask

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def finish(self) -> DuboisBreakdown:
        """Classify all still-live lifetimes and return the breakdown."""
        if self._finished:
            raise TraceError("classifier already finished")
        self._finished = True
        for block, st in self._state.items():
            if st[0]:
                self._classify_mask(block, st, st[0])
                st[0] = 0
        c = self._counts
        return DuboisBreakdown(pc=c[_PC], cts=c[_CTS], cfs=c[_CFS],
                               pts=c[_PTS], pfs=c[_PFS],
                               data_refs=self._data_refs)

    # ------------------------------------------------------------------
    # one-shot driver
    # ------------------------------------------------------------------
    @classmethod
    def classify_trace(cls, trace: Trace, block_map: BlockMap,
                       *, record_misses: bool = False,
                       out_records: Optional[list] = None) -> DuboisBreakdown:
        """Classify a whole trace at one block size.

        ``out_records`` (a list), when given together with
        ``record_misses=True``, receives the per-miss records.
        """
        clf = cls(trace.num_procs, block_map, record_misses=record_misses)
        if trace.has_columns:
            # Columnar trace: vectorized data-op prefilter + block ids.
            data = trace.columns().data_only()
            clf.feed_data(data.proc.tolist(), data.op.tolist(),
                          data.addr.tolist(),
                          data.block_ids(block_map.offset_bits).tolist())
        else:
            access = clf.access
            for proc, op, addr in trace.events:
                if op == LOAD or op == STORE:
                    access(proc, op, addr)
        breakdown = clf.finish()
        if out_records is not None:
            out_records.extend(clf.misses)
        return breakdown


def classify(trace: Trace, block_bytes: int, **kwargs) -> DuboisBreakdown:
    """Convenience wrapper: classify ``trace`` at ``block_bytes``."""
    return DuboisClassifier.classify_trace(trace, BlockMap(block_bytes), **kwargs)
