"""The paper's essential/useless miss classification (Appendix A).

This is the reference implementation of the core contribution: every miss of
an infinite-cache write-invalidate execution is classified, *at the end of
the lifetime it begins*, into

* **PC** — pure cold,
* **CTS** — cold and true sharing,
* **CFS** — cold and false sharing,
* **PTS** — pure true sharing (essential, not cold),
* **PFS** — pure false sharing (useless).

State (following Appendix A): per (block, processor) a Presence flag ``P``,
an Essential-Miss flag ``EM`` and a First-Reference flag ``FR``; per (word,
processor) a Communication flag ``C``.  We represent each per-processor flag
family as an integer bitmask per block/word, which keeps the inner loop
allocation-free.

Two places in the paper's Pascal-like pseudocode contain obvious typos that
we correct (both are forced by the prose definitions in section 2.0):

* ``classify`` guards with ``(my_block or (i < proc_id))``; a *write* must
  end the lifetimes of all processors *other than the writer*, so the
  condition is ``(my_block or (i <> proc_id))``.
* the C-flag clearing loop indexes ``C[block_ad + block_len*i]``; it must
  iterate over the ``block_len`` words *of the block*, i.e.
  ``C[base_word(block_ad) + i] for i in 0..block_len-1``.

Extension (paper section 2.0, "refine the definition of cold misses"): cold
misses are split into PC/CTS/CFS by snapshotting, at lifetime start, whether
the block had been modified since the start of the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TraceError
from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import DuboisBreakdown, MissClass, MissRecord


class DuboisClassifier:
    """Streaming implementation of the Appendix A algorithm.

    Feed data events with :meth:`access` (sync events may be passed to
    :meth:`event`; they are ignored), then call :meth:`finish` once.

    Parameters
    ----------
    num_procs:
        Processor count of the trace.
    block_map:
        The block-size configuration to classify under.
    record_misses:
        When true, per-miss :class:`MissRecord` objects are kept in
        :attr:`misses` (costs memory; off by default).
    """

    def __init__(self, num_procs: int, block_map: BlockMap,
                 *, record_misses: bool = False):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map
        self.record_misses = record_misses

        self._all_mask = (1 << num_procs) - 1
        # Bitmask state, keyed by block address (P/EM/FR/dirty-at-fetch)
        # or word address (C).  Missing key == all zeros.
        self._present: Dict[int, int] = {}
        self._essential: Dict[int, int] = {}
        self._first_ref_done: Dict[int, int] = {}
        self._dirty_at_fetch: Dict[int, int] = {}
        self._comm: Dict[int, int] = {}
        self._modified: Dict[int, bool] = {}
        # Lifetime start index per (block, proc), only when recording.
        self._lifetime_start: Dict[int, List[int]] = {}

        self._counts = {MissClass.PC: 0, MissClass.CTS: 0, MissClass.CFS: 0,
                        MissClass.PTS: 0, MissClass.PFS: 0}
        self._data_refs = 0
        self._finished = False
        #: Per-miss records (populated only when ``record_misses``).
        self.misses: List[MissRecord] = []

    # ------------------------------------------------------------------
    # event feeding
    # ------------------------------------------------------------------
    def access(self, proc: int, op: int, word_addr: int) -> None:
        """Process one data reference (``op`` is LOAD or STORE)."""
        if self._finished:
            raise TraceError("classifier already finished")
        if op == LOAD:
            self._data_refs += 1
            self._read_action(proc, word_addr)
        elif op == STORE:
            self._data_refs += 1
            self._write_action(proc, word_addr)
        else:
            raise TraceError(f"access expects LOAD/STORE, got op {op}")

    def event(self, proc: int, op: int, addr: int) -> None:
        """Process any trace event; synchronization events are ignored."""
        if op == LOAD or op == STORE:
            self.access(proc, op, addr)

    # ------------------------------------------------------------------
    # Appendix A actions
    # ------------------------------------------------------------------
    def _read_action(self, proc: int, word_addr: int) -> None:
        block = self.block_map.block_of(word_addr)
        bit = 1 << proc
        present = self._present.get(block, 0)
        if not present & bit:
            # Miss: a new lifetime starts here.
            self._present[block] = present | bit
            self._essential[block] = self._essential.get(block, 0) & ~bit
            if self._modified.get(block, False):
                self._dirty_at_fetch[block] = self._dirty_at_fetch.get(block, 0) | bit
            else:
                self._dirty_at_fetch[block] = self._dirty_at_fetch.get(block, 0) & ~bit
            if self.record_misses:
                self._lifetime_start.setdefault(
                    block, [(0, -1)] * self.num_procs)[proc] \
                    = (self._data_refs - 1, word_addr)
        if self._comm.get(word_addr, 0) & bit:
            # The access touches a value defined by another processor since
            # this processor's last essential miss: the lifetime's miss is
            # essential, and all pending communicated values of the block
            # are considered delivered (clear C for every word).
            self._essential[block] = self._essential.get(block, 0) | bit
            nbit = ~bit
            for w in self.block_map.words_of(block):
                cw = self._comm.get(w, 0)
                if cw & bit:
                    self._comm[w] = cw & nbit

    def _write_action(self, proc: int, word_addr: int) -> None:
        # A store is also an access (may start a lifetime / detect sharing).
        self._read_action(proc, word_addr)
        block = self.block_map.block_of(word_addr)
        bit = 1 << proc
        # The store invalidates every other copy: classify those lifetimes.
        others = self._present.get(block, 0) & ~bit
        if others:
            self._classify_mask(block, others)
            self._present[block] = bit
        # Flag the new value for all other processors.
        self._comm[word_addr] = self._comm.get(word_addr, 0) | (self._all_mask & ~bit)
        self._modified[block] = True

    def _classify_mask(self, block: int, mask: int) -> None:
        """Classify (and end) the lifetimes of every processor in ``mask``."""
        first_done = self._first_ref_done.get(block, 0)
        essential = self._essential.get(block, 0)
        dirty = self._dirty_at_fetch.get(block, 0)
        counts = self._counts
        m = mask
        while m:
            low = m & -m
            m ^= low
            if not first_done & low:
                # First completed lifetime for this processor: a cold miss,
                # refined by whether it communicated (EM) or fetched a
                # modified-but-unused block (dirty at fetch).
                if essential & low:
                    mclass = MissClass.CTS
                elif dirty & low:
                    mclass = MissClass.CFS
                else:
                    mclass = MissClass.PC
            elif essential & low:
                mclass = MissClass.PTS
            else:
                mclass = MissClass.PFS
            counts[mclass] += 1
            if self.record_misses:
                proc = low.bit_length() - 1
                start, word = self._lifetime_start.get(
                    block, [(0, -1)] * self.num_procs)[proc]
                self.misses.append(MissRecord(proc=proc, block=block,
                                              start=start, end=self._data_refs,
                                              mclass=mclass, word=word))
        self._first_ref_done[block] = first_done | mask

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def finish(self) -> DuboisBreakdown:
        """Classify all still-live lifetimes and return the breakdown."""
        if self._finished:
            raise TraceError("classifier already finished")
        self._finished = True
        for block, present in self._present.items():
            if present:
                self._classify_mask(block, present)
                self._present[block] = 0
        c = self._counts
        return DuboisBreakdown(pc=c[MissClass.PC], cts=c[MissClass.CTS],
                               cfs=c[MissClass.CFS], pts=c[MissClass.PTS],
                               pfs=c[MissClass.PFS], data_refs=self._data_refs)

    # ------------------------------------------------------------------
    # one-shot driver
    # ------------------------------------------------------------------
    @classmethod
    def classify_trace(cls, trace: Trace, block_map: BlockMap,
                       *, record_misses: bool = False,
                       out_records: Optional[list] = None) -> DuboisBreakdown:
        """Classify a whole trace at one block size.

        ``out_records`` (a list), when given together with
        ``record_misses=True``, receives the per-miss records.
        """
        clf = cls(trace.num_procs, block_map, record_misses=record_misses)
        access = clf.access
        for proc, op, addr in trace.events:
            if op == LOAD or op == STORE:
                access(proc, op, addr)
        breakdown = clf.finish()
        if out_records is not None:
            out_records.extend(clf.misses)
        return breakdown


def classify(trace: Trace, block_bytes: int, **kwargs) -> DuboisBreakdown:
    """Convenience wrapper: classify ``trace`` at ``block_bytes``."""
    return DuboisClassifier.classify_trace(trace, BlockMap(block_bytes), **kwargs)
