"""Reference transliteration of the Appendix A classification algorithm.

:class:`ReferenceDuboisClassifier` is a direct, unoptimized Python rendering
of the paper's Pascal-like pseudocode (with the two typo corrections noted in
:mod:`repro.classify.dubois`): one dictionary per flag family, the block
address recomputed per access, and the C flags stored as one bitmask per
word — cleared by looping over every word of the block, exactly as the
pseudocode does.

It exists for two reasons:

* **Executable specification.** The production classifier
  (:class:`~repro.classify.dubois.DuboisClassifier`) replaces the per-word
  C-flag masks with an O(1) store-epoch scheme, merges the flag families and
  inlines fast paths.  The differential tests
  (``tests/test_reference.py``) check that it agrees with this
  transliteration event-for-event, so the optimizations can't silently
  change the semantics.
* **Benchmark baseline.** ``benchmarks/bench_throughput.py`` measures the
  sweep engine's end-to-end speedup against the pre-refactor workflow:
  regenerate the trace, then stream events through this classifier once per
  block size.

Keep this module boring: clarity and line-by-line correspondence with the
paper beat speed here.  Do not port optimizations from ``dubois.py`` back
into it.
"""

from __future__ import annotations

from typing import Dict

from ..errors import TraceError
from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import DuboisBreakdown, MissClass


class ReferenceDuboisClassifier:
    """Straight transliteration of Appendix A; see the module docstring."""

    def __init__(self, num_procs: int, block_map: BlockMap):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map

        self._all_mask = (1 << num_procs) - 1
        # Bitmask state, keyed by block address (P/EM/FR/dirty-at-fetch)
        # or word address (C).  Missing key == all zeros.
        self._present: Dict[int, int] = {}
        self._essential: Dict[int, int] = {}
        self._first_ref_done: Dict[int, int] = {}
        self._dirty_at_fetch: Dict[int, int] = {}
        self._comm: Dict[int, int] = {}
        self._modified: Dict[int, bool] = {}

        self._counts = {MissClass.PC: 0, MissClass.CTS: 0, MissClass.CFS: 0,
                        MissClass.PTS: 0, MissClass.PFS: 0}
        self._data_refs = 0
        self._finished = False

    # ------------------------------------------------------------------
    # event feeding
    # ------------------------------------------------------------------
    def access(self, proc: int, op: int, word_addr: int) -> None:
        """Process one data reference (``op`` is LOAD or STORE)."""
        if self._finished:
            raise TraceError("classifier already finished")
        if op == LOAD:
            self._data_refs += 1
            self._read_action(proc, word_addr)
        elif op == STORE:
            self._data_refs += 1
            self._write_action(proc, word_addr)
        else:
            raise TraceError(f"access expects LOAD/STORE, got op {op}")

    def event(self, proc: int, op: int, addr: int) -> None:
        """Process any trace event; synchronization events are ignored."""
        if op == LOAD or op == STORE:
            self.access(proc, op, addr)

    # ------------------------------------------------------------------
    # Appendix A actions
    # ------------------------------------------------------------------
    def _read_action(self, proc: int, word_addr: int) -> None:
        block = self.block_map.block_of(word_addr)
        bit = 1 << proc
        present = self._present.get(block, 0)
        if not present & bit:
            # Miss: a new lifetime starts here.
            self._present[block] = present | bit
            self._essential[block] = self._essential.get(block, 0) & ~bit
            if self._modified.get(block, False):
                self._dirty_at_fetch[block] = \
                    self._dirty_at_fetch.get(block, 0) | bit
            else:
                self._dirty_at_fetch[block] = \
                    self._dirty_at_fetch.get(block, 0) & ~bit
        if self._comm.get(word_addr, 0) & bit:
            # The access touches a value defined by another processor since
            # this processor's last essential miss: the lifetime's miss is
            # essential, and all pending communicated values of the block
            # are considered delivered (clear C for every word).
            self._essential[block] = self._essential.get(block, 0) | bit
            nbit = ~bit
            for w in self.block_map.words_of(block):
                cw = self._comm.get(w, 0)
                if cw & bit:
                    self._comm[w] = cw & nbit

    def _write_action(self, proc: int, word_addr: int) -> None:
        # A store is also an access (may start a lifetime / detect sharing).
        self._read_action(proc, word_addr)
        block = self.block_map.block_of(word_addr)
        bit = 1 << proc
        # The store invalidates every other copy: classify those lifetimes.
        others = self._present.get(block, 0) & ~bit
        if others:
            self._classify_mask(block, others)
            self._present[block] = bit
        # Flag the new value for all other processors.
        self._comm[word_addr] = \
            self._comm.get(word_addr, 0) | (self._all_mask & ~bit)
        self._modified[block] = True

    def _classify_mask(self, block: int, mask: int) -> None:
        """Classify (and end) the lifetimes of every processor in ``mask``."""
        first_done = self._first_ref_done.get(block, 0)
        essential = self._essential.get(block, 0)
        dirty = self._dirty_at_fetch.get(block, 0)
        counts = self._counts
        m = mask
        while m:
            low = m & -m
            m ^= low
            if not first_done & low:
                # First completed lifetime for this processor: a cold miss,
                # refined by whether it communicated (EM) or fetched a
                # modified-but-unused block (dirty at fetch).
                if essential & low:
                    mclass = MissClass.CTS
                elif dirty & low:
                    mclass = MissClass.CFS
                else:
                    mclass = MissClass.PC
            elif essential & low:
                mclass = MissClass.PTS
            else:
                mclass = MissClass.PFS
            counts[mclass] += 1
        self._first_ref_done[block] = first_done | mask

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def finish(self) -> DuboisBreakdown:
        """Classify all still-live lifetimes and return the breakdown."""
        if self._finished:
            raise TraceError("classifier already finished")
        self._finished = True
        for block, present in self._present.items():
            if present:
                self._classify_mask(block, present)
                self._present[block] = 0
        c = self._counts
        return DuboisBreakdown(pc=c[MissClass.PC], cts=c[MissClass.CTS],
                               cfs=c[MissClass.CFS], pts=c[MissClass.PTS],
                               pfs=c[MissClass.PFS],
                               data_refs=self._data_refs)

    # ------------------------------------------------------------------
    # one-shot driver
    # ------------------------------------------------------------------
    @classmethod
    def classify_trace(cls, trace: Trace,
                       block_map: BlockMap) -> DuboisBreakdown:
        """Classify a whole trace at one block size (streaming tuple path)."""
        clf = cls(trace.num_procs, block_map)
        access = clf.access
        for proc, op, addr in trace.events:
            if op == LOAD or op == STORE:
                access(proc, op, addr)
        return clf.finish()
