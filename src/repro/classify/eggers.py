"""Eggers & Jeremiassen's miss classification (paper section 3.2).

Rules, quoted from the paper:

* "A cold miss (CM) occurs at the first reference to a given block by a
  given processor and all following misses to the same block by the same
  processor are classified as invalidation misses."
* "Invalidation misses are then classified as True Sharing Misses (TSM) if
  the word accessed on the miss has been modified since (and including) the
  reference causing the invalidation.  All other invalidation misses are
  classified as False Sharing Misses (FSM)."

Unlike ours, the decision is made *at miss time* from the single word the
missing reference touches — it ignores new values communicated by the miss
but consumed later in the lifetime, which is why it overestimates false
sharing (Figure 3, Table 1).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import TraceError
from ..mem.addresses import BlockMap
from ..trace.events import LOAD, STORE
from ..trace.trace import Trace
from .breakdown import SimpleBreakdown


class EggersClassifier:
    """Streaming Eggers/Jeremiassen classifier (infinite caches).

    State per block: a valid bitmask, an ever-referenced bitmask and, for
    each processor, the mask of word offsets modified since the store that
    invalidated that processor's copy (the TSM test window).
    """

    def __init__(self, num_procs: int, block_map: BlockMap,
                 *, labels: list = None):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map
        #: Optional per-miss label sink ("CM"/"TSM"/"FSM" in miss order),
        #: used by the per-miss cross-scheme invariant checks.
        self.labels = labels
        self._valid: Dict[int, int] = {}
        self._referenced: Dict[int, int] = {}
        # Per block: list of per-processor word-offset masks, modified since
        # the invalidation of that processor's copy.
        self._stale: Dict[int, List[int]] = {}
        self._cold = 0
        self._tsm = 0
        self._fsm = 0
        self._data_refs = 0
        self._finished = False

    def access(self, proc: int, op: int, word_addr: int) -> None:
        """Process one data reference."""
        if self._finished:
            raise TraceError("classifier already finished")
        if op != LOAD and op != STORE:
            raise TraceError(f"access expects LOAD/STORE, got op {op}")
        self._access(proc, op,
                     self.block_map.block_of(word_addr),
                     1 << self.block_map.word_offset(word_addr))

    def feed_data(self, procs, ops, addrs, blocks, offset_bits) -> None:
        """Fast path: consume pre-decoded, pre-filtered data references.

        Equal-length sequences of **LOAD/STORE rows only**, with ``blocks``
        the precomputed block addresses and ``offset_bits`` the precomputed
        ``1 << word_offset`` masks (both derived vectorized from the
        columnar trace; ``addrs`` is accepted for interface symmetry).
        """
        if self._finished:
            raise TraceError("classifier already finished")
        acc = self._access
        for proc, op, block, offset_bit in zip(procs, ops, blocks,
                                               offset_bits):
            acc(proc, op, block, offset_bit)

    def _access(self, proc: int, op: int, block: int,
                offset_bit: int) -> None:
        self._data_refs += 1
        bit = 1 << proc

        referenced = self._referenced.get(block, 0)
        valid = self._valid.get(block, 0)
        stale = self._stale.get(block)
        if not referenced & bit:
            # First reference to the block by this processor: cold miss.
            self._cold += 1
            if self.labels is not None:
                self.labels.append("CM")
            self._referenced[block] = referenced | bit
            valid |= bit
            if stale is not None:
                stale[proc] = 0
        elif not valid & bit:
            # Invalidation miss: TSM iff the accessed word was modified
            # since (and including) the invalidating reference.
            if stale is not None and stale[proc] & offset_bit:
                self._tsm += 1
                if self.labels is not None:
                    self.labels.append("TSM")
            else:
                self._fsm += 1
                if self.labels is not None:
                    self.labels.append("FSM")
            valid |= bit
            if stale is not None:
                stale[proc] = 0
        self._valid[block] = valid

        if op == STORE:
            if stale is None:
                stale = [0] * self.num_procs
                self._stale[block] = stale
            invalidated = valid & ~bit
            for q in range(self.num_procs):
                if q == proc:
                    continue
                qbit = 1 << q
                if invalidated & qbit:
                    # This store is "the reference causing the invalidation"
                    # for q: the window starts here, inclusive.
                    stale[q] = offset_bit
                else:
                    # q's copy is already invalid (or q never fetched): the
                    # word joins q's modified-since-invalidation window.
                    stale[q] |= offset_bit
            self._valid[block] = bit

    def event(self, proc: int, op: int, addr: int) -> None:
        """Process any trace event; synchronization events are ignored."""
        if op == LOAD or op == STORE:
            self.access(proc, op, addr)

    def finish(self) -> SimpleBreakdown:
        """Return the CM/TSM/FSM breakdown (no end-of-trace work needed:

        Eggers classifies at miss time, so live lifetimes add nothing)."""
        if self._finished:
            raise TraceError("classifier already finished")
        self._finished = True
        return SimpleBreakdown(cold=self._cold, true_sharing=self._tsm,
                               false_sharing=self._fsm,
                               data_refs=self._data_refs)

    @classmethod
    def classify_trace(cls, trace: Trace, block_map: BlockMap) -> SimpleBreakdown:
        """Classify a whole trace at one block size."""
        clf = cls(trace.num_procs, block_map)
        if trace.has_columns:
            data = trace.columns().data_only()
            offsets = data.word_offsets(block_map.words_per_block).tolist()
            clf.feed_data(data.proc.tolist(), data.op.tolist(),
                          data.addr.tolist(),
                          data.block_ids(block_map.offset_bits).tolist(),
                          [1 << o for o in offsets])
        else:
            access = clf.access
            for proc, op, addr in trace.events:
                if op == LOAD or op == STORE:
                    access(proc, op, addr)
        return clf.finish()
