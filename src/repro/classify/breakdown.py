"""Result types shared by the three miss classifiers.

Two shapes exist because the paper's three schemes partition misses
differently:

* Ours (Dubois et al.): PC / CTS / CFS / PTS / PFS, where *essential* =
  cold (PC+CTS+CFS) + PTS and *useless* = PFS.  :class:`DuboisBreakdown`.
* Eggers and Torrellas: cold (CM) / true sharing (TSM) / false sharing
  (FSM).  :class:`SimpleBreakdown`.

Both carry the number of data references so miss *rates* (the unit of the
paper's Figures 5 and 6) can be derived without re-walking the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MissClass(Enum):
    """Miss classes of the paper's classification (section 2.0)."""

    PC = "PC"      #: pure cold: block never modified before the miss
    CTS = "CTS"    #: cold + true sharing: cold miss that communicates values
    CFS = "CFS"    #: cold + false sharing: cold miss on a dirty block, unused
    PTS = "PTS"    #: pure true sharing (essential, not cold)
    PFS = "PFS"    #: pure false sharing (useless)

    @property
    def is_cold(self) -> bool:
        return self in (MissClass.PC, MissClass.CTS, MissClass.CFS)

    @property
    def is_essential(self) -> bool:
        """Cold and PTS misses are essential; only PFS is useless."""
        return self is not MissClass.PFS


@dataclass(frozen=True)
class MissRecord:
    """One classified miss (optional per-miss output of the classifiers)."""

    proc: int
    block: int
    #: Index (into the data-event sequence) of the access that missed.
    start: int
    #: Index of the event that ended the lifetime (invalidating store or,
    #: for lifetimes alive at the end, ``end == total_events``).
    end: int
    mclass: MissClass
    #: Word address of the access that missed (-1 when not recorded);
    #: used to attribute misses to data structures.
    word: int = -1


@dataclass(frozen=True)
class DuboisBreakdown:
    """Five-way miss decomposition of our classification.

    All counts are misses over the whole trace at one block size.
    """

    pc: int
    cts: int
    cfs: int
    pts: int
    pfs: int
    #: Number of data references (loads+stores) in the classified trace.
    data_refs: int

    # -- aggregates ----------------------------------------------------
    @property
    def cold(self) -> int:
        """All cold misses (PC + CTS + CFS)."""
        return self.pc + self.cts + self.cfs

    @property
    def essential(self) -> int:
        """The minimum misses for a correct execution: cold + PTS."""
        return self.cold + self.pts

    @property
    def useless(self) -> int:
        """Misses that could be eliminated: PFS."""
        return self.pfs

    @property
    def total(self) -> int:
        return self.essential + self.useless

    # -- rates (percent, as plotted in Figures 5/6) --------------------
    def rate(self, count: int) -> float:
        """A count as a percentage of data references."""
        return 100.0 * count / self.data_refs if self.data_refs else 0.0

    @property
    def miss_rate(self) -> float:
        return self.rate(self.total)

    @property
    def essential_rate(self) -> float:
        return self.rate(self.essential)

    def count(self, mclass: MissClass) -> int:
        """Count for one :class:`MissClass`."""
        return {MissClass.PC: self.pc, MissClass.CTS: self.cts,
                MissClass.CFS: self.cfs, MissClass.PTS: self.pts,
                MissClass.PFS: self.pfs}[mclass]

    def as_dict(self) -> dict:
        return {"PC": self.pc, "CTS": self.cts, "CFS": self.cfs,
                "PTS": self.pts, "PFS": self.pfs,
                "data_refs": self.data_refs}

    def __add__(self, other: "DuboisBreakdown") -> "DuboisBreakdown":
        if not isinstance(other, DuboisBreakdown):
            return NotImplemented
        return DuboisBreakdown(self.pc + other.pc, self.cts + other.cts,
                               self.cfs + other.cfs, self.pts + other.pts,
                               self.pfs + other.pfs,
                               self.data_refs + other.data_refs)

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (f"refs={self.data_refs} misses={self.total} "
                f"(rate {self.miss_rate:.2f}%) | cold={self.cold} "
                f"[PC={self.pc} CTS={self.cts} CFS={self.cfs}] "
                f"PTS={self.pts} PFS={self.pfs} | essential={self.essential} "
                f"({self.essential_rate:.2f}%) useless={self.useless}")


@dataclass(frozen=True)
class SimpleBreakdown:
    """Three-way decomposition used by the Eggers and Torrellas schemes."""

    cold: int
    true_sharing: int
    false_sharing: int
    data_refs: int

    @property
    def total(self) -> int:
        return self.cold + self.true_sharing + self.false_sharing

    @property
    def essential_estimate(self) -> int:
        """What these schemes would call essential (CM + TSM)."""
        return self.cold + self.true_sharing

    def rate(self, count: int) -> float:
        return 100.0 * count / self.data_refs if self.data_refs else 0.0

    @property
    def miss_rate(self) -> float:
        return self.rate(self.total)

    def as_dict(self) -> dict:
        return {"CM": self.cold, "TSM": self.true_sharing,
                "FSM": self.false_sharing, "data_refs": self.data_refs}

    def __add__(self, other: "SimpleBreakdown") -> "SimpleBreakdown":
        """Merge shard partials: every count is a per-block sum."""
        if not isinstance(other, SimpleBreakdown):
            return NotImplemented
        return SimpleBreakdown(self.cold + other.cold,
                               self.true_sharing + other.true_sharing,
                               self.false_sharing + other.false_sharing,
                               self.data_refs + other.data_refs)

    def describe(self) -> str:
        return (f"refs={self.data_refs} misses={self.total} "
                f"(rate {self.miss_rate:.2f}%) | CM={self.cold} "
                f"TSM={self.true_sharing} FSM={self.false_sharing}")
