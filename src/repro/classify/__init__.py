"""Miss classification: the paper's essential/useless scheme and the two

prior schemes it is compared against (Eggers, Torrellas)."""

from .breakdown import (
    DuboisBreakdown,
    MissClass,
    MissRecord,
    SimpleBreakdown,
)
from .compare import ClassificationComparison, compare_classifications
from .dubois import DuboisClassifier, classify
from .eggers import EggersClassifier
from .reference import ReferenceDuboisClassifier
from .torrellas import TorrellasClassifier

__all__ = [
    "ClassificationComparison",
    "DuboisBreakdown",
    "DuboisClassifier",
    "EggersClassifier",
    "MissClass",
    "MissRecord",
    "ReferenceDuboisClassifier",
    "SimpleBreakdown",
    "TorrellasClassifier",
    "classify",
    "compare_classifications",
]
