"""Structured telemetry recorder: spans, metrics, events and logs as JSONL.

The :class:`Recorder` is the single write path of the observability layer
(:mod:`repro.obs`): every instrumented site in the engine, supervisor,
trace cache and checkpoint journal asks :func:`get_recorder` for the
process-current recorder and emits through it.  When no run is being
recorded the current recorder is the :data:`NULL_RECORDER`, whose every
method is a no-op — instrumentation costs a global read and a method
call, nothing else, which is what keeps the telemetry overhead budget
(< 3 % end to end, see ``benchmarks/bench_throughput.py``).

Record shapes (all one JSON object per line, schema-checked against
``telemetry.schema.json``):

* **span** — a timed operation: ``{"kind": "span", "name": "cell.run",
  "t": <wall start>, "dur_s": ..., "status": "ok"|"error", "attrs": {...}}``.
  Durations come from ``time.monotonic()``; ``t`` is the wall-clock start
  for cross-process ordering.
* **metric** — a named measurement: ``{"kind": "metric", "name":
  "cell.events_per_sec", "value": ..., "unit": ..., "attrs": {...}}``.
* **event** — a point-in-time occurrence: ``{"kind": "event", "name":
  "task.retry", "level": "warning", "attrs": {...}}``.
* **log** — a stdlib logging record bridged into the stream via
  :class:`TelemetryLogHandler`.

Workers do not write files: a forked worker swaps in a *buffering*
recorder (:meth:`Recorder.buffering`) whose records are drained and
shipped back over the supervisor's existing reply pipe, then merged into
the parent stream by :meth:`Recorder.ingest` — sharded and degraded runs
therefore produce one coherent timeline in one ``events.jsonl``.

**Tracing.** Once :meth:`Recorder.set_trace_context` installs a trace
id, every span record is additionally stamped with ``trace_id``, a fresh
``span_id`` and the ``parent_id`` of the innermost open span (or the
ambient parent a worker inherited from its assign message); events and
metrics carry ``trace_id``/``parent_id`` so they attach to the span that
emitted them.  :func:`trace_context` captures the current position for a
dispatch message and :func:`apply_trace_context` installs it around one
task in a worker, which is how supervisor, forked workers and TCP remote
runners emit one causal span tree per sweep
(see :mod:`repro.obs.tracing`).
"""

from __future__ import annotations

import contextlib
import itertools
import json
import logging
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Version stamped into every record (and checked by the schema).
#: Trace ids (``trace_id``/``span_id``/``parent_id``) are *optional*
#: additive fields and did not bump it — see DESIGN.md, "telemetry
#: schema versioning".
SCHEMA_VERSION = 1


def new_span_id() -> str:
    """A fresh 64-bit hex span id (collision-safe across processes)."""
    return os.urandom(8).hex()


def _json_default(obj: Any) -> Any:
    """Last-resort JSON coercion so telemetry never crashes a sweep."""
    try:
        import numpy as np

        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    return repr(obj)


class _NullSpan:
    """The do-nothing span of the :data:`NULL_RECORDER`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attributes (the run is not being recorded)."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder installed while no run is being recorded.

    Mirrors the full :class:`Recorder` surface so instrumented code never
    branches on "is telemetry on" — it just emits.
    """

    active = False
    trace_id = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def set_trace_context(self, trace_id, parent_id=None) -> None:
        pass

    def current_span_id(self):
        return None

    def span_complete(self, name: str, dur_s: float, *,
                      status: str = "ok", t: Optional[float] = None,
                      **attrs) -> None:
        pass

    def metric(self, name: str, value, unit: Optional[str] = None,
               **attrs) -> None:
        pass

    def event(self, name: str, *, level: str = "info", **attrs) -> None:
        pass

    def log(self, level: str, logger: str, message: str) -> None:
        pass

    def ingest(self, records: Iterable[dict]) -> None:
        pass

    def drain(self) -> List[dict]:
        return []

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide no-op recorder (a singleton; never close it).
NULL_RECORDER = NullRecorder()

_current: Any = NULL_RECORDER


def get_recorder():
    """The recorder instrumented code should emit through right now."""
    return _current


def set_recorder(recorder) -> Any:
    """Install ``recorder`` (or the null recorder for ``None``) globally."""
    global _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return _current


@contextlib.contextmanager
def use_recorder(recorder):
    """Scope ``recorder`` as the current one, restoring the previous."""
    previous = _current
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def trace_context() -> Optional[dict]:
    """The current trace position, as a dict a dispatch message can carry.

    ``None`` when telemetry is off or no trace is active, so legacy
    messages keep their exact shape in the common no-telemetry case.
    """
    rec = get_recorder()
    if not rec.active or rec.trace_id is None:
        return None
    ctx = {"trace_id": rec.trace_id}
    parent = rec.current_span_id()
    if parent is not None:
        ctx["parent_id"] = parent
    return ctx


@contextlib.contextmanager
def apply_trace_context(ctx: Optional[dict]):
    """Scope a dispatched trace context around one worker task.

    Installs the ``trace_id``/``parent_id`` from an assign message on
    the current (buffering) recorder so the task's spans join the
    supervisor's tree, then restores whatever was there before.
    """
    rec = get_recorder()
    if not ctx or not rec.active:
        yield
        return
    previous = (rec.trace_id, rec._ambient_parent)
    rec.set_trace_context(ctx.get("trace_id"), ctx.get("parent_id"))
    try:
        yield
    finally:
        rec.trace_id, rec._ambient_parent = previous


class _Span:
    """A timed region; emits one ``span`` record when the ``with`` exits.

    The span emits on exceptions too (``status="error"``), so a failed
    cell still leaves its timing in the stream; attempt bookkeeping is
    the supervisor's job, not the span's.
    """

    __slots__ = ("_recorder", "name", "attrs", "_t0", "_wall", "span_id")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._t0 = time.monotonic()
        # Open spans form a stack: records emitted while this span is
        # open (child spans, events, metrics) are parented on it.
        self.span_id = self._recorder._push_span()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.monotonic() - self._t0
        self._recorder._pop_span(self.span_id)
        # After the pop, current_span_id() is this span's own parent.
        self._recorder.span_complete(
            self.name, dur, status="ok" if exc_type is None else "error",
            t=self._wall, span_id=self.span_id, **self.attrs)
        return False


class Recorder:
    """Append-only JSONL sink for one run's telemetry records.

    Parameters
    ----------
    path:
        The ``events.jsonl`` file to append to.  ``None`` buffers records
        in memory instead (the worker-side child mode; see :meth:`drain`).

    Listeners registered with :meth:`add_listener` observe every record
    as it is emitted (including worker records merged via
    :meth:`ingest`) — this is how the live progress line and the manifest
    builder stay current without re-reading the file.
    """

    active = True

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._fh = None
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._buffer: Optional[List[dict]] = [] if path is None else None
        self._listeners: List[Callable[[dict], None]] = []
        #: Trace identity; ``None`` until :meth:`set_trace_context` — no
        #: stamping happens before that, so pre-tracing record shapes
        #: are reproduced exactly.
        self.trace_id: Optional[str] = None
        #: Parent inherited from a dispatch message (worker mode); open
        #: spans in this process shadow it via the stack.
        self._ambient_parent: Optional[str] = None
        self._span_stack: List[str] = []

    @classmethod
    def buffering(cls) -> "Recorder":
        """A child recorder that buffers records for :meth:`drain`."""
        return cls(path=None)

    # ------------------------------------------------------------------
    # trace context (span-id threading)
    # ------------------------------------------------------------------
    def set_trace_context(self, trace_id: Optional[str],
                          parent_id: Optional[str] = None) -> None:
        """Install the trace identity (and an inherited parent span).

        The run owner calls this with its run id; workers call it (via
        :func:`apply_trace_context`) with the ``trace_id``/``parent_id``
        that rode their assign message.
        """
        self.trace_id = trace_id
        self._ambient_parent = parent_id

    def current_span_id(self) -> Optional[str]:
        """The innermost open span (or the inherited ambient parent)."""
        if self._span_stack:
            return self._span_stack[-1]
        return self._ambient_parent

    def _push_span(self) -> str:
        span_id = new_span_id()
        self._span_stack.append(span_id)
        return span_id

    def _pop_span(self, span_id: Optional[str]) -> None:
        if span_id is not None and span_id in self._span_stack:
            self._span_stack.remove(span_id)

    def _stamp(self, record: dict, *,
               span_id: Optional[str] = None,
               parent_id: Optional[str] = None) -> dict:
        """Attach trace ids to one record (no-op until a trace is set)."""
        if self.trace_id is None:
            return record
        record["trace_id"] = self.trace_id
        if span_id is not None:
            record["span_id"] = span_id
        parent = parent_id if parent_id is not None else self.current_span_id()
        if parent is not None:
            record["parent_id"] = parent
        return record

    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[dict], None]) -> None:
        self._listeners.append(listener)

    def _write(self, record: dict) -> None:
        if self._buffer is not None:
            self._buffer.append(record)
            return
        if self._fh is None:
            directory = os.path.dirname(self._path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self._path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True,
                                  default=_json_default) + "\n")
        self._fh.flush()

    def _emit(self, record: dict) -> None:
        record.setdefault("v", SCHEMA_VERSION)
        record.setdefault("t", time.time())
        record.setdefault("pid", os.getpid())
        with self._lock:
            record["seq"] = next(self._seq)
            self._write(record)
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:  # pragma: no cover - listeners never fatal
                logging.getLogger(__name__).exception(
                    "telemetry listener failed")

    # ------------------------------------------------------------------
    # the four record kinds
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing one operation as a ``span`` record."""
        return _Span(self, name, attrs)

    def span_complete(self, name: str, dur_s: float, *,
                      status: str = "ok", t: Optional[float] = None,
                      span_id: Optional[str] = None,
                      parent_id: Optional[str] = None, **attrs) -> None:
        """Emit a span measured externally (or synthesized at merge)."""
        record = {"kind": "span", "name": name,
                  "dur_s": round(float(dur_s), 6), "status": status,
                  "attrs": attrs}
        if t is not None:
            record["t"] = t
        if self.trace_id is not None:
            self._stamp(record, span_id=span_id or new_span_id(),
                        parent_id=parent_id)
        self._emit(record)

    def metric(self, name: str, value, unit: Optional[str] = None,
               **attrs) -> None:
        record = {"kind": "metric", "name": name, "value": value,
                  "attrs": attrs}
        if unit is not None:
            record["unit"] = unit
        self._emit(self._stamp(record))

    def event(self, name: str, *, level: str = "info", **attrs) -> None:
        self._emit(self._stamp({"kind": "event", "name": name,
                                "level": level, "attrs": attrs}))

    def log(self, level: str, logger: str, message: str) -> None:
        self._emit({"kind": "log", "level": level, "logger": logger,
                    "message": message})

    # ------------------------------------------------------------------
    # cross-process merge (the supervisor reply channel)
    # ------------------------------------------------------------------
    def drain(self) -> List[dict]:
        """Take the buffered records (child mode); empties the buffer."""
        if self._buffer is None:
            return []
        with self._lock:
            records, self._buffer = self._buffer, []
        return records

    def ingest(self, records: Iterable[dict]) -> None:
        """Merge records shipped back from a worker into this stream.

        The worker's wall time and pid are preserved (that is the
        timeline); the parent re-assigns ``seq`` so the merged stream has
        a single total order.
        """
        for record in records:
            if not isinstance(record, dict):
                continue
            record = dict(record)
            record.pop("seq", None)
            self._emit(record)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TelemetryLogHandler(logging.Handler):
    """Bridge stdlib logging records into the telemetry stream.

    Attached to the ``repro`` logger while a run is recorded, so every
    ``logger.warning(...)`` (supervisor retries, resource-governor
    degradations, cache quarantines) lands in ``events.jsonl`` as a
    ``log`` record alongside the spans it explains.
    """

    def __init__(self, recorder: Recorder, level: int = logging.INFO):
        super().__init__(level)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._recorder.log(record.levelname.lower(), record.name,
                               record.getMessage())
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)
