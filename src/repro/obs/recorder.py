"""Structured telemetry recorder: spans, metrics, events and logs as JSONL.

The :class:`Recorder` is the single write path of the observability layer
(:mod:`repro.obs`): every instrumented site in the engine, supervisor,
trace cache and checkpoint journal asks :func:`get_recorder` for the
process-current recorder and emits through it.  When no run is being
recorded the current recorder is the :data:`NULL_RECORDER`, whose every
method is a no-op — instrumentation costs a global read and a method
call, nothing else, which is what keeps the telemetry overhead budget
(< 3 % end to end, see ``benchmarks/bench_throughput.py``).

Record shapes (all one JSON object per line, schema-checked against
``telemetry.schema.json``):

* **span** — a timed operation: ``{"kind": "span", "name": "cell.run",
  "t": <wall start>, "dur_s": ..., "status": "ok"|"error", "attrs": {...}}``.
  Durations come from ``time.monotonic()``; ``t`` is the wall-clock start
  for cross-process ordering.
* **metric** — a named measurement: ``{"kind": "metric", "name":
  "cell.events_per_sec", "value": ..., "unit": ..., "attrs": {...}}``.
* **event** — a point-in-time occurrence: ``{"kind": "event", "name":
  "task.retry", "level": "warning", "attrs": {...}}``.
* **log** — a stdlib logging record bridged into the stream via
  :class:`TelemetryLogHandler`.

Workers do not write files: a forked worker swaps in a *buffering*
recorder (:meth:`Recorder.buffering`) whose records are drained and
shipped back over the supervisor's existing reply pipe, then merged into
the parent stream by :meth:`Recorder.ingest` — sharded and degraded runs
therefore produce one coherent timeline in one ``events.jsonl``.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import logging
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Version stamped into every record (and checked by the schema).
SCHEMA_VERSION = 1


def _json_default(obj: Any) -> Any:
    """Last-resort JSON coercion so telemetry never crashes a sweep."""
    try:
        import numpy as np

        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    return repr(obj)


class _NullSpan:
    """The do-nothing span of the :data:`NULL_RECORDER`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attributes (the run is not being recorded)."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder installed while no run is being recorded.

    Mirrors the full :class:`Recorder` surface so instrumented code never
    branches on "is telemetry on" — it just emits.
    """

    active = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def span_complete(self, name: str, dur_s: float, *,
                      status: str = "ok", t: Optional[float] = None,
                      **attrs) -> None:
        pass

    def metric(self, name: str, value, unit: Optional[str] = None,
               **attrs) -> None:
        pass

    def event(self, name: str, *, level: str = "info", **attrs) -> None:
        pass

    def log(self, level: str, logger: str, message: str) -> None:
        pass

    def ingest(self, records: Iterable[dict]) -> None:
        pass

    def drain(self) -> List[dict]:
        return []

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide no-op recorder (a singleton; never close it).
NULL_RECORDER = NullRecorder()

_current: Any = NULL_RECORDER


def get_recorder():
    """The recorder instrumented code should emit through right now."""
    return _current


def set_recorder(recorder) -> Any:
    """Install ``recorder`` (or the null recorder for ``None``) globally."""
    global _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return _current


@contextlib.contextmanager
def use_recorder(recorder):
    """Scope ``recorder`` as the current one, restoring the previous."""
    previous = _current
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


class _Span:
    """A timed region; emits one ``span`` record when the ``with`` exits.

    The span emits on exceptions too (``status="error"``), so a failed
    cell still leaves its timing in the stream; attempt bookkeeping is
    the supervisor's job, not the span's.
    """

    __slots__ = ("_recorder", "name", "attrs", "_t0", "_wall")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._t0 = time.monotonic()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.monotonic() - self._t0
        self._recorder.span_complete(
            self.name, dur, status="ok" if exc_type is None else "error",
            t=self._wall, **self.attrs)
        return False


class Recorder:
    """Append-only JSONL sink for one run's telemetry records.

    Parameters
    ----------
    path:
        The ``events.jsonl`` file to append to.  ``None`` buffers records
        in memory instead (the worker-side child mode; see :meth:`drain`).

    Listeners registered with :meth:`add_listener` observe every record
    as it is emitted (including worker records merged via
    :meth:`ingest`) — this is how the live progress line and the manifest
    builder stay current without re-reading the file.
    """

    active = True

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._fh = None
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._buffer: Optional[List[dict]] = [] if path is None else None
        self._listeners: List[Callable[[dict], None]] = []

    @classmethod
    def buffering(cls) -> "Recorder":
        """A child recorder that buffers records for :meth:`drain`."""
        return cls(path=None)

    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[dict], None]) -> None:
        self._listeners.append(listener)

    def _write(self, record: dict) -> None:
        if self._buffer is not None:
            self._buffer.append(record)
            return
        if self._fh is None:
            directory = os.path.dirname(self._path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self._path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True,
                                  default=_json_default) + "\n")
        self._fh.flush()

    def _emit(self, record: dict) -> None:
        record.setdefault("v", SCHEMA_VERSION)
        record.setdefault("t", time.time())
        record.setdefault("pid", os.getpid())
        with self._lock:
            record["seq"] = next(self._seq)
            self._write(record)
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:  # pragma: no cover - listeners never fatal
                logging.getLogger(__name__).exception(
                    "telemetry listener failed")

    # ------------------------------------------------------------------
    # the four record kinds
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing one operation as a ``span`` record."""
        return _Span(self, name, attrs)

    def span_complete(self, name: str, dur_s: float, *,
                      status: str = "ok", t: Optional[float] = None,
                      **attrs) -> None:
        """Emit a span measured externally (or synthesized at merge)."""
        record = {"kind": "span", "name": name,
                  "dur_s": round(float(dur_s), 6), "status": status,
                  "attrs": attrs}
        if t is not None:
            record["t"] = t
        self._emit(record)

    def metric(self, name: str, value, unit: Optional[str] = None,
               **attrs) -> None:
        record = {"kind": "metric", "name": name, "value": value,
                  "attrs": attrs}
        if unit is not None:
            record["unit"] = unit
        self._emit(record)

    def event(self, name: str, *, level: str = "info", **attrs) -> None:
        self._emit({"kind": "event", "name": name, "level": level,
                    "attrs": attrs})

    def log(self, level: str, logger: str, message: str) -> None:
        self._emit({"kind": "log", "level": level, "logger": logger,
                    "message": message})

    # ------------------------------------------------------------------
    # cross-process merge (the supervisor reply channel)
    # ------------------------------------------------------------------
    def drain(self) -> List[dict]:
        """Take the buffered records (child mode); empties the buffer."""
        if self._buffer is None:
            return []
        with self._lock:
            records, self._buffer = self._buffer, []
        return records

    def ingest(self, records: Iterable[dict]) -> None:
        """Merge records shipped back from a worker into this stream.

        The worker's wall time and pid are preserved (that is the
        timeline); the parent re-assigns ``seq`` so the merged stream has
        a single total order.
        """
        for record in records:
            if not isinstance(record, dict):
                continue
            record = dict(record)
            record.pop("seq", None)
            self._emit(record)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TelemetryLogHandler(logging.Handler):
    """Bridge stdlib logging records into the telemetry stream.

    Attached to the ``repro`` logger while a run is recorded, so every
    ``logger.warning(...)`` (supervisor retries, resource-governor
    degradations, cache quarantines) lands in ``events.jsonl`` as a
    ``log`` record alongside the spans it explains.
    """

    def __init__(self, recorder: Recorder, level: int = logging.INFO):
        super().__init__(level)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._recorder.log(record.levelname.lower(), record.name,
                               record.getMessage())
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)
