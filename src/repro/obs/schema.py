"""Validation of telemetry records against the checked-in JSON schema.

The contract for every line of a run's ``events.jsonl`` lives in
``telemetry.schema.json`` next to this module — a reviewed, checked-in
artifact, so adding a new span/metric/event name is a visible schema
change, not a silent drift.  Validation itself is a small zero-dependency
interpreter of the JSON-Schema subset the contract uses (``type``,
``enum``, ``required``, ``properties``, ``additionalProperties``,
``oneOf``, ``$ref`` into ``definitions``, ``minimum``, ``minLength``,
``items``): the
container deliberately has no ``jsonschema`` package, and the subset is
tiny enough that a faithful interpreter is less code than a vendored
validator.

``validate_record`` raises :class:`TelemetrySchemaError` naming the JSON
path of the first violation; ``validate_stream`` checks a whole
``events.jsonl``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ReproError

#: Path of the checked-in schema (ships inside the package).
SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "telemetry.schema.json")

_schema_cache: Optional[dict] = None


class TelemetrySchemaError(ReproError):
    """A telemetry record does not conform to the checked-in schema."""


def load_schema() -> dict:
    """The parsed ``telemetry.schema.json`` (cached per process)."""
    global _schema_cache
    if _schema_cache is None:
        with open(SCHEMA_PATH, "r", encoding="utf-8") as fh:
            _schema_cache = json.load(fh)
    return _schema_cache


# ----------------------------------------------------------------------
# the mini validator
# ----------------------------------------------------------------------
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise TelemetrySchemaError(f"unsupported $ref {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        try:
            node = node[part]
        except (KeyError, TypeError):
            raise TelemetrySchemaError(f"dangling $ref {ref!r}") from None
    return node


def _check(value: Any, schema: dict, root: dict, path: str,
           errors: List[str]) -> None:
    if "$ref" in schema:
        _check(value, _resolve_ref(schema["$ref"], root), root, path, errors)
        return
    if "oneOf" in schema:
        branch_errors: List[List[str]] = []
        for branch in schema["oneOf"]:
            attempt: List[str] = []
            _check(value, branch, root, path, attempt)
            if not attempt:
                return
            branch_errors.append(attempt)
        summary = "; ".join(be[0] for be in branch_errors)
        errors.append(f"{path}: matched no oneOf branch ({summary})")
        return
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(f"{path}: expected type {expected}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str) \
            and len(value) < schema["minLength"]:
        errors.append(f"{path}: length {len(value)} below minLength "
                      f"{schema['minLength']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in value:
                _check(value[name], sub, root, f"{path}.{name}", errors)
        if schema.get("additionalProperties") is False:
            for name in value:
                if name not in properties:
                    errors.append(f"{path}: unexpected property {name!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], root, f"{path}[{i}]", errors)


def validate_record(record: dict, schema: Optional[dict] = None) -> None:
    """Validate one telemetry record; raises :class:`TelemetrySchemaError`."""
    schema = schema if schema is not None else load_schema()
    errors: List[str] = []
    _check(record, schema, schema, "$", errors)
    if errors:
        raise TelemetrySchemaError(
            f"telemetry record invalid: {errors[0]}"
            + (f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""))


def iter_records(path: str) -> Iterator[Tuple[int, dict]]:
    """Yield ``(line_number, record)`` from an ``events.jsonl`` file.

    A torn final line (the process was killed mid-write) is skipped, the
    same tolerance the checkpoint journal extends to its own tail.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError:
                continue


def validate_stream(path: str) -> int:
    """Validate every record of an ``events.jsonl``; returns the count."""
    schema = load_schema()
    count = 0
    for lineno, record in iter_records(path):
        try:
            validate_record(record, schema)
        except TelemetrySchemaError as exc:
            raise TelemetrySchemaError(
                f"{path}:{lineno}: {exc}") from None
        count += 1
    return count


def summarize_kinds(path: str) -> Dict[str, int]:
    """Record count per ``kind`` (handy for smoke checks and tests)."""
    counts: Dict[str, int] = {}
    for _, record in iter_records(path):
        kind = record.get("kind", "<missing>")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
