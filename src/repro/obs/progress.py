"""Live stderr progress line for sweep runs.

The :class:`ProgressLine` is a telemetry *listener*: it subscribes to the
run's :class:`~repro.obs.recorder.Recorder` and folds the task lifecycle
events the supervisor emits (``task.assigned`` / ``task.done`` /
``task.failed``) plus the ``cell.run``/``shard.run`` spans into one
refreshing status line::

    [repro] 12/28 tasks · 4 running · 0 failed · 1.2M ev/s · ETA 34s

* On a TTY the line redraws in place (carriage return + erase), at most
  every ``min_interval`` seconds.
* On a **non-TTY** stream (CI logs, ``2>file``) it prints a full line at
  most every ``non_tty_interval`` seconds plus a final summary, so batch
  logs stay readable while still showing liveness — the CI smoke test
  asserts exactly this mode.

Throughput is a decay-weighted EMA of the per-span events/second, and the
ETA scales the EMA task duration by the remaining task count over the
observed concurrency.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

#: EMA smoothing factor for throughput / duration estimates.
EMA_ALPHA = 0.3


def format_rate(events_per_sec: float) -> str:
    """Human events/s: ``"875k ev/s"``, ``"1.2M ev/s"``."""
    if events_per_sec >= 1e6:
        return f"{events_per_sec / 1e6:.1f}M ev/s"
    if events_per_sec >= 1e3:
        return f"{events_per_sec / 1e3:.0f}k ev/s"
    return f"{events_per_sec:.0f} ev/s"


def format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressLine:
    """Render task progress to ``stream`` from telemetry records."""

    def __init__(self, stream=None, *, min_interval: float = 0.1,
                 non_tty_interval: float = 5.0, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.non_tty_interval = non_tty_interval
        self.enabled = enabled
        try:
            self.isatty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self.isatty = False
        self.total = 0
        self.done = 0
        self.running = 0
        self.failed_attempts = 0
        self.resumed = 0
        self.interrupting = False
        self.last_heartbeat: Optional[float] = None
        self._ema_rate: Optional[float] = None
        self._ema_dur: Optional[float] = None
        self._max_running = 1
        self._last_render = 0.0
        self._line_open = False
        self._last_text: Optional[str] = None

    # ------------------------------------------------------------------
    # the recorder listener
    # ------------------------------------------------------------------
    def __call__(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "event":
            self._on_event(record)
        elif kind == "span":
            self._on_span(record)
        elif kind == "metric" and record.get("name") == "worker.heartbeat":
            # Liveness only — no redraw per beat, just remember we saw it
            # so the status line can show that workers are alive.
            self.last_heartbeat = time.monotonic()

    def _on_event(self, record: dict) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "rung.start":
            # Each ladder rung re-plans the task list; the live total is
            # what this rung still has to run plus what is already done.
            self.total = self.done + int(attrs.get("tasks", 0))
            self.running = 0
        elif name == "task.assigned":
            self.running += 1
            self._max_running = max(self._max_running, self.running)
        elif name == "task.done":
            self.running = max(0, self.running - 1)
            self.done += 1
        elif name == "task.failed":
            self.running = max(0, self.running - 1)
            self.failed_attempts += 1
        elif name == "cell.resumed":
            self.resumed += 1
            return  # resumed cells are not part of the live task count
        elif name == "shutdown.requested":
            self.interrupting = True
            self._render(force=True)
            return
        elif name in ("sweep.finish", "run.finish"):
            self.finish()
            return
        else:
            return
        self._render()

    def _on_span(self, record: dict) -> None:
        if record.get("name") not in ("cell.run", "shard.run"):
            return
        if record.get("status") != "ok":
            return
        dur = float(record.get("dur_s", 0.0))
        rows = record.get("attrs", {}).get("rows")
        if dur > 0:
            self._ema_dur = (dur if self._ema_dur is None
                             else EMA_ALPHA * dur
                             + (1 - EMA_ALPHA) * self._ema_dur)
            if rows:
                rate = float(rows) / dur
                self._ema_rate = (rate if self._ema_rate is None
                                  else EMA_ALPHA * rate
                                  + (1 - EMA_ALPHA) * self._ema_rate)
        self._render()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        remaining = self.total - self.done
        if remaining <= 0 or self._ema_dur is None:
            return None
        return remaining * self._ema_dur / max(1, self._max_running)

    def status(self) -> str:
        parts = [f"{self.done}/{self.total} tasks",
                 f"{self.running} running",
                 f"{self.failed_attempts} failed"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.interrupting:
            parts.append("interrupting -- draining")
        if self._ema_rate is not None:
            parts.append(format_rate(self._ema_rate))
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {format_eta(eta)}")
        return "[repro] " + " · ".join(parts)

    def _render(self, *, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        interval = (self.min_interval if self.isatty
                    else self.non_tty_interval)
        if not force and now - self._last_render < interval:
            return
        self._last_render = now
        text = self.status()
        try:
            if self.isatty:
                self.stream.write("\r\x1b[K" + text)
                self._line_open = True
            else:
                # Batch logs: never repeat an unchanged status line
                # (tasks-complete, sweep.finish and run.finish can all
                # render the same totals back to back).
                if text == self._last_text:
                    return
                self.stream.write(text + "\n")
            self._last_text = text
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            self.enabled = False

    def finish(self) -> None:
        """Print the final summary line (even on non-TTY, once)."""
        if not self.enabled:
            return
        text = self.status()
        try:
            if self.isatty and self._line_open:
                self.stream.write("\r\x1b[K")
            elif not self.isatty and text == self._last_text:
                return
            self.stream.write(text + "\n")
            self._last_text = text
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass
        self._line_open = False
