"""Per-run telemetry: the run directory, the manifest and the fold.

:class:`RunTelemetry` owns everything one recorded run produces:

* a **run directory** ``<telemetry_dir>/<run_id>/`` holding
  ``events.jsonl`` (the span/metric/event/log stream, see
  :mod:`repro.obs.recorder`) and ``manifest.json``;
* the **manifest** — a queryable summary folded live from the stream:
  run id and config, every trace's cache key, per-cell outcome
  (done / resumed / failed), durations, rows, events/s, attempts,
  shard counts and plan digests, predicted-vs-observed footprint, and
  run-wide counters (cache hits/misses, retries, timeouts, OOMs,
  degradation-ladder steps);
* the **activation scope**: entering a :class:`RunTelemetry` installs
  its recorder as the process-current one (:func:`repro.obs.get_recorder`),
  registers it as the *current run* (:func:`current_run`), attaches the
  logging bridge to the ``repro`` logger, and optionally a live
  :class:`~repro.obs.progress.ProgressLine` on stderr.

The sweep engine activates one per ``run_grid`` when built with
``telemetry_dir=...`` and none is already active; the CLI activates one
per command (``--telemetry DIR``), so a whole ``fig6`` suite — several
engines, one per trace — lands in a single coherent run.

**Byte stability.** ``manifest_stable_bytes`` serializes the
*deterministic* portion of a manifest (trace identities and per-cell
result digests — not timings, statuses, pids or run ids) with canonical
JSON, so a sweep resumed from its checkpoint journal produces exactly
the same stable bytes as the run that computed every cell — the
property ``tests/test_obs.py`` pins down.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from .logsetup import library_logger
from .progress import ProgressLine
from .recorder import Recorder, TelemetryLogHandler, use_recorder

#: Manifest format version.
MANIFEST_VERSION = 1

#: File names inside a run directory.
MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"

_RUN_COUNTER = itertools.count()

_current_run: Optional["RunTelemetry"] = None


def current_run() -> Optional["RunTelemetry"]:
    """The active :class:`RunTelemetry`, if a run is being recorded."""
    return _current_run


def result_digest(result: Any) -> str:
    """Stable content digest of one grid-cell result.

    Uses the checkpoint journal's structural encoding, so a result
    decoded from a journal digests identically to a freshly computed
    one — which is exactly what makes resumed manifests byte-stable.
    Non-checkpointable results fall back to their plain JSON form.
    """
    from ..errors import CheckpointError
    from ..runtime.checkpoint import encode_result

    try:
        payload = encode_result(result)
    except CheckpointError:
        payload = result
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _parent_cell(cell: List) -> Tuple:
    """Fold a shard subtask descriptor onto its parent grid cell."""
    kind = cell[0]
    if isinstance(kind, str) and kind.endswith("-shard"):
        return (kind[:-len("-shard")], cell[1], cell[2])
    return tuple(cell[:3])


class _CellStats:
    """Mutable fold state for one grid cell."""

    __slots__ = ("trace_key", "cell", "status", "duration_s", "rows",
                 "attempts", "failed_attempts", "shards", "plan_digest",
                 "partition_dim", "kernel", "predicted_bytes",
                 "observed_rss_kb", "result_sha256", "order", "hosts")

    def __init__(self, trace_key: str, cell: Tuple, order: int):
        self.trace_key = trace_key
        self.cell = cell
        self.status = "pending"
        self.duration_s = 0.0
        self.rows = 0
        self.attempts = 0
        self.failed_attempts = 0
        self.shards = 0
        self.plan_digest: Optional[str] = None
        self.partition_dim: Optional[str] = None
        self.kernel: Optional[str] = None
        self.predicted_bytes: Optional[int] = None
        self.observed_rss_kb: Optional[int] = None
        self.result_sha256: Optional[str] = None
        self.order = order
        #: Remote hosts that ran (part of) this cell; empty means local.
        self.hosts: set = set()

    def as_dict(self, traces: Dict[str, dict]) -> dict:
        entry = {
            "trace": traces.get(self.trace_key, {}).get("name"),
            "trace_key": self.trace_key,
            "cell": list(self.cell),
            "status": self.status,
            "attempts": self.attempts,
            "failed_attempts": self.failed_attempts,
            "duration_s": round(self.duration_s, 6),
            "rows": self.rows,
            "events_per_sec": (int(self.rows / self.duration_s)
                               if self.duration_s > 0 and self.rows else None),
            "shards": self.shards,
            "plan_digest": self.plan_digest,
            "partition_dim": self.partition_dim,
            "kernel": self.kernel,
            "predicted_bytes": self.predicted_bytes,
            "observed_rss_kb": self.observed_rss_kb,
            "result_sha256": self.result_sha256,
            "host": ",".join(sorted(self.hosts)) if self.hosts else None,
        }
        pred, rss = self.predicted_bytes, self.observed_rss_kb
        entry["footprint_ratio"] = (
            round(pred / (rss * 1024), 3) if pred and rss else None)
        return entry


class RunTelemetry:
    """One recorded run: directory, recorder, live fold, manifest.

    Parameters
    ----------
    directory:
        The ``--telemetry`` directory; the run creates its own
        subdirectory under it.
    argv:
        The command line to record in the manifest (CLI sets it).
    config:
        Requested execution configuration (jobs, shards, budgets...).
    progress:
        Show the live stderr progress line.
    progress_stream:
        Override the progress stream (tests).
    """

    def __init__(self, directory: str, *, argv: Optional[List[str]] = None,
                 config: Optional[dict] = None, progress: bool = False,
                 progress_stream=None, run_label: Optional[str] = None):
        stamp = time.strftime("%Y%m%dT%H%M%S")
        label = f"-{run_label}" if run_label else ""
        self.run_id = (f"run-{stamp}{label}-p{os.getpid()}"
                       f"-{next(_RUN_COUNTER)}")
        self.directory = os.path.join(os.path.expanduser(directory),
                                      self.run_id)
        os.makedirs(self.directory, exist_ok=True)
        self.events_path = os.path.join(self.directory, EVENTS_NAME)
        self.manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        self.argv = list(argv) if argv is not None else None
        self.config = dict(config or {})
        self.recorder = Recorder(self.events_path)
        self.recorder.add_listener(self._on_record)
        self.progress: Optional[ProgressLine] = None
        if progress:
            self.progress = ProgressLine(progress_stream)
            self.recorder.add_listener(self.progress)
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self._traces: Dict[str, dict] = {}
        self._cells: Dict[Tuple[str, Tuple], _CellStats] = {}
        self._counters: Dict[str, int] = {
            "cache_hits": 0, "cache_misses": 0, "tasks_done": 0,
            "retries": 0, "timeouts": 0, "oom_failures": 0,
            "ladder_steps": 0, "checkpoint_writes": 0,
            "heartbeats": 0, "interrupted_cells": 0,
            "host_losses": 0,
        }
        #: Per-remote-host fold: assignments, completions, losses.
        self._hosts: Dict[str, Dict[str, int]] = {}
        self._current_trace_key: Optional[str] = None
        self._log_handler: Optional[TelemetryLogHandler] = None
        self._recorder_scope = None
        self._finished = False

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "RunTelemetry":
        global _current_run
        self._recorder_scope = use_recorder(self.recorder)
        self._recorder_scope.__enter__()
        _current_run = self
        # The run id doubles as the trace id: from here on every span
        # gets span/parent ids and the stream reconstructs into one
        # causal tree per sweep (repro.obs.tracing).
        self.recorder.set_trace_context(self.run_id)
        self._log_handler = TelemetryLogHandler(self.recorder)
        library_logger().addHandler(self._log_handler)
        self.recorder.event("run.start", run_id=self.run_id,
                            argv=self.argv, config=self.config)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        from ..errors import SweepInterrupted

        if exc_type is None:
            outcome = "completed"
        elif exc_type is not None and issubclass(exc_type,
                                                 (SweepInterrupted,
                                                  KeyboardInterrupt)):
            # A graceful shutdown is not a failure: the journal holds
            # every completed cell and the run is resumable.
            outcome = "interrupted"
        else:
            outcome = "failed"
        self.finish(outcome=outcome,
                    error=None if exc is None else f"{type(exc).__name__}: {exc}")
        return False

    def finish(self, *, outcome: str = "completed",
               error: Optional[str] = None) -> None:
        """Write the manifest and tear the run down (idempotent)."""
        global _current_run
        if self._finished:
            return
        self._finished = True
        duration = time.monotonic() - self._started_mono
        level = {"completed": "info",
                 "interrupted": "warning"}.get(outcome, "error")
        self.recorder.event("run.finish", run_id=self.run_id,
                            outcome=outcome, duration_s=round(duration, 6),
                            level=level)
        if self.progress is not None:
            self.progress.finish()
        manifest = self.build_manifest(outcome=outcome, error=error,
                                       duration_s=duration)
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.manifest_path)
        if self._log_handler is not None:
            library_logger().removeHandler(self._log_handler)
            self._log_handler = None
        if self._recorder_scope is not None:
            self._recorder_scope.__exit__(None, None, None)
            self._recorder_scope = None
        if _current_run is self:
            _current_run = None
        self.recorder.close()

    # ------------------------------------------------------------------
    # engine-facing API
    # ------------------------------------------------------------------
    def cell_result(self, trace_key: str, cell, result,
                    source: str = "computed") -> None:
        """Record a grid cell's final result (digest + outcome).

        ``source`` is ``"computed"`` or ``"journal"`` (a ``--resume``
        hit); journal cells keep the ``resumed`` status their
        ``cell.resumed`` event established.
        """
        stats = self._stats(trace_key, _parent_cell(list(cell)))
        stats.result_sha256 = result_digest(result)
        if source == "journal":
            stats.status = "resumed"
        elif stats.status != "resumed":
            stats.status = "done"

    def merged_cell(self, trace_key: str, cell, num_shards: int) -> None:
        """Synthesize the ``cell.run`` span of a shard-merged cell.

        Sharded cells never run as one task, so no worker emits their
        ``cell.run``; the merged timeline still must contain exactly one
        per grid cell (the property the tests pin).  Duration is the sum
        of the folded ``shard.run`` spans — CPU-time-like, which is the
        comparable quantity across sharded and unsharded cells.
        """
        stats = self._stats(trace_key, _parent_cell(list(cell)))
        self.recorder.span_complete(
            "cell.run", stats.duration_s, cell=list(cell),
            rows=stats.rows, merged=True, shards=num_shards)

    # ------------------------------------------------------------------
    # the fold (recorder listener)
    # ------------------------------------------------------------------
    def _stats(self, trace_key: Optional[str], cell: Tuple) -> _CellStats:
        key = (trace_key or "", cell)
        if key not in self._cells:
            self._cells[key] = _CellStats(trace_key or "", cell,
                                          order=len(self._cells))
        return self._cells[key]

    def _cell_of(self, attrs: dict) -> Optional[Tuple]:
        cell = attrs.get("cell") or attrs.get("task")
        if not isinstance(cell, (list, tuple)) or not cell:
            return None
        return _parent_cell(list(cell))

    def _on_record(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "span":
            self._fold_span(record)
        elif kind == "metric":
            self._fold_metric(record)
        elif kind == "event":
            self._fold_event(record)

    def _fold_span(self, record: dict) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "checkpoint.write":
            self._counters["checkpoint_writes"] += 1
            return
        if name not in ("cell.run", "shard.run"):
            return
        cell = self._cell_of(attrs)
        if cell is None or record.get("status") != "ok":
            return
        stats = self._stats(self._current_trace_key, cell)
        if attrs.get("partition_dim"):
            stats.partition_dim = attrs["partition_dim"]
        if attrs.get("kernel"):
            stats.kernel = attrs["kernel"]
        if attrs.get("host"):
            stats.hosts.add(str(attrs["host"]))
        if name == "shard.run":
            stats.duration_s += float(record.get("dur_s", 0.0))
            stats.rows += int(attrs.get("rows", 0) or 0)
            stats.shards += 1
            raw = attrs.get("cell") or ()
            if len(raw) > 3:
                stats.plan_digest = raw[3]
        elif attrs.get("merged"):
            stats.shards = int(attrs.get("shards", stats.shards) or 0)
            if stats.status == "pending":
                stats.status = "done"
        else:
            stats.duration_s += float(record.get("dur_s", 0.0))
            stats.rows = int(attrs.get("rows", stats.rows) or 0)
            if stats.status == "pending":
                stats.status = "done"

    def _fold_metric(self, record: dict) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "cache.hit":
            self._counters["cache_hits"] += 1
            return
        if name == "cache.miss":
            self._counters["cache_misses"] += 1
            return
        cell = self._cell_of(attrs)
        if cell is None:
            return
        if name == "worker.heartbeat":
            self._counters["heartbeats"] += 1
            return
        stats = self._stats(self._current_trace_key, cell)
        if name == "worker.ru_maxrss_kb":
            value = int(record.get("value", 0))
            stats.observed_rss_kb = max(stats.observed_rss_kb or 0, value)
        elif name == "footprint.predicted_bytes":
            stats.predicted_bytes = int(record.get("value", 0))

    def _host_stats(self, host) -> Dict[str, int]:
        label = str(host)
        if label not in self._hosts:
            self._hosts[label] = {"connected": 0, "assigned": 0,
                                  "cells_done": 0, "losses": 0,
                                  "dropped": 0}
        return self._hosts[label]

    def _fold_event(self, record: dict) -> None:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name in ("host.connected", "host.lost", "host.dropped"):
            host = attrs.get("host")
            if host is not None:
                key = {"host.connected": "connected", "host.lost": "losses",
                       "host.dropped": "dropped"}[name]
                self._host_stats(host)[key] += 1
            return
        if name == "sweep.start":
            key = attrs.get("trace_key") or "<anonymous>"
            self._current_trace_key = key
            self._traces.setdefault(key, {
                "name": attrs.get("trace"),
                "trace_key": key,
                "num_procs": attrs.get("num_procs"),
                "events": attrs.get("events"),
            })
        elif name == "ladder.step":
            self._counters["ladder_steps"] += 1
        elif name == "task.assigned":
            cell = self._cell_of(attrs)
            if cell is not None:
                self._stats(self._current_trace_key, cell).attempts += 1
            if attrs.get("host"):
                self._host_stats(attrs["host"])["assigned"] += 1
        elif name == "task.done":
            self._counters["tasks_done"] += 1
            if attrs.get("host"):
                self._host_stats(attrs["host"])["cells_done"] += 1
        elif name == "task.failed":
            fail_kind = attrs.get("fail_kind", "error")
            if fail_kind == "hang":
                self._counters["timeouts"] += 1
            elif fail_kind == "oom":
                self._counters["oom_failures"] += 1
            elif fail_kind == "interrupted":
                self._counters["interrupted_cells"] += 1
            elif fail_kind == "host_lost":
                self._counters["host_losses"] += 1
            if attrs.get("action") == "retry":
                self._counters["retries"] += 1
            cell = self._cell_of(attrs)
            if cell is not None:
                stats = self._stats(self._current_trace_key, cell)
                stats.failed_attempts += 1
                if attrs.get("action") == "abort":
                    stats.status = "failed"
        elif name == "cell.resumed":
            cell = self._cell_of(attrs)
            if cell is not None:
                stats = self._stats(attrs.get("trace_key")
                                    or self._current_trace_key, cell)
                stats.status = "resumed"

    # ------------------------------------------------------------------
    # manifest assembly
    # ------------------------------------------------------------------
    def build_manifest(self, *, outcome: str, error: Optional[str],
                       duration_s: float) -> dict:
        cells = sorted(self._cells.values(), key=lambda s: s.order)
        return {
            "v": MANIFEST_VERSION,
            "run_id": self.run_id,
            "argv": self.argv,
            "config": self.config,
            "started_at": self._started_wall,
            "finished_at": self._started_wall + duration_s,
            "duration_s": round(duration_s, 6),
            "outcome": outcome,
            "error": error,
            "traces": [self._traces[k] for k in sorted(self._traces)],
            "cells": [s.as_dict(self._traces) for s in cells],
            "counters": dict(self._counters),
            "hosts": {h: dict(c) for h, c in sorted(self._hosts.items())},
        }


# ----------------------------------------------------------------------
# manifest IO and the stable (resume-invariant) view
# ----------------------------------------------------------------------
def load_manifest(path: str, *, strict: bool = True) -> Optional[dict]:
    """Read one ``manifest.json`` (pass the file or its run directory).

    With ``strict=False``, a malformed or half-written manifest (a run
    killed mid-write, a truncated file, stray bytes) is skipped with a
    logged warning and ``None`` is returned instead of aborting —
    ``repro report``/``trace``/``diff`` over a directory of runs must
    not die because one run is torn.
    """
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        if strict:
            raise ReproError(
                f"cannot read run manifest {path!r}: {exc}") from None
        library_logger().warning(
            "skipping malformed run manifest %s: %s", path, exc)
        return None


def validate_manifest(manifest: dict) -> None:
    """Structural check of a manifest; raises :class:`ReproError`."""
    if not isinstance(manifest, dict):
        raise ReproError("manifest is not a JSON object")
    if manifest.get("v") != MANIFEST_VERSION:
        raise ReproError(f"unknown manifest version {manifest.get('v')!r}")
    for field in ("run_id", "outcome", "traces", "cells", "counters",
                  "duration_s"):
        if field not in manifest:
            raise ReproError(f"manifest missing field {field!r}")
    if manifest["outcome"] not in ("completed", "failed", "interrupted"):
        raise ReproError(f"bad manifest outcome {manifest['outcome']!r}")
    if not isinstance(manifest["cells"], list):
        raise ReproError("manifest cells is not a list")
    for i, entry in enumerate(manifest["cells"]):
        for field in ("cell", "status", "trace_key"):
            if field not in entry:
                raise ReproError(f"manifest cell #{i} missing {field!r}")
        if entry["status"] not in ("pending", "done", "resumed", "failed"):
            raise ReproError(
                f"manifest cell #{i} has bad status {entry['status']!r}")


def manifest_stable_view(manifest: dict) -> dict:
    """The resume-invariant portion of a manifest.

    Keeps trace identities and per-cell result digests; drops run ids,
    wall times, durations, statuses (computed vs resumed), attempt
    counts and RSS observations — everything legitimately different
    between a fresh run and a ``--resume`` of it.
    """
    traces = sorted(
        ({"name": t.get("name"), "trace_key": t.get("trace_key"),
          "num_procs": t.get("num_procs"), "events": t.get("events")}
         for t in manifest.get("traces", ())),
        key=lambda t: str(t["trace_key"]))
    results = sorted(
        ({"trace_key": c.get("trace_key"), "cell": c.get("cell"),
          "result_sha256": c.get("result_sha256")}
         for c in manifest.get("cells", ())),
        key=lambda c: (str(c["trace_key"]), str(c["cell"])))
    return {"v": manifest.get("v"), "traces": traces, "results": results}


def manifest_stable_bytes(manifest: dict) -> bytes:
    """Canonical bytes of :func:`manifest_stable_view` (test anchor)."""
    return json.dumps(manifest_stable_view(manifest), sort_keys=True,
                      separators=(",", ":")).encode()


def find_runs(directory: str) -> List[str]:
    """Run directories under ``directory`` (itself, or one level down)."""
    directory = os.path.expanduser(directory)
    if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        return [directory]
    runs = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    for name in names:
        path = os.path.join(directory, name)
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            runs.append(path)
    return runs
