"""Stdlib logging configuration for the ``repro`` library and CLI.

Every ``repro.*`` module logs through ``logging.getLogger(__name__)``,
which all roll up to the ``"repro"`` logger configured here.  The library
itself never calls :func:`configure_logging` — per logging best practice
it only attaches a :class:`logging.NullHandler` — the CLI (``-v`` /
``-q``) and test harnesses opt in.

Verbosity maps onto the console handler level:

=========  ==================  =======================================
CLI flags  ``verbosity``       console shows
=========  ==================  =======================================
``-q``     ``-1`` (or lower)   errors only
(none)     ``0``               warnings (retries, degradations, ...)
``-v``     ``1``               info (run/sweep lifecycle, cache hits)
``-vv``    ``2`` (or higher)   debug
=========  ==================  =======================================

The *logger* level is kept at least ``INFO`` (``DEBUG`` with ``-vv``)
regardless of the console level, so the telemetry recorder's
:class:`~repro.obs.recorder.TelemetryLogHandler` — attached per run by
:class:`~repro.obs.manifest.RunTelemetry` — always receives the records
that belong in the JSONL stream even when the console stays quiet.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: The root of the library's logger hierarchy.
LIBRARY_LOGGER = "repro"

#: Attribute marking the console handler we installed (so repeated
#: configuration replaces it instead of stacking duplicates).
_CONSOLE_MARK = "_repro_console_handler"


def library_logger() -> logging.Logger:
    return logging.getLogger(LIBRARY_LOGGER)


def console_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count onto a logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


class _ConsoleHandler(logging.StreamHandler):
    """Best-effort console handler: a closed or replaced stderr (test
    harnesses swap ``sys.stderr`` per test) must never turn a warning
    into a logging-internal traceback."""

    def handleError(self, record) -> None:  # pragma: no cover - noise path
        pass

    def setStream(self, stream):
        try:
            return super().setStream(stream)
        except (ValueError, OSError):  # flushing a closed previous stream
            self.stream = stream
            return None


def configure_logging(verbosity: int = 0,
                      stream=None) -> logging.Logger:
    """Install (or replace) the CLI console handler on the repro logger.

    Idempotent: calling again reconfigures the one console handler
    rather than adding another, rebinding it to the *current*
    ``sys.stderr`` (it may have been swapped since).  Propagation is
    left on so ambient capture (``caplog``, an application's root
    configuration) keeps seeing repro records.  Returns the configured
    logger.
    """
    logger = library_logger()
    level = console_level(verbosity)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, _CONSOLE_MARK, False):
            handler = existing
            break
    if handler is None:
        handler = _ConsoleHandler(stream if stream is not None
                                  else sys.stderr)
        setattr(handler, _CONSOLE_MARK, True)
        handler.setFormatter(logging.Formatter(
            "%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
    else:
        handler.setStream(stream if stream is not None else sys.stderr)
    handler.setLevel(level)
    # The logger itself stays permissive enough for the telemetry
    # handler: records are filtered per handler, not at the source.
    logger.setLevel(min(level, logging.DEBUG if verbosity >= 2
                        else logging.INFO))
    return logger


# Library default: silent unless a consumer configures handlers.
if not library_logger().handlers:  # pragma: no branch
    library_logger().addHandler(logging.NullHandler())
