"""Cross-run performance history: record manifests, flag regressions.

A sweep's manifest already carries everything needed to compare runs —
per-cell durations, event rates, attempt counts, kernel mode and host.
This module gives those numbers a durable home: ``repro history record``
appends one run's stable summary to an append-only JSONL file (default
``PERF_HISTORY.jsonl``), and ``repro history show`` renders the trend
per cell and flags any cell whose latest duration regressed more than a
threshold against its *trailing median* — robust to the odd noisy run
in a way a previous-run comparison is not.

The file format is the same discipline as ``events.jsonl``: one JSON
object per line, never rewritten, torn tails tolerated on load.  The
throughput benchmark (``benchmarks/bench_throughput.py``) records its
telemetry-on run here too, so CI accumulates a perf trail for free.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from .logsetup import library_logger
from .manifest import load_manifest
from .report import _fmt_cell, _fmt_num, _table
from .tracing import single_run_dir

#: Bump on any backwards-incompatible entry shape change.
HISTORY_VERSION = 1

#: How many trailing entries (per cell) form the comparison median.
DEFAULT_WINDOW = 8
#: Relative slowdown vs the trailing median that flags a regression.
DEFAULT_THRESHOLD = 0.25


def record_entry(manifest: dict, *, label: Optional[str] = None) -> dict:
    """One history line for a finished run's manifest.

    Only stable, comparable fields are kept — no absolute paths, no
    argv — so entries from different checkouts and machines line up.
    """
    cells = []
    for cell in manifest.get("cells", []):
        cells.append({
            "trace_key": cell.get("trace_key"),
            "cell": list(cell.get("cell") or ()),
            "status": cell.get("status"),
            "duration_s": cell.get("duration_s"),
            "events_per_sec": cell.get("events_per_sec"),
            "attempts": cell.get("attempts"),
            "shards": cell.get("shards"),
            "kernel": cell.get("kernel"),
            "host": cell.get("host"),
        })
    entry = {
        "v": HISTORY_VERSION,
        "run_id": manifest.get("run_id"),
        "finished_at": manifest.get("finished_at"),
        "outcome": manifest.get("outcome"),
        "duration_s": manifest.get("duration_s"),
        "cells": cells,
    }
    if label:
        entry["label"] = label
    return entry


def append_history(path: str, entry: dict) -> None:
    """Append one entry; the file is append-only and crash-tolerant."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def record_run(run_path: str, history_path: str,
               *, label: Optional[str] = None) -> dict:
    """Record one run directory into the history file; returns the entry."""
    manifest = load_manifest(single_run_dir(run_path))
    assert manifest is not None
    entry = record_entry(manifest, label=label)
    append_history(history_path, entry)
    return entry


def load_history(path: str) -> List[dict]:
    """All readable entries, oldest first; torn/garbled lines skipped."""
    entries: List[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                library_logger().warning(
                    "skipping torn history line %s:%d", path, lineno)
                continue
            if isinstance(entry, dict) and "cells" in entry:
                entries.append(entry)
    return entries


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _cell_series(entries: List[dict]) -> Dict[Tuple, List[dict]]:
    series: Dict[Tuple, List[dict]] = {}
    for entry in entries:
        for cell in entry.get("cells", []):
            if cell.get("status") not in (None, "ok", "done"):
                continue  # failed cells have no comparable duration
            key = (cell.get("trace_key"), tuple(cell.get("cell") or ()))
            series.setdefault(key, []).append(
                dict(cell, run_id=entry.get("run_id"),
                     label=entry.get("label")))
    return series


def check_regressions(entries: List[dict], *,
                      window: int = DEFAULT_WINDOW,
                      threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Compare each cell's newest duration to its trailing median.

    The median is taken over up to ``window`` *prior* entries for the
    same (trace_key, cell); a cell with fewer than two prior samples is
    reported as ``baseline`` (nothing to compare against yet).  The
    newest run is the last entry in ``entries``.
    """
    cells: List[dict] = []
    if not entries:
        return {"runs": 0, "cells": cells, "regressions": []}
    series = _cell_series(entries)
    latest_run = entries[-1].get("run_id")
    for key, samples in sorted(series.items(), key=repr):
        newest = samples[-1]
        if newest.get("run_id") != latest_run:
            continue  # cell absent from the newest run
        prior = [s["duration_s"] for s in samples[:-1][-window:]
                 if isinstance(s.get("duration_s"), (int, float))]
        row = {
            "trace_key": key[0],
            "cell": list(key[1]),
            "runs": len(samples),
            "duration_s": newest.get("duration_s"),
            "events_per_sec": newest.get("events_per_sec"),
            "kernel": newest.get("kernel"),
            "host": newest.get("host"),
            "median_s": None,
            "delta_pct": None,
            "verdict": "baseline",
        }
        if len(prior) >= 2 and newest.get("duration_s"):
            median = _median(prior)
            row["median_s"] = round(median, 6)
            if median > 0:
                delta = (newest["duration_s"] - median) / median
                row["delta_pct"] = round(100.0 * delta, 2)
                row["verdict"] = ("regression" if delta > threshold
                                  else "improvement" if delta < -threshold
                                  else "stable")
        cells.append(row)
    return {
        "runs": len(entries),
        "latest_run": latest_run,
        "window": window,
        "threshold_pct": round(100.0 * threshold, 2),
        "cells": cells,
        "regressions": [c for c in cells if c["verdict"] == "regression"],
    }


def history_summary(path: str, *, window: int = DEFAULT_WINDOW,
                    threshold: float = DEFAULT_THRESHOLD) -> dict:
    entries = load_history(path)
    if not entries:
        raise ReproError(f"no history recorded at {path!r} "
                         f"(run `repro history record RUN` first)")
    summary = check_regressions(entries, window=window,
                                threshold=threshold)
    summary["path"] = path
    return summary


def render_history(summary: dict) -> str:
    """The plain-text ``repro history show`` trend table."""
    out: List[str] = []
    out.append(f"history {summary.get('path', '-')}: "
               f"{summary['runs']} run(s), latest "
               f"{summary.get('latest_run') or '-'}  "
               f"(window={summary['window']}, "
               f"flag >{summary['threshold_pct']:.0f}% vs median)")
    rows = []
    for cell in summary["cells"]:
        mark = {"regression": "▲ REGRESSED", "improvement": "▼ improved",
                "stable": "", "baseline": "(baseline)"}[cell["verdict"]]
        rows.append([
            _fmt_cell(cell["cell"]),
            str(cell["runs"]),
            _fmt_num(cell["duration_s"], "{:.3f}"),
            _fmt_num(cell["median_s"], "{:.3f}"),
            _fmt_num(cell["delta_pct"], "{:+.1f}%"),
            _fmt_num(cell["events_per_sec"], "{:.0f}"),
            str(cell.get("kernel") or "-"),
            str(cell.get("host") or "local"),
            mark,
        ])
    out.append(_table(["cell", "runs", "dur_s", "median_s", "Δ",
                       "ev/s", "kernel", "host", "verdict"], rows))
    out.append("")
    out.append(f"{len(summary['regressions'])} regression(s) over "
               f"{len(summary['cells'])} tracked cell(s)")
    return "\n".join(out) + "\n"
