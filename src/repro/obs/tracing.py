"""Causal span trees and critical-path attribution over run telemetry.

PR 6 gave every run a flat, schema-checked ``events.jsonl``; the
recorder now stamps every span with ``trace_id``/``span_id``/
``parent_id`` (parents ride the supervisor's assign messages to forked
and TCP-remote workers, and remote timestamps are skew-normalized on
ingest — see :mod:`repro.runtime.transport`).  This module turns that
stream back into structure:

* :func:`build_tree` reconstructs the span DAG of a run — one rooted
  tree per sweep (``sweep.run`` is the root span) — and reports any
  orphans (spans whose parent never arrived) instead of hiding them;
* :func:`critical_path` decomposes a root span's wall time into the
  maximal non-overlapping chain of descendant spans plus the *idle*
  gaps between them (queue wait, dispatch, scheduling) — by
  construction the segments tile the root exactly, so the critical
  path's total always equals the sweep span's duration;
* :func:`trace_summary` / :func:`render_trace` back ``repro trace RUN``
  (rendered tree + top-N critical-path contributors with self-time
  percentages);
* :func:`diff_manifests` / :func:`render_diff` back
  ``repro diff RUN_A RUN_B`` — a per-cell regression table (duration,
  events/s, attempts, kernel, host) with threshold-flagged deltas.

The machinery is deliberately tolerant of pre-tracing artifacts: spans
recorded before span ids existed are counted as *untraced* and an
all-untraced run is a structured error, not a crash.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .manifest import EVENTS_NAME, MANIFEST_NAME, find_runs, load_manifest
from .report import _fmt_cell, _fmt_num, _table
from .schema import iter_records

#: Gaps shorter than this are measurement noise, not idle time.
IDLE_EPS = 1e-4


class SpanNode:
    """One span of a reconstructed trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "dur_s",
                 "status", "attrs", "pid", "children")

    def __init__(self, record: dict):
        self.span_id: str = record["span_id"]
        self.parent_id: Optional[str] = record.get("parent_id")
        self.name: str = record.get("name", "?")
        self.start: float = float(record.get("t", 0.0))
        self.dur_s: float = float(record.get("dur_s", 0.0))
        self.status: str = record.get("status", "?")
        self.attrs: dict = record.get("attrs", {}) or {}
        self.pid = record.get("pid")
        self.children: List["SpanNode"] = []

    @property
    def end(self) -> float:
        return self.start + self.dur_s

    @property
    def target(self) -> Optional[str]:
        what = (self.attrs.get("cell") or self.attrs.get("trace")
                or self.attrs.get("key"))
        if isinstance(what, (list, tuple)):
            return _fmt_cell(what)
        return str(what) if what is not None else None

    @property
    def host(self) -> Optional[str]:
        return self.attrs.get("host")


class TraceTree:
    """The reconstructed span forest of one run."""

    def __init__(self, trace_id: Optional[str], roots: List[SpanNode],
                 nodes: Dict[str, SpanNode], orphans: List[SpanNode],
                 untraced: int):
        self.trace_id = trace_id
        self.roots = roots
        self.nodes = nodes
        #: Spans whose ``parent_id`` resolves to no recorded span.
        self.orphans = orphans
        #: Spans recorded without ids (pre-tracing artifacts).
        self.untraced = untraced


def load_spans(run_dir: str) -> List[dict]:
    """All span records of a run directory's ``events.jsonl``."""
    events = run_dir
    if os.path.isdir(run_dir):
        events = os.path.join(run_dir, EVENTS_NAME)
    if not os.path.exists(events):
        raise ReproError(f"no event stream at {events!r}")
    return [record for _, record in iter_records(events)
            if record.get("kind") == "span"]


def build_tree(spans: Sequence[dict]) -> TraceTree:
    """Reconstruct the span tree; orphans are kept visible, not dropped."""
    nodes: Dict[str, SpanNode] = {}
    untraced = 0
    trace_id = None
    for record in spans:
        if not record.get("span_id"):
            untraced += 1
            continue
        node = SpanNode(record)
        nodes[node.span_id] = node
        if trace_id is None:
            trace_id = record.get("trace_id")
    if not nodes:
        raise ReproError(
            "no traced spans in this run (recorded before span-id "
            "threading, or telemetry was off)")
    roots: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for node in nodes.values():
        if node.parent_id is None:
            roots.append(node)
        elif node.parent_id in nodes:
            nodes[node.parent_id].children.append(node)
        else:
            orphans.append(node)
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.span_id))
    roots.sort(key=lambda n: (n.start, n.span_id))
    return TraceTree(trace_id, roots, nodes, orphans, untraced)


def load_tree(run_dir: str) -> TraceTree:
    return build_tree(load_spans(run_dir))


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def _clip(node: SpanNode, lo: float, hi: float) -> Tuple[float, float]:
    return (max(node.start, lo), min(node.end, hi))


def _best_chain(node: SpanNode) -> List[SpanNode]:
    """The maximal-coverage chain of non-overlapping children.

    Weighted interval scheduling over the children's (clipped)
    intervals, weight = covered duration: the classic O(n log n) DP.
    Ties break toward earlier spans, so the choice is deterministic.
    """
    import bisect

    kids = []
    for child in node.children:
        lo, hi = _clip(child, node.start, node.end)
        if hi - lo > 0:
            kids.append((lo, hi, child))
    if not kids:
        return []
    kids.sort(key=lambda k: (k[1], k[0]))
    ends = [k[1] for k in kids]
    n = len(kids)
    best: List[float] = [0.0] * (n + 1)
    take: List[bool] = [False] * (n + 1)
    for i in range(1, n + 1):
        lo, hi, _ = kids[i - 1]
        j = bisect.bisect_right(ends, lo, 0, i - 1)
        with_i = best[j] + (hi - lo)
        if with_i > best[i - 1]:
            best[i], take[i] = with_i, True
        else:
            best[i] = best[i - 1]
    chain: List[SpanNode] = []
    i = n
    while i > 0:
        if take[i]:
            lo, hi, child = kids[i - 1]
            chain.append(child)
            i = bisect.bisect_right(ends, lo, 0, i - 1)
        else:
            i -= 1
    chain.reverse()
    return chain


def critical_path(root: SpanNode) -> List[dict]:
    """Decompose ``root``'s wall time into span and idle segments.

    Returns chronologically ordered segments that tile ``[root.start,
    root.end]`` exactly: the longest chain of sweep → cell/shard/merge
    spans, with the gaps between them attributed as ``(idle)`` time
    under the enclosing span (queue wait, dispatch, scheduling).  The
    segment durations therefore always sum to the root's duration.
    """
    segments: List[dict] = []

    def walk(node: SpanNode, lo: float, hi: float) -> None:
        chain = _best_chain(node)
        cursor = lo
        for child in chain:
            c_lo, c_hi = _clip(child, lo, hi)
            if c_lo - cursor > IDLE_EPS:
                segments.append({
                    "kind": "idle", "name": "(idle)",
                    "under": node.name, "target": node.target,
                    "host": None, "span_id": None,
                    "start": cursor, "end": c_lo,
                    "dur_s": c_lo - cursor,
                })
            if child.children:
                walk(child, c_lo, c_hi)
            else:
                segments.append({
                    "kind": "span", "name": child.name,
                    "under": node.name, "target": child.target,
                    "host": child.host, "span_id": child.span_id,
                    "start": c_lo, "end": c_hi,
                    "dur_s": c_hi - c_lo,
                })
            cursor = max(cursor, c_hi)
        if hi - cursor > IDLE_EPS:
            segments.append({
                "kind": "idle", "name": "(idle)",
                "under": node.name, "target": node.target,
                "host": None, "span_id": None,
                "start": cursor, "end": hi,
                "dur_s": hi - cursor,
            })

    if not root.children:
        # A leaf root: its whole duration is its own self time, never
        # idle (the trailing-gap branch above would otherwise claim it).
        return [{"kind": "span", "name": root.name,
                 "under": None, "target": root.target,
                 "host": root.host, "span_id": root.span_id,
                 "start": root.start, "end": root.end,
                 "dur_s": root.dur_s}]
    walk(root, root.start, root.end)
    return segments


def path_contributors(segments: Sequence[dict],
                      total: float) -> List[dict]:
    """Aggregate critical-path segments into ranked contributors.

    Groups by (kind, span name, target, host); ``self_pct`` is the
    group's share of the root span's duration.  Sorted largest first.
    """
    groups: Dict[Tuple, dict] = {}
    for seg in segments:
        key = (seg["kind"], seg["name"],
               seg.get("under") if seg["kind"] == "idle" else None,
               seg.get("target"), seg.get("host"))
        entry = groups.setdefault(key, {
            "kind": seg["kind"], "name": seg["name"],
            "under": seg.get("under") if seg["kind"] == "idle" else None,
            "target": seg.get("target"), "host": seg.get("host"),
            "dur_s": 0.0, "segments": 0,
        })
        entry["dur_s"] += seg["dur_s"]
        entry["segments"] += 1
    out = sorted(groups.values(), key=lambda g: -g["dur_s"])
    for entry in out:
        entry["dur_s"] = round(entry["dur_s"], 6)
        entry["self_pct"] = (round(100.0 * entry["dur_s"] / total, 2)
                             if total > 0 else None)
    return out


# ----------------------------------------------------------------------
# rendering (repro trace)
# ----------------------------------------------------------------------
def _node_dict(node: SpanNode) -> dict:
    return {
        "span_id": node.span_id,
        "parent_id": node.parent_id,
        "name": node.name,
        "target": node.target,
        "host": node.host,
        "t": node.start,
        "dur_s": node.dur_s,
        "status": node.status,
        "pid": node.pid,
        "children": [_node_dict(c) for c in node.children],
    }


def single_run_dir(path: str) -> str:
    """Resolve ``path`` to exactly one run directory.

    Accepts a run directory itself or a ``--telemetry`` directory that
    contains exactly one run; several runs is an error naming them, so
    the caller picks.
    """
    path = os.path.expanduser(path)
    if os.path.exists(os.path.join(path, MANIFEST_NAME)) or \
            os.path.exists(os.path.join(path, EVENTS_NAME)):
        return path
    runs = find_runs(path)
    if len(runs) == 1:
        return runs[0]
    if not runs:
        raise ReproError(f"no recorded runs under {path!r}")
    names = ", ".join(os.path.basename(r) for r in runs)
    raise ReproError(
        f"{path!r} holds {len(runs)} runs ({names}); pass one run "
        f"directory")


def trace_summary(path: str, *, top: int = 10) -> dict:
    """``repro trace`` as data: tree, critical path, contributors."""
    run_dir = single_run_dir(path)
    tree = load_tree(run_dir)
    roots = []
    for root in tree.roots:
        segments = critical_path(root)
        total = root.dur_s
        roots.append({
            "root": _node_dict(root),
            "critical_path": segments,
            "contributors": path_contributors(segments, total),
            "path_total_s": round(sum(s["dur_s"] for s in segments), 6),
            "root_dur_s": round(total, 6),
        })
    return {
        "run_dir": run_dir,
        "trace_id": tree.trace_id,
        "spans": len(tree.nodes),
        "untraced_spans": tree.untraced,
        "orphan_spans": [n.span_id for n in tree.orphans],
        "roots": roots,
    }


def _render_node(node: dict, depth: int, out: List[str],
                 max_children: int) -> None:
    label = node["name"]
    if node.get("target"):
        label += f"  {node['target']}"
    extras = [f"{node['dur_s']:.3f}s", node.get("status") or "?"]
    if node.get("host"):
        extras.append(f"host={node['host']}")
    out.append(f"{'  ' * depth}{label}  [{' '.join(extras)}]")
    children = node.get("children", [])
    for child in children[:max_children]:
        _render_node(child, depth + 1, out, max_children)
    if len(children) > max_children:
        out.append(f"{'  ' * (depth + 1)}... {len(children) - max_children} "
                   f"more child span(s)")


def render_trace(path: str, *, top: int = 10,
                 max_children: int = 40) -> str:
    """The plain-text ``repro trace`` output for one run."""
    summary = trace_summary(path, top=top)
    out: List[str] = []
    out.append(f"run {os.path.basename(summary['run_dir'])}  "
               f"trace={summary['trace_id'] or '-'}  "
               f"spans={summary['spans']}  "
               f"roots={len(summary['roots'])}  "
               f"orphans={len(summary['orphan_spans'])}  "
               f"untraced={summary['untraced_spans']}")
    if summary["orphan_spans"]:
        out.append(f"  warning: {len(summary['orphan_spans'])} span(s) "
                   f"have unresolved parents and were promoted to roots")
    for entry in summary["roots"]:
        out.append("")
        _render_node(entry["root"], 0, out, max_children)
        total = entry["root_dur_s"]
        out.append("")
        out.append(f"critical path of {entry['root']['name']} "
                   f"({entry['path_total_s']:.3f}s over a "
                   f"{total:.3f}s span):")
        rows = []
        for i, c in enumerate(entry["contributors"][:top], start=1):
            what = c["name"] if c["kind"] == "span" else \
                f"(idle under {c['under']})"
            rows.append([
                str(i), what, str(c.get("target") or "-"),
                str(c.get("host") or "-"),
                f"{c['dur_s']:.3f}",
                _fmt_num(c.get("self_pct"), "{:.1f}%"),
                str(c["segments"]),
            ])
        out.append(_table(["#", "what", "target", "host", "dur_s",
                           "self", "segs"], rows))
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# run diffing (repro diff)
# ----------------------------------------------------------------------
def _load_run_manifest(path: str) -> dict:
    """A manifest-shaped dict from a run dir, a ``--telemetry`` dir with
    one run, or a ``repro report --json`` output file."""
    path = os.path.expanduser(path)
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {path!r}: {exc}") from None
        if isinstance(data, dict) and "runs" in data:
            runs = data["runs"]
            if len(runs) != 1:
                raise ReproError(
                    f"{path!r} holds {len(runs)} runs; diff needs "
                    f"exactly one per side")
            return runs[0]
        if isinstance(data, dict) and "cells" in data:
            return data
        raise ReproError(f"{path!r} is not a manifest or report JSON")
    manifest = load_manifest(single_run_dir(path))
    assert manifest is not None
    return manifest


def _cell_key(entry: dict) -> Tuple:
    return (entry.get("trace_key"),
            tuple(entry.get("cell") or ()))


def diff_manifests(a: dict, b: dict, *, threshold: float = 0.2,
                   min_seconds: float = 0.005) -> dict:
    """Per-cell comparison of two runs of (ideally) the same grid.

    ``threshold`` is the relative duration change that flags a cell
    (0.2 = ±20 %); cells faster than ``min_seconds`` in both runs are
    never flagged — their deltas are noise.  Sign convention: positive
    ``delta_pct`` means run B is *slower* (a regression).
    """
    cells_a = {_cell_key(c): c for c in a.get("cells", [])}
    cells_b = {_cell_key(c): c for c in b.get("cells", [])}
    keys = list(cells_a)
    keys.extend(k for k in cells_b if k not in cells_a)
    rows: List[dict] = []
    for key in keys:
        ca, cb = cells_a.get(key), cells_b.get(key)
        entry: Dict[str, Any] = {
            "trace_key": key[0],
            "cell": list(key[1]),
            "only_in": "a" if cb is None else "b" if ca is None else None,
            "duration_a": ca.get("duration_s") if ca else None,
            "duration_b": cb.get("duration_s") if cb else None,
            "events_per_sec_a": ca.get("events_per_sec") if ca else None,
            "events_per_sec_b": cb.get("events_per_sec") if cb else None,
            "attempts_a": ca.get("attempts") if ca else None,
            "attempts_b": cb.get("attempts") if cb else None,
            "kernel_a": ca.get("kernel") if ca else None,
            "kernel_b": cb.get("kernel") if cb else None,
            "host_a": ca.get("host") if ca else None,
            "host_b": cb.get("host") if cb else None,
            "delta_pct": None,
            "flag": None,
        }
        da, db = entry["duration_a"], entry["duration_b"]
        if da and db:
            entry["delta_pct"] = round(100.0 * (db - da) / da, 2)
            if max(da, db) >= min_seconds:
                if db >= da * (1.0 + threshold):
                    entry["flag"] = "regression"
                elif da >= db * (1.0 + threshold):
                    entry["flag"] = "improvement"
        rows.append(entry)
    return {
        "run_a": a.get("run_id"),
        "run_b": b.get("run_id"),
        "threshold_pct": round(100.0 * threshold, 2),
        "cells": rows,
        "regressions": [r for r in rows if r["flag"] == "regression"],
        "improvements": [r for r in rows if r["flag"] == "improvement"],
    }


def diff_runs(path_a: str, path_b: str, *, threshold: float = 0.2,
              min_seconds: float = 0.005) -> dict:
    return diff_manifests(_load_run_manifest(path_a),
                          _load_run_manifest(path_b),
                          threshold=threshold, min_seconds=min_seconds)


def render_diff(diff: dict) -> str:
    """The plain-text ``repro diff`` regression table."""
    out: List[str] = []
    out.append(f"diff {diff.get('run_a') or 'A'} -> "
               f"{diff.get('run_b') or 'B'}  "
               f"(flag threshold ±{diff['threshold_pct']:.0f}%)")
    rows = []
    for entry in diff["cells"]:
        mark = {"regression": "▲ SLOWER", "improvement": "▼ faster",
                None: ""}[entry["flag"]]
        if entry["only_in"]:
            mark = f"only in {entry['only_in'].upper()}"
        kern = (entry.get("kernel_a") or "-", entry.get("kernel_b") or "-")
        host = (entry.get("host_a") or "local",
                entry.get("host_b") or "local")
        rows.append([
            _fmt_cell(entry["cell"]),
            _fmt_num(entry["duration_a"], "{:.3f}"),
            _fmt_num(entry["duration_b"], "{:.3f}"),
            _fmt_num(entry["delta_pct"], "{:+.1f}%"),
            _fmt_num(entry["events_per_sec_a"], "{:.0f}"),
            _fmt_num(entry["events_per_sec_b"], "{:.0f}"),
            f"{entry['attempts_a'] or 0}/{entry['attempts_b'] or 0}",
            kern[0] if kern[0] == kern[1] else f"{kern[0]}->{kern[1]}",
            host[0] if host[0] == host[1] else f"{host[0]}->{host[1]}",
            mark,
        ])
    out.append(_table(
        ["cell", "dur_a", "dur_b", "Δdur", "ev/s_a", "ev/s_b",
         "att a/b", "kernel", "host", "flag"], rows))
    out.append("")
    out.append(f"{len(diff['regressions'])} regression(s), "
               f"{len(diff['improvements'])} improvement(s) over "
               f"{len(diff['cells'])} cell(s)")
    return "\n".join(out) + "\n"
