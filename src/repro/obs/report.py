"""Render a finished run's telemetry into a human-readable report.

Backs the ``repro report`` subcommand: given a ``--telemetry`` directory
(or one run directory inside it), print for each run

* a header with run id, outcome, wall duration and counters,
* a per-cell table (status, attempts, shards, duration, rows, events/s,
  predicted-vs-observed footprint ratio, host, result digest),
* a per-host table (assignments, completed cells, losses) when the run
  used remote workers,
* the top-N slowest spans from ``events.jsonl``.

Everything is computed over the manifest and event stream — the same
artifacts the tests validate — so the report doubles as a smoke test
that a run's telemetry is complete and well-formed.  ``--json`` emits
the identical content as one machine-readable object
(:func:`report_summary`), which ``repro trace`` and ``repro diff``
share.  Malformed or half-written run directories are skipped with a
logged warning instead of aborting the whole report.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, TextIO

from ..errors import ReproError
from .logsetup import library_logger
from .manifest import (EVENTS_NAME, find_runs, load_manifest,
                       validate_manifest)
from .schema import iter_records


def _fmt_cell(cell) -> str:
    return "/".join(str(part) for part in cell)


def _fmt_num(value, fmt: str = "{:.2f}", missing: str = "-") -> str:
    if value is None:
        return missing
    return fmt.format(value)


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, col in enumerate(row):
            widths[i] = max(widths[i], len(col))
    def line(cols):
        return "  ".join(col.ljust(widths[i])
                         for i, col in enumerate(cols)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def slowest_spans(events_path: str, top: int = 10) -> List[dict]:
    """The ``top`` longest spans of an ``events.jsonl``, slowest first."""
    spans: List[dict] = []
    if not os.path.exists(events_path):
        return spans
    for _, record in iter_records(events_path):
        if record.get("kind") == "span":
            spans.append(record)
    spans.sort(key=lambda r: -float(r.get("dur_s", 0.0)))
    return spans[:top]


def _span_row(record: dict) -> dict:
    attrs = record.get("attrs", {})
    what = attrs.get("cell") or attrs.get("trace") or attrs.get("key")
    return {
        "name": record.get("name"),
        "dur_s": float(record.get("dur_s", 0.0)),
        "status": record.get("status"),
        "target": (_fmt_cell(what) if isinstance(what, (list, tuple))
                   else str(what) if what is not None else None),
        "host": attrs.get("host"),
    }


def run_summary(run_dir: str, *, top: int = 10,
                strict: bool = True) -> Optional[dict]:
    """One run's report as data: manifest fields plus slowest spans.

    Returns ``None`` (after a logged warning) for a malformed run
    directory when ``strict=False``.
    """
    manifest = load_manifest(run_dir, strict=strict)
    if manifest is None:
        return None
    try:
        validate_manifest(manifest)
    except ReproError as exc:
        if strict:
            raise
        library_logger().warning("skipping invalid run %s: %s",
                                 run_dir, exc)
        return None
    spans = slowest_spans(os.path.join(run_dir, EVENTS_NAME), top=top)
    return {
        "run_dir": run_dir,
        "run_id": manifest.get("run_id"),
        "outcome": manifest.get("outcome"),
        "duration_s": manifest.get("duration_s"),
        "argv": manifest.get("argv"),
        "traces": manifest.get("traces", []),
        "counters": manifest.get("counters", {}),
        "hosts": manifest.get("hosts", {}),
        "cells": manifest.get("cells", []),
        "slowest_spans": [_span_row(r) for r in spans],
    }


def render_summary(summary: dict) -> str:
    """The plain-text report for one :func:`run_summary` dict."""
    out: List[str] = []
    out.append(f"run {summary['run_id']}  ({summary['outcome']}, "
               f"{summary['duration_s']:.2f}s)")
    if summary.get("argv"):
        out.append(f"  argv: {' '.join(summary['argv'])}")
    for trace in summary.get("traces", ()):
        out.append(f"  trace: {trace.get('name')}  key={trace.get('trace_key')}"
                   f"  procs={trace.get('num_procs')}"
                   f"  events={trace.get('events')}")
    counters = summary.get("counters", {})
    out.append("  counters: " + "  ".join(
        f"{name}={counters[name]}" for name in sorted(counters)))
    out.append("")

    cells = summary.get("cells", [])
    if cells:
        rows = []
        ratios = []
        for entry in cells:
            ratio = entry.get("footprint_ratio")
            if ratio:
                ratios.append(ratio)
            rows.append([
                _fmt_cell(entry.get("cell", [])),
                str(entry.get("status", "?")),
                str(entry.get("attempts", 0)),
                str(entry.get("shards", 0)),
                _fmt_num(entry.get("duration_s"), "{:.3f}"),
                str(entry.get("rows", 0)),
                _fmt_num(entry.get("events_per_sec"), "{:.0f}"),
                _fmt_num(ratio, "{:.2f}"),
                str(entry.get("host") or "local"),
                str(entry.get("result_sha256") or "-"),
            ])
        out.append(_table(
            ["cell", "status", "att", "shards", "dur_s", "rows",
             "ev/s", "pred/obs", "host", "result"], rows))
        if ratios:
            out.append("")
            out.append(f"  footprint model: predicted/observed ratio "
                       f"mean={sum(ratios) / len(ratios):.2f} "
                       f"min={min(ratios):.2f} max={max(ratios):.2f} "
                       f"over {len(ratios)} cells")
    else:
        out.append("  (no cells recorded)")

    hosts = summary.get("hosts") or {}
    if hosts:
        out.append("")
        out.append("hosts:")
        host_rows = [[host,
                      str(stats.get("connected", 0)),
                      str(stats.get("assigned", 0)),
                      str(stats.get("cells_done", 0)),
                      str(stats.get("losses", 0)),
                      str(stats.get("dropped", 0))]
                     for host, stats in sorted(hosts.items())]
        out.append(_table(["host", "connects", "assigned", "done",
                           "losses", "dropped"], host_rows))

    spans = summary.get("slowest_spans", [])
    if spans:
        out.append("")
        out.append(f"top {len(spans)} slowest spans:")
        span_rows = [[row.get("name") or "?",
                      f"{row.get('dur_s', 0.0):.3f}",
                      str(row.get("status", "?")),
                      str(row.get("target") if row.get("target")
                          is not None else "-")]
                     for row in spans]
        out.append(_table(["span", "dur_s", "status", "target"], span_rows))
    return "\n".join(out) + "\n"


def render_run(run_dir: str, *, top: int = 10) -> str:
    """The full plain-text report for one run directory."""
    return render_summary(run_summary(run_dir, top=top))


def report_summary(directory: str, *, top: int = 10) -> dict:
    """Every readable run under ``directory`` as one JSON-able object."""
    runs = find_runs(directory)
    if not runs:
        raise ReproError(
            f"no run manifests found under {directory!r} "
            f"(expected <dir>/<run-id>/manifest.json)")
    summaries = [s for s in (run_summary(run, top=top, strict=False)
                             for run in runs) if s is not None]
    if not summaries:
        raise ReproError(
            f"no readable run manifests under {directory!r} "
            f"({len(runs)} run directorie(s), all malformed)")
    return {"directory": directory, "runs": summaries}


def render_report(directory: str, *, top: int = 10,
                  stream: Optional[TextIO] = None,
                  as_json: bool = False) -> int:
    """Render every run under ``directory``; returns the run count."""
    summary = report_summary(directory, top=top)
    if as_json:
        text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    else:
        text = "\n".join(render_summary(s) for s in summary["runs"])
    if stream is not None:
        stream.write(text)
    return len(summary["runs"])
