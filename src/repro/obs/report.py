"""Render a finished run's telemetry into a human-readable report.

Backs the ``repro report`` subcommand: given a ``--telemetry`` directory
(or one run directory inside it), print for each run

* a header with run id, outcome, wall duration and counters,
* a per-cell table (status, attempts, shards, duration, rows, events/s,
  predicted-vs-observed footprint ratio, result digest),
* the top-N slowest spans from ``events.jsonl``.

Everything is plain text over the manifest and event stream — the same
artifacts the tests validate — so the report doubles as a smoke test
that a run's telemetry is complete and well-formed.
"""

from __future__ import annotations

import os
from typing import List, Optional, TextIO

from ..errors import ReproError
from .manifest import EVENTS_NAME, find_runs, load_manifest, validate_manifest
from .schema import iter_records


def _fmt_cell(cell) -> str:
    return "/".join(str(part) for part in cell)


def _fmt_num(value, fmt: str = "{:.2f}", missing: str = "-") -> str:
    if value is None:
        return missing
    return fmt.format(value)


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, col in enumerate(row):
            widths[i] = max(widths[i], len(col))
    def line(cols):
        return "  ".join(col.ljust(widths[i])
                         for i, col in enumerate(cols)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def slowest_spans(events_path: str, top: int = 10) -> List[dict]:
    """The ``top`` longest spans of an ``events.jsonl``, slowest first."""
    spans: List[dict] = []
    if not os.path.exists(events_path):
        return spans
    for _, record in iter_records(events_path):
        if record.get("kind") == "span":
            spans.append(record)
    spans.sort(key=lambda r: -float(r.get("dur_s", 0.0)))
    return spans[:top]


def render_run(run_dir: str, *, top: int = 10) -> str:
    """The full plain-text report for one run directory."""
    manifest = load_manifest(run_dir)
    validate_manifest(manifest)
    out: List[str] = []
    out.append(f"run {manifest['run_id']}  ({manifest['outcome']}, "
               f"{manifest['duration_s']:.2f}s)")
    if manifest.get("argv"):
        out.append(f"  argv: {' '.join(manifest['argv'])}")
    for trace in manifest.get("traces", ()):
        out.append(f"  trace: {trace.get('name')}  key={trace.get('trace_key')}"
                   f"  procs={trace.get('num_procs')}"
                   f"  events={trace.get('events')}")
    counters = manifest.get("counters", {})
    out.append("  counters: " + "  ".join(
        f"{name}={counters[name]}" for name in sorted(counters)))
    out.append("")

    cells = manifest.get("cells", [])
    if cells:
        rows = []
        ratios = []
        for entry in cells:
            ratio = entry.get("footprint_ratio")
            if ratio:
                ratios.append(ratio)
            rows.append([
                _fmt_cell(entry.get("cell", [])),
                str(entry.get("status", "?")),
                str(entry.get("attempts", 0)),
                str(entry.get("shards", 0)),
                _fmt_num(entry.get("duration_s"), "{:.3f}"),
                str(entry.get("rows", 0)),
                _fmt_num(entry.get("events_per_sec"), "{:.0f}"),
                _fmt_num(ratio, "{:.2f}"),
                str(entry.get("result_sha256") or "-"),
            ])
        out.append(_table(
            ["cell", "status", "att", "shards", "dur_s", "rows",
             "ev/s", "pred/obs", "result"], rows))
        if ratios:
            out.append("")
            out.append(f"  footprint model: predicted/observed ratio "
                       f"mean={sum(ratios) / len(ratios):.2f} "
                       f"min={min(ratios):.2f} max={max(ratios):.2f} "
                       f"over {len(ratios)} cells")
    else:
        out.append("  (no cells recorded)")

    spans = slowest_spans(os.path.join(run_dir, EVENTS_NAME), top=top)
    if spans:
        out.append("")
        out.append(f"top {len(spans)} slowest spans:")
        span_rows = []
        for record in spans:
            attrs = record.get("attrs", {})
            what = attrs.get("cell") or attrs.get("trace") or attrs.get("key")
            span_rows.append([
                record.get("name", "?"),
                f"{float(record.get('dur_s', 0.0)):.3f}",
                str(record.get("status", "?")),
                _fmt_cell(what) if isinstance(what, (list, tuple))
                else str(what if what is not None else "-"),
            ])
        out.append(_table(["span", "dur_s", "status", "target"], span_rows))
    return "\n".join(out) + "\n"


def render_report(directory: str, *, top: int = 10,
                  stream: Optional[TextIO] = None) -> int:
    """Render every run under ``directory``; returns the run count."""
    runs = find_runs(directory)
    if not runs:
        raise ReproError(
            f"no run manifests found under {directory!r} "
            f"(expected <dir>/<run-id>/manifest.json)")
    chunks = [render_run(run, top=top) for run in runs]
    text = "\n".join(chunks)
    if stream is not None:
        stream.write(text)
    return len(runs)
