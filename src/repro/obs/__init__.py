"""``repro.obs`` — zero-dependency run telemetry.

A process-local :class:`Recorder` emits structured JSONL records —
spans with monotonic durations, named metrics, lifecycle events and
bridged log records — validated against the checked-in
``telemetry.schema.json``.  :class:`RunTelemetry` scopes a recorder to a
run directory, folds the stream into a queryable ``manifest.json`` and
optionally drives a live stderr progress line; ``repro report`` renders
the result.  Instrumented call sites go through :func:`get_recorder`,
which returns the no-op :data:`NULL_RECORDER` unless a run is active, so
telemetry-off overhead stays within the benchmark gate.
"""

from .logsetup import (LIBRARY_LOGGER, configure_logging, console_level,
                       library_logger)
from .manifest import (MANIFEST_VERSION, RunTelemetry, current_run,
                       find_runs, load_manifest, manifest_stable_bytes,
                       manifest_stable_view, result_digest,
                       validate_manifest)
from .progress import ProgressLine, format_eta, format_rate
from .recorder import (NULL_RECORDER, SCHEMA_VERSION, NullRecorder,
                       Recorder, TelemetryLogHandler, get_recorder,
                       set_recorder, use_recorder)
from .report import render_report, render_run, slowest_spans
from .schema import (SCHEMA_PATH, TelemetrySchemaError, iter_records,
                     load_schema, summarize_kinds, validate_record,
                     validate_stream)


def worker_begin() -> "Recorder | None":
    """Enter child-process telemetry mode (called by pool workers).

    If the fork inherited an active recorder, replace it with a
    buffering child recorder whose records the worker ships back over
    the supervisor reply channel; the parent's :class:`RunTelemetry`
    stays owned by the parent alone.  Returns the child recorder, or
    ``None`` when telemetry is off.
    """
    from . import manifest as _manifest

    _manifest._current_run = None
    if not get_recorder().active:
        return None
    child = Recorder.buffering()
    set_recorder(child)
    return child


__all__ = [
    "LIBRARY_LOGGER", "MANIFEST_VERSION", "NULL_RECORDER", "NullRecorder",
    "ProgressLine", "Recorder", "RunTelemetry", "SCHEMA_PATH",
    "SCHEMA_VERSION", "TelemetryLogHandler", "TelemetrySchemaError",
    "configure_logging", "console_level", "current_run", "find_runs",
    "format_eta", "format_rate", "get_recorder", "iter_records",
    "library_logger", "load_manifest", "load_schema",
    "manifest_stable_bytes", "manifest_stable_view", "render_report",
    "render_run", "result_digest", "set_recorder", "slowest_spans",
    "summarize_kinds", "use_recorder", "validate_manifest",
    "validate_record", "validate_stream", "worker_begin",
]
