"""``repro.obs`` — zero-dependency run telemetry.

A process-local :class:`Recorder` emits structured JSONL records —
spans with monotonic durations, named metrics, lifecycle events and
bridged log records — validated against the checked-in
``telemetry.schema.json``.  Every record of a run carries trace ids
(``trace_id``/``span_id``/``parent_id``): spans opened in forked or
TCP-remote workers parent under the supervisor's ambient sweep span via
the context that rides each assign message, so ``repro trace``
(:mod:`repro.obs.tracing`) can reconstruct one causal tree per sweep
and attribute its critical path.  :class:`RunTelemetry` scopes a
recorder to a run directory, folds the stream into a queryable
``manifest.json`` and optionally drives a live stderr progress line;
``repro report`` renders the result, ``repro diff`` compares two runs,
and :mod:`repro.obs.history` keeps the cross-run perf trail.
Instrumented call sites go through :func:`get_recorder`, which returns
the no-op :data:`NULL_RECORDER` unless a run is active, so
telemetry-off overhead stays within the benchmark gate.
"""

from .history import (append_history, check_regressions, history_summary,
                      load_history, record_entry, record_run,
                      render_history)
from .logsetup import (LIBRARY_LOGGER, configure_logging, console_level,
                       library_logger)
from .manifest import (MANIFEST_VERSION, RunTelemetry, current_run,
                       find_runs, load_manifest, manifest_stable_bytes,
                       manifest_stable_view, result_digest,
                       validate_manifest)
from .progress import ProgressLine, format_eta, format_rate
from .recorder import (NULL_RECORDER, SCHEMA_VERSION, NullRecorder,
                       Recorder, TelemetryLogHandler, apply_trace_context,
                       get_recorder, new_span_id, set_recorder,
                       trace_context, use_recorder)
from .report import (render_report, render_run, render_summary,
                     report_summary, run_summary, slowest_spans)
from .schema import (SCHEMA_PATH, TelemetrySchemaError, iter_records,
                     load_schema, summarize_kinds, validate_record,
                     validate_stream)
from .tracing import (build_tree, critical_path, diff_manifests, diff_runs,
                      load_tree, path_contributors, render_diff,
                      render_trace, trace_summary)


def worker_begin() -> "Recorder | None":
    """Enter child-process telemetry mode (called by pool workers).

    If the fork inherited an active recorder, replace it with a
    buffering child recorder whose records the worker ships back over
    the supervisor reply channel; the parent's :class:`RunTelemetry`
    stays owned by the parent alone.  Returns the child recorder, or
    ``None`` when telemetry is off.
    """
    from . import manifest as _manifest

    _manifest._current_run = None
    if not get_recorder().active:
        return None
    child = Recorder.buffering()
    set_recorder(child)
    return child


__all__ = [
    "LIBRARY_LOGGER", "MANIFEST_VERSION", "NULL_RECORDER", "NullRecorder",
    "ProgressLine", "Recorder", "RunTelemetry", "SCHEMA_PATH",
    "SCHEMA_VERSION", "TelemetryLogHandler", "TelemetrySchemaError",
    "append_history", "apply_trace_context", "build_tree",
    "check_regressions", "configure_logging", "console_level",
    "critical_path", "current_run", "diff_manifests", "diff_runs",
    "find_runs", "format_eta", "format_rate", "get_recorder",
    "history_summary", "iter_records", "library_logger", "load_history",
    "load_manifest", "load_schema", "load_tree", "manifest_stable_bytes",
    "manifest_stable_view", "new_span_id", "path_contributors",
    "record_entry", "record_run", "render_diff", "render_history",
    "render_report", "render_run", "render_summary", "render_trace",
    "report_summary", "result_digest", "run_summary", "set_recorder",
    "slowest_spans", "summarize_kinds", "trace_context", "trace_summary",
    "use_recorder", "validate_manifest", "validate_record",
    "validate_stream", "worker_begin",
]
