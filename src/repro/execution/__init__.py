"""Simulated multiprocessor: scheduler, instruction set, sync primitives."""

from .ops import (
    BLOCK,
    MEM,
    SYNC,
    acquire_event,
    block_until,
    load,
    load_region,
    load_words,
    read_modify_write,
    release_event,
    store,
    store_region,
    store_words,
    update_region,
)
from .primitives import Barrier, Flag, Lock, make_flags
from .scheduler import Machine, run_threads

__all__ = [
    "BLOCK",
    "Barrier",
    "Flag",
    "Lock",
    "MEM",
    "Machine",
    "SYNC",
    "acquire_event",
    "block_until",
    "load",
    "load_region",
    "load_words",
    "make_flags",
    "read_modify_write",
    "release_event",
    "run_threads",
    "store",
    "store_region",
    "store_words",
    "update_region",
]
