"""ANL-macro-style synchronization primitives.

The paper's benchmarks use the Argonne National Laboratory (ANL) macro
package for synchronization, and section 6 attributes measurable false
sharing to its implementation details — in particular the barrier's
*counter and flag stored in consecutive memory words*.  These primitives
reproduce those memory footprints while emitting the ``ACQUIRE``/``RELEASE``
events the delayed protocols (RD/SD/SRD) schedule on.

Modeling choice: no spin loads
------------------------------
A real trace of a spinning processor contains an unbounded number of loads
of the lock/flag word.  We model waiting with the scheduler's ``block``
operation instead and emit a *bounded* footprint per operation (the
test-and-set pair for locks, one load for flag waits).  This keeps traces
finite and race-free under the happens-before checker while preserving the
property the paper relies on: synchronization words are write-shared by all
participants and sit next to each other in memory, so they cause coherence
and false-sharing misses.  The effect of dropping the redundant spin re-loads
is to *undercount hits*, which only raises the reported miss rates uniformly
across protocols; classifications and protocol orderings are unaffected.

Every primitive method is a generator to be driven with ``yield from``
inside a thread body, e.g.::

    def worker(tid):
        yield from lock.acquire(tid)
        yield from ops.update_region(shared)
        yield from lock.release(tid)
        yield from barrier.wait(tid)
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import SimulationError
from ..mem.allocator import Allocator, Region
from ..mem.layout import ANL_BARRIER, ANL_LOCK, StructLayout, padded_layout
from ..trace.events import LOAD, STORE
from .ops import MEM, Op, acquire_event, block_until, release_event


class Lock:
    """A test-and-set spin lock occupying one memory word.

    Memory footprint per acquire: one load + one store of the lock word
    (the successful test-and-set), preceded by an ``ACQUIRE`` event.
    Per release: one store of the lock word followed by a ``RELEASE`` event.
    """

    def __init__(self, name: str, allocator: Allocator,
                 *, layout: StructLayout = ANL_LOCK):
        self.name = name
        self.region: Region = allocator.alloc_bytes(name, layout.nbytes)
        self.addr: int = self.region.base
        self._holder: Optional[int] = None

    def acquire(self, tid: int) -> Iterator[Op]:
        """Block until free, then take the lock."""
        yield block_until(lambda: self._holder is None)
        if self._holder is not None:  # pragma: no cover - scheduler guarantees
            raise SimulationError(f"lock {self.name!r} handed to {tid} while held")
        self._holder = tid
        yield acquire_event(self.addr)
        yield (MEM, LOAD, self.addr)    # test
        yield (MEM, STORE, self.addr)   # and set

    def release(self, tid: int) -> Iterator[Op]:
        """Release the lock; caller must hold it."""
        if self._holder != tid:
            raise SimulationError(
                f"thread {tid} releasing lock {self.name!r} held by {self._holder}")
        yield (MEM, STORE, self.addr)   # clear the lock word
        yield release_event(self.addr)
        self._holder = None

    @property
    def holder(self) -> Optional[int]:
        """Current holder's thread id, or None."""
        return self._holder


class Barrier:
    """ANL-style centralized sense-reversing barrier.

    Layout: a counter word and a flag word in *consecutive* memory locations
    (``ANL_BARRIER``), plus a protecting lock allocated immediately after —
    this adjacency is the false-sharing source the paper identifies at
    8-byte blocks.  Pass ``padded=True`` (ablation benchmarks) to pad the
    counter/flag pair to a block boundary.

    Per arrival the footprint is: lock acquire, read-modify-write of the
    counter, lock release; then either a store of the flag plus a
    ``RELEASE`` of it (the last arriver) or an ``ACQUIRE`` of the flag plus
    a load of it (everyone else, after unblocking).
    """

    def __init__(self, name: str, allocator: Allocator, num_threads: int,
                 *, padded: bool = False, pad_bytes: int = 64):
        if num_threads <= 0:
            raise SimulationError(f"barrier {name!r} needs >= 1 thread")
        layout = padded_layout(ANL_BARRIER, pad_bytes) if padded else ANL_BARRIER
        self.name = name
        self.num_threads = num_threads
        self.region = allocator.alloc_bytes(name, layout.nbytes)
        self.counter_addr = layout.field_word(self.region, "counter")
        self.flag_addr = layout.field_word(self.region, "flag")
        self.lock = Lock(f"{name}.lock", allocator)
        if padded:
            # The ablation pads the whole sync footprint: the protecting
            # lock word must not share a block with whatever the program
            # allocates next.
            allocator.pad_to(pad_bytes)
        self._count = 0
        self._sense = False   # value of the flag all current waiters wait for
        self._episodes = 0

    def wait(self, tid: int) -> Iterator[Op]:
        """Arrive at the barrier; returns when all threads have arrived."""
        local_sense = not self._sense
        yield from self.lock.acquire(tid)
        yield (MEM, LOAD, self.counter_addr)
        yield (MEM, STORE, self.counter_addr)
        self._count += 1
        last = self._count == self.num_threads
        if last:
            self._count = 0
            self._episodes += 1
        yield from self.lock.release(tid)
        if last:
            yield (MEM, STORE, self.flag_addr)
            yield release_event(self.flag_addr)
            # Flip the sense only after the RELEASE event is in the trace so
            # waiters' ACQUIRE events sort after it (keeps the trace
            # race-free under the happens-before checker).
            self._sense = local_sense
        else:
            yield block_until(lambda: self._sense == local_sense)
            yield acquire_event(self.flag_addr)
            yield (MEM, LOAD, self.flag_addr)

    @property
    def episodes(self) -> int:
        """Number of completed barrier episodes."""
        return self._episodes


class Flag:
    """One-shot produced/consumed flag (pause/continue in ANL terms).

    LU uses this pattern: a consumer waits until a column's flag is set by
    its producer.  ``set`` stores the flag word then emits ``RELEASE``;
    ``wait`` blocks, emits ``ACQUIRE``, then loads the word — giving the
    happens-before edge that makes the consumer's reads race-free.
    """

    def __init__(self, name: str, allocator: Allocator,
                 *, region: Optional[Region] = None, addr: Optional[int] = None):
        self.name = name
        if addr is not None:
            self.addr = addr
        else:
            self.region = region or allocator.alloc_bytes(name, 4)
            self.addr = self.region.base
        self._set = False

    def set(self, tid: int) -> Iterator[Op]:
        """Publish: store the flag and release it."""
        yield (MEM, STORE, self.addr)
        yield release_event(self.addr)
        self._set = True

    def wait(self, tid: int) -> Iterator[Op]:
        """Block until published, then acquire + load the flag word."""
        if not self._set:
            yield block_until(lambda: self._set)
        yield acquire_event(self.addr)
        yield (MEM, LOAD, self.addr)

    @property
    def is_set(self) -> bool:
        return self._set


def make_flags(prefix: str, allocator: Allocator, count: int) -> List[Flag]:
    """Allocate ``count`` adjacent one-word flags (e.g. LU column flags)."""
    region = allocator.alloc_words(prefix, count)
    return [Flag(f"{prefix}[{i}]", allocator, addr=region.base + i)
            for i in range(count)]
