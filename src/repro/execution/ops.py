"""The tiny instruction set interpreted by the simulated multiprocessor.

Workload *threads* are Python generators.  Each ``yield`` hands the
scheduler one operation tuple:

``("mem", op, addr)``
    Perform a data reference (``op`` is LOAD or STORE).  Costs one cycle.
``("sync", op, addr)``
    Emit a synchronization event (``op`` is ACQUIRE or RELEASE).  Costs one
    cycle.
``("block", predicate)``
    Do not proceed until ``predicate()`` is true.  Blocked cycles cost time
    (they extend the execution) but emit no events — the simulator models
    waiting without flooding the trace with spin loads, a deliberate and
    documented deviation from a raw hardware trace (see
    :mod:`repro.execution.primitives`).

Helper constructors below keep workload code readable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Tuple

from ..mem.allocator import Region
from ..trace.events import ACQUIRE, LOAD, RELEASE, STORE

MEM = "mem"
SYNC = "sync"
BLOCK = "block"

Op = Tuple


def load(addr: int) -> Op:
    """One-word load."""
    return (MEM, LOAD, addr)


def store(addr: int) -> Op:
    """One-word store."""
    return (MEM, STORE, addr)


def acquire_event(addr: int) -> Op:
    """Raw ACQUIRE event (used by the sync primitives)."""
    return (SYNC, ACQUIRE, addr)


def release_event(addr: int) -> Op:
    """Raw RELEASE event (used by the sync primitives)."""
    return (SYNC, RELEASE, addr)


def block_until(predicate: Callable[[], bool]) -> Op:
    """Stall the processor until ``predicate()`` becomes true."""
    return (BLOCK, predicate)


# ----------------------------------------------------------------------
# bulk access helpers over words and regions
# ----------------------------------------------------------------------
def load_words(addrs: Iterable[int]) -> Iterator[Op]:
    """Load every word address in ``addrs``."""
    for a in addrs:
        yield (MEM, LOAD, a)


def store_words(addrs: Iterable[int]) -> Iterator[Op]:
    """Store every word address in ``addrs``."""
    for a in addrs:
        yield (MEM, STORE, a)


def load_region(region: Region) -> Iterator[Op]:
    """Load every word of a region."""
    return load_words(range(region.base, region.end))


def store_region(region: Region) -> Iterator[Op]:
    """Store every word of a region."""
    return store_words(range(region.base, region.end))


def read_modify_write(addr: int) -> Iterator[Op]:
    """Load then store one word (e.g. ``x += ...``)."""
    yield (MEM, LOAD, addr)
    yield (MEM, STORE, addr)


def update_region(region: Region) -> Iterator[Op]:
    """Read-modify-write every word of a region."""
    for a in range(region.base, region.end):
        yield (MEM, LOAD, a)
        yield (MEM, STORE, a)
