"""Cycle-based cooperative scheduler for simulated parallel programs.

A :class:`Machine` runs one generator *thread* per processor.  Time advances
in cycles; in each cycle every non-blocked processor executes exactly one
event-producing operation (loads, stores, acquires, releases each take one
cycle — the "perfect memory system" of the paper's Table 2 speedup
definition).  Blocked processors consume the cycle without emitting events.

The interleaving produced is deterministic for a given ``order`` policy and
seed, which is the point: the paper switched from execution-driven to
trace-driven simulation precisely so all protocols see the same interleaved
trace (section 5.0).  The machine produces that trace once; the protocol
simulators then replay it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..errors import DeadlockError, SimulationError
from ..trace.events import ACQUIRE, LOAD, RELEASE, STORE
from ..trace.trace import Trace
from .ops import BLOCK, MEM, SYNC

ThreadBody = Iterator  # a generator yielding ops


class _ThreadState:
    __slots__ = ("gen", "blocked_on", "done", "events_executed")

    def __init__(self, gen: ThreadBody):
        self.gen = gen
        self.blocked_on: Optional[Callable[[], bool]] = None
        self.done = False
        self.events_executed = 0


class Machine:
    """A simulated ``num_procs``-processor shared-memory machine.

    Parameters
    ----------
    num_procs:
        Number of processors; thread ``i`` runs on processor ``i``.
    order:
        Per-cycle processor scan order: ``"rotate"`` (default — start the
        scan one processor later each cycle, a fair round-robin), ``"fixed"``
        (always scan 0..N-1) or ``"random"`` (seeded shuffle each cycle).
    seed:
        Seed for the ``"random"`` order policy.
    """

    def __init__(self, num_procs: int, *, order: str = "rotate", seed: int = 0):
        if num_procs <= 0:
            raise SimulationError(f"num_procs must be positive, got {num_procs}")
        if order not in ("rotate", "fixed", "random"):
            raise SimulationError(f"unknown order policy {order!r}")
        self.num_procs = num_procs
        self.order = order
        self.seed = seed

    def run(self, threads: Sequence[ThreadBody], *, name: str = "",
            meta: Optional[dict] = None, max_cycles: int = 200_000_000) -> Trace:
        """Run the threads to completion and return the interleaved trace.

        ``threads[i]`` runs on processor ``i``; fewer threads than
        processors is allowed (idle processors emit nothing).
        """
        if len(threads) > self.num_procs:
            raise SimulationError(
                f"{len(threads)} threads for {self.num_procs} processors")
        states: Dict[int, _ThreadState] = {
            i: _ThreadState(gen) for i, gen in enumerate(threads)}
        events: List[tuple] = []
        rng = random.Random(self.seed)
        cycles = 0
        live = [i for i in states]

        while live:
            if cycles >= max_cycles:
                raise SimulationError(
                    f"execution exceeded {max_cycles} cycles "
                    f"({len(events)} events so far)")
            scan = self._scan_order(live, cycles, rng)
            progressed = False
            all_blocked = True
            for proc in scan:
                state = states[proc]
                if state.done:
                    continue
                emitted = self._step(proc, state, events)
                if emitted:
                    progressed = True
                if state.blocked_on is None:
                    all_blocked = False
            live = [i for i in live if not states[i].done]
            # A cycle in which nothing ran and nobody is left (the scan that
            # merely discovered termination) costs no simulated time.
            if progressed or live:
                cycles += 1
            if live and not progressed and all_blocked:
                # A thread may have unblocked, run non-emitting code that
                # satisfied someone else's predicate (e.g. a flag set) and
                # re-blocked, all within this cycle.  Re-evaluate before
                # declaring deadlock: only a cycle where every live thread
                # is blocked on a *currently false* predicate is stuck.
                if not any(states[i].blocked_on is not None
                           and states[i].blocked_on() for i in live):
                    raise DeadlockError(
                        f"deadlock at cycle {cycles}: processors {live} all "
                        f"blocked ({len(events)} events emitted)")

        full_meta = dict(meta or {})
        full_meta.setdefault("cycles", cycles)
        full_meta.setdefault("num_procs", self.num_procs)
        return Trace(events, self.num_procs, name=name, meta=full_meta,
                     validate=False, copy=False)

    # ------------------------------------------------------------------
    def _scan_order(self, live: List[int], cycle: int,
                    rng: random.Random) -> List[int]:
        if self.order == "fixed" or len(live) == 1:
            return live
        if self.order == "rotate":
            k = cycle % len(live)
            return live[k:] + live[:k]
        shuffled = list(live)
        rng.shuffle(shuffled)
        return shuffled

    def _step(self, proc: int, state: _ThreadState, events: List[tuple]) -> bool:
        """Advance one processor by at most one event; True if one was emitted."""
        # A blocked processor re-evaluates its predicate; if still false the
        # cycle is spent waiting.
        if state.blocked_on is not None:
            if not state.blocked_on():
                return False
            state.blocked_on = None
        while True:
            try:
                op = next(state.gen)
            except StopIteration:
                state.done = True
                return False
            kind = op[0]
            if kind == MEM:
                _, memop, addr = op
                if memop not in (LOAD, STORE):
                    raise SimulationError(f"bad mem op {op!r} from P{proc}")
                events.append((proc, memop, addr))
                state.events_executed += 1
                return True
            if kind == SYNC:
                _, syncop, addr = op
                if syncop not in (ACQUIRE, RELEASE):
                    raise SimulationError(f"bad sync op {op!r} from P{proc}")
                events.append((proc, syncop, addr))
                state.events_executed += 1
                return True
            if kind == BLOCK:
                predicate = op[1]
                if predicate():
                    # Not actually blocked: fall through and pull the next
                    # op within the same cycle (blocking is free when the
                    # condition already holds).
                    continue
                state.blocked_on = predicate
                return False
            raise SimulationError(f"unknown op {op!r} from P{proc}")


def run_threads(num_procs: int, thread_factory: Callable[[int], ThreadBody],
                *, name: str = "", meta: Optional[dict] = None,
                order: str = "rotate", seed: int = 0) -> Trace:
    """Convenience wrapper: build one thread per processor and run.

    ``thread_factory(tid)`` must return a fresh generator for thread ``tid``.
    """
    machine = Machine(num_procs, order=order, seed=seed)
    threads = [thread_factory(tid) for tid in range(num_procs)]
    return machine.run(threads, name=name, meta=meta)
