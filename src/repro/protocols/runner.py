"""Protocol run drivers and the public registry.

The registry order matches the paper's Figure 6 legend: MIN first (the
essential bound), then OTF, the delayed protocols, WBWI and MAX last (the
worst case).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ProtocolError
from ..mem.addresses import BlockMap
from ..trace.trace import Trace
from .base import PROTOCOL_REGISTRY, Protocol
from .results import ProtocolResult

# Importing the submodules populates PROTOCOL_REGISTRY.
from . import min_wt as _min_wt          # noqa: F401
from . import otf as _otf                # noqa: F401
from . import rd as _rd                  # noqa: F401
from . import sd as _sd                  # noqa: F401
from . import srd as _srd                # noqa: F401
from . import wbwi as _wbwi              # noqa: F401
from . import maxsched as _maxsched      # noqa: F401
from . import update as _update          # noqa: F401

#: The paper's protocol line-up, in presentation order.
ALL_PROTOCOLS = ("MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX")


def protocol_names() -> List[str]:
    """Names of all registered protocols, in presentation order."""
    ordered = [name for name in ALL_PROTOCOLS if name in PROTOCOL_REGISTRY]
    extras = sorted(set(PROTOCOL_REGISTRY) - set(ordered))
    return ordered + extras


def make_protocol(name: str, num_procs: int, block_map: BlockMap) -> Protocol:
    """Instantiate a registered protocol by name."""
    try:
        cls = PROTOCOL_REGISTRY[name]
    except KeyError:
        raise ProtocolError(
            f"unknown protocol {name!r}; known: {protocol_names()}") from None
    return cls(num_procs, block_map)


def run_protocol(name: str, trace: Trace, block_bytes: int) -> ProtocolResult:
    """Run one protocol over a trace at one block size."""
    protocol = make_protocol(name, trace.num_procs, BlockMap(block_bytes))
    return protocol.run(trace)


def run_protocols(trace: Trace, block_bytes: int,
                  names: Optional[Iterable[str]] = None,
                  *, jobs: int = 1,
                  options=None) -> Dict[str, ProtocolResult]:
    """Run several protocols over the same trace.

    Defaults to the paper's seven schedules (:data:`ALL_PROTOCOLS`);
    extension protocols (WU, CU, ...) must be requested by name.  Returns
    ``{name: result}`` in the given order — the data behind one
    benchmark's group of bars in the paper's Figure 6.

    All protocols share the trace's decoded event list (it is materialized
    at most once), and ``jobs > 1`` fans the protocols out over supervised
    worker processes via the sweep engine.  ``options`` (an
    :class:`repro.analysis.engine.ExecutionOptions`) routes execution
    through the engine even at ``jobs=1`` so retries/checkpointing apply.
    """
    chosen = list(names) if names is not None else list(ALL_PROTOCOLS)
    if jobs != 1 or options is not None:
        # Deferred import: repro.analysis builds on repro.protocols.
        from ..analysis.engine import SweepEngine

        kwargs = options.engine_kwargs() if options is not None else {}
        grid = SweepEngine(trace, jobs=jobs,
                           **kwargs).protocol_grid((block_bytes,), chosen)
        return {name: grid[(block_bytes, name)] for name in chosen}
    return {name: run_protocol(name, trace, block_bytes) for name in chosen}


def run_protocol_grid(trace: Trace, block_sizes: Iterable[int],
                      names: Optional[Iterable[str]] = None,
                      *, jobs: int = 1,
                      options=None) -> Dict[tuple, ProtocolResult]:
    """Run a (block size × protocol) grid over one shared trace.

    Returns ``{(block_bytes, name): result}``.  This is the batched form of
    :func:`run_protocols` behind Figure 6a+6b-style experiments: the trace
    is decoded once and every cell fans out over ``jobs`` workers.
    """
    from ..analysis.engine import SweepEngine

    chosen = list(names) if names is not None else list(ALL_PROTOCOLS)
    kwargs = options.engine_kwargs() if options is not None else {}
    return SweepEngine(trace, jobs=jobs,
                       **kwargs).protocol_grid(tuple(block_sizes), chosen)
