"""Update-based protocols (paper section 8.0, future work).

"At this level of traffic, delayed write-broadcast or delayed protocols
with competitive updates, which can reduce the number of essential misses,
may become attractive."

Two extension protocols beyond the paper's seven:

WU (write-update / write-broadcast)
    Stores never invalidate: every cached copy receives the new word.
    Coherence misses disappear entirely — only cold misses remain, *below*
    the write-invalidate essential rate (the essential rate is the minimum
    for invalidation-based protocols; updates communicate without
    re-fetching).  The price is a word-update message per sharer per
    store, which is what made pure update protocols unattractive.

CU (competitive update)
    Like WU, but each cached copy self-invalidates after receiving
    ``threshold`` consecutive updates without a local access (the classic
    competitive-snooping rule).  Tunes between WU (threshold = infinity)
    and invalidate-like behaviour (threshold = 1), trading update traffic
    against misses.

Both are registered (names "WU", "CU") but are not part of
:data:`~repro.protocols.runner.ALL_PROTOCOLS` — they extend the paper's
line-up rather than reproduce it.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from .base import Protocol, register


@register
class WUProtocol(Protocol):
    """Write-update: stores broadcast the word to every cached copy."""

    name = "WU"

    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)
        self.tracker.store_performed(proc, addr)
        # Push the new word into every remote copy: those caches now hold
        # the current value, so the update *delivers* it (the tracker's
        # known-version bookkeeping), costing one word message per sharer.
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            self.counters.write_throughs += 1
            self.tracker.deliver_word(q, addr)


@register
class CUProtocol(Protocol):
    """Competitive update: update until ``threshold`` unused updates, then

    self-invalidate the copy."""

    name = "CU"

    #: Default competitive threshold (classic snoopy-competitive value 4).
    DEFAULT_THRESHOLD = 4

    def __init__(self, num_procs, block_map, threshold: int = DEFAULT_THRESHOLD):
        super().__init__(num_procs, block_map)
        if threshold < 1:
            raise ConfigError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        # unused_updates[block]: per-proc count of updates received since
        # the processor last touched the block.
        self._unused: Dict[int, List[int]] = {}

    def _touch(self, proc: int, block: int) -> None:
        row = self._unused.get(block)
        if row is not None:
            row[proc] = 0

    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self._touch(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self._touch(proc, block)
        self.tracker.access(proc, addr)
        self.tracker.store_performed(proc, addr)
        row = self._unused.get(block)
        if row is None:
            row = [0] * self.num_procs
            self._unused[block] = row
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            row[q] += 1
            if row[q] >= self.threshold:
                # Competitive rule: this copy is not being used — stop
                # paying update traffic and drop it.
                self.drop_copy(q, block)
                row[q] = 0
            else:
                self.counters.write_throughs += 1
                self.tracker.deliver_word(q, addr)
