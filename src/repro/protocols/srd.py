"""SRD — the Send and Receive Delayed protocol (paper section 4.0).

Combines SD and RD: stores to non-owned blocks are buffered at the sender
until its next ``release`` (send combining), and invalidations are buffered
at each receiver until its next ``acquire`` (receive combining).  This is
the most aggressive legal schedule under release consistency and the best
protocol of the paper's Figure 6b — though still short of MIN at B=1024
because ownership must be maintained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .base import Protocol, register


@register
class SRDProtocol(Protocol):
    """Send-delayed + receive-delayed invalidations."""

    name = "SRD"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        self._owner: Dict[int, Optional[int]] = {}
        # Sender side: proc -> {block: buffered word addresses}.
        self._store_buffer: List[Dict[int, Set[int]]] = [
            dict() for _ in range(num_procs)]
        # Receiver side: proc -> blocks with a pending received invalidation.
        self._pending: List[Set[int]] = [set() for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        # Reading a stale copy is legal until the next acquire.
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        pending = self._pending[proc]
        if block in pending:
            # Ownership: must write into a current copy.
            self.counters.ownership_misses += 1
            self.drop_copy(proc, block)
            pending.discard(block)
            self.fetch(proc, block)
        else:
            self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)
        if self._owner.get(block) == proc:
            self._perform_store(proc, block, (addr,))
        else:
            buffered = self._store_buffer[proc].setdefault(block, set())
            if buffered:
                self.counters.stores_combined += 1
            buffered.add(addr)
            self.counters.stores_buffered += 1

    def on_acquire(self, proc: int, addr: int) -> None:
        pending = self._pending[proc]
        if pending:
            for block in pending:
                if self.has_copy(proc, block):
                    self.drop_copy(proc, block)
            pending.clear()

    def on_release(self, proc: int, addr: int) -> None:
        self._flush(proc)

    def on_end(self) -> None:
        for proc in range(self.num_procs):
            self._flush(proc)

    # ------------------------------------------------------------------
    def _flush(self, proc: int) -> None:
        buffer = self._store_buffer[proc]
        if not buffer:
            return
        self._store_buffer[proc] = {}
        for block, words in buffer.items():
            self._perform_store(proc, block, sorted(words))

    def _perform_store(self, proc: int, block: int, words) -> None:
        """Perform stores: mark remote copies pending-invalid, own block."""
        if self._owner.get(block) != proc:
            if self._owner.get(block) is not None:
                self.counters.ownership_transfers += 1
            self._owner[block] = proc
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            qp = self._pending[q]
            if block not in qp:
                qp.add(block)
            self.counters.invalidations_sent += 1
        for w in words:
            self.tracker.store_performed(proc, w)
