"""OTF — the On-The-Fly write-invalidate protocol (paper section 4.0).

Every reference is simulated one by one; a store invalidates all remote
copies immediately.  This is "the miss rate usually derived when using
trace-driven simulations" and the baseline every delayed schedule is
compared against.

A store to a block the processor already caches in shared state is an
ownership upgrade, not a miss (infinite caches, no bus model); the remote
copies are still invalidated.
"""

from __future__ import annotations

from .base import Protocol, register


@register
class OTFProtocol(Protocol):
    """Plain write-invalidate with immediate invalidations."""

    name = "OTF"

    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)
        # Invalidate every remote copy, ending those lifetimes now.
        others = self.copies_other_than(proc, block)
        if others:
            for q in self.iter_procs(others):
                self.counters.invalidations_sent += 1
                self.drop_copy(q, block)
        self.tracker.store_performed(proc, addr)
