"""WBWI — write-back with word invalidate (paper sections 2.2 and 4.0).

Identical to MIN for loads (a dirty bit per word; a local access to a
word-invalidated word misses), but write-back: a store requires *ownership*
of the block.  Per section 2.2: "Stores accessing non-owned blocks with a
pending invalidation for ANY one of its words in the local invalidation
buffer must trigger a miss.  These additional misses are the cost of
maintaining ownership."

WBWI − MIN therefore isolates the ownership cost, which the paper finds
negligible at B=64 and large at B=1024 (Figure 6); the ablation benchmark
``bench_ablation_ownership.py`` reproduces that comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Protocol, register


@register
class WBWIProtocol(Protocol):
    """Write-back word-invalidate with block ownership."""

    name = "WBWI"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        self._pending: Dict[int, List[int]] = {}
        # owner[block]: processor id owning the block, or None.
        self._owner: Dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------
    def _load_like_access(self, proc: int, addr: int) -> None:
        """MIN-style access: miss on absent copy or word-invalidated word."""
        block = self.block_map.block_of(addr)
        pending = self._pending.get(block)
        if self.has_copy(proc, block):
            if pending is not None and pending[proc] & (
                    1 << self.block_map.word_offset(addr)):
                self.drop_copy(proc, block)
                pending[proc] = 0
                self.fetch(proc, block)
        else:
            self.fetch(proc, block)
            if pending is not None:
                pending[proc] = 0

    def on_load(self, proc: int, addr: int) -> None:
        self._load_like_access(proc, addr)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        pending = self._pending.get(block)
        if self.has_copy(proc, block):
            word_bit = 1 << self.block_map.word_offset(addr)
            mine = pending[proc] if pending is not None else 0
            if mine & word_bit:
                # Accessing an invalidated word: ordinary MIN-style miss.
                self.drop_copy(proc, block)
                pending[proc] = 0
                self.fetch(proc, block)
            elif mine and self._owner.get(block) != proc:
                # Ownership rule: storing to a non-owned block whose local
                # buffer holds a pending invalidation for ANY word forces a
                # miss — the pure cost of maintaining ownership.
                self.counters.ownership_misses += 1
                self.drop_copy(proc, block)
                pending[proc] = 0
                self.fetch(proc, block)
        else:
            self.fetch(proc, block)
            if pending is not None:
                pending[proc] = 0
        self.tracker.access(proc, addr)

        if self._owner.get(block) != proc:
            if self._owner.get(block) is not None:
                self.counters.ownership_transfers += 1
            self._owner[block] = proc
        # Propagate the word invalidation to every remote copy.
        if pending is None:
            pending = [0] * self.num_procs
            self._pending[block] = pending
        offset_bit = 1 << self.block_map.word_offset(addr)
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            pending[q] |= offset_bit
            self.counters.word_invalidations += 1
        self.tracker.store_performed(proc, addr)
