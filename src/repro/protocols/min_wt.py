"""MIN — write-through with word invalidation (paper sections 2.2 and 4.0).

The protocol that achieves exactly the essential miss rate of the trace:

* every store is written through to memory, and the *word* address is sent
  to every processor caching the block, where it is buffered (a dirty bit
  per word of each cached block — the "invalidation buffer");
* a local access to a word whose dirty bit is set invalidates the block
  copy and triggers a miss (necessarily a true-sharing miss: the access
  consumes a value defined remotely);
* blocks never need ownership (write-through), so no ownership misses.

The integration tests assert ``MIN misses == DuboisClassifier essential``
on every workload — the two implementations are independent, so this is a
strong cross-check of both (the paper: "its miss rate is the essential miss
rate of the trace").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Protocol, register


@register
class MINProtocol(Protocol):
    """Write-through, word-invalidate, no ownership."""

    name = "MIN"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        # pending[block]: per-processor word-offset masks of buffered word
        # invalidations ("dirty bits"); None until the block sees a store.
        self._pending: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def _access(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        pending = self._pending.get(block)
        if self.has_copy(proc, block):
            if pending is not None and pending[proc] & (
                    1 << self.block_map.word_offset(addr)):
                # The accessed word has a buffered invalidation: invalidate
                # the copy and take the (true sharing) miss.
                self.drop_copy(proc, block)
                pending[proc] = 0
                self.fetch(proc, block)
        else:
            self.fetch(proc, block)
            if pending is not None:
                pending[proc] = 0
        self.tracker.access(proc, addr)

    def on_load(self, proc: int, addr: int) -> None:
        self._access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        self._access(proc, addr)
        block = self.block_map.block_of(addr)
        offset_bit = 1 << self.block_map.word_offset(addr)
        pending = self._pending.get(block)
        if pending is None:
            pending = [0] * self.num_procs
            self._pending[block] = pending
        # Write through, and buffer the word address at every remote copy.
        self.counters.write_throughs += 1
        others = self.copies_other_than(proc, block)
        for q in self.iter_procs(others):
            pending[q] |= offset_bit
            self.counters.word_invalidations += 1
        self.tracker.store_performed(proc, addr)
