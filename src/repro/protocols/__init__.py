"""Invalidation-schedule simulators: MIN, OTF, RD, SD, SRD, WBWI, MAX,

plus the finite-cache extension.  See paper section 4.0."""

from .base import PROTOCOL_REGISTRY, Protocol, register
from .finite import FiniteOTFProtocol
from .lifetime import LifetimeTracker
from .maxsched import MAXSchedule
from .min_wt import MINProtocol
from .otf import OTFProtocol
from .rd import RDProtocol
from .results import Counters, ProtocolResult
from .runner import (
    ALL_PROTOCOLS,
    make_protocol,
    protocol_names,
    run_protocol,
    run_protocol_grid,
    run_protocols,
)
from .sd import SDProtocol
from .sector import SectorProtocol, sector_sweep_sizes
from .traffic import Traffic, TrafficModel, estimate_traffic, traffic_per_reference
from .update import CUProtocol, WUProtocol
from .srd import SRDProtocol
from .wbwi import WBWIProtocol

__all__ = [
    "ALL_PROTOCOLS",
    "Counters",
    "FiniteOTFProtocol",
    "LifetimeTracker",
    "MAXSchedule",
    "MINProtocol",
    "OTFProtocol",
    "PROTOCOL_REGISTRY",
    "Protocol",
    "ProtocolResult",
    "RDProtocol",
    "SDProtocol",
    "SectorProtocol",
    "SRDProtocol",
    "CUProtocol",
    "Traffic",
    "TrafficModel",
    "WBWIProtocol",
    "WUProtocol",
    "estimate_traffic",
    "traffic_per_reference",
    "make_protocol",
    "protocol_names",
    "register",
    "run_protocol",
    "run_protocol_grid",
    "run_protocols",
    "sector_sweep_sizes",
]
