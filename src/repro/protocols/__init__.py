"""Invalidation-schedule simulators: MIN, OTF, RD, SD, SRD, WBWI, MAX,

plus the finite-cache extension.  See paper section 4.0."""

from .base import PROTOCOL_REGISTRY, Protocol, register
from .finite import (
    FiniteOTFProtocol,
    cache_geometry,
    finite_spec,
    parse_finite_spec,
)
from .lifetime import LifetimeTracker
from .maxsched import MAXSchedule
from .min_wt import MINProtocol
from .otf import OTFProtocol
from .rd import RDProtocol
from .results import Counters, ProtocolResult, merge_shard_results
from .runner import (
    ALL_PROTOCOLS,
    make_protocol,
    protocol_names,
    run_protocol,
    run_protocol_grid,
    run_protocols,
)
from .sd import SDProtocol
from .sharding import (
    BY_BLOCK,
    SHARDABLE_PROTOCOLS,
    PartitionDim,
    ShardPlan,
    by_cache_set,
    plan_for_trace,
    plan_shards,
    run_finite_shard,
    run_finite_sharded,
    run_protocol_shard,
    run_protocol_sharded,
    shard_subtrace,
)
from .sector import SectorProtocol, sector_sweep_sizes
from .traffic import Traffic, TrafficModel, estimate_traffic, traffic_per_reference
from .update import CUProtocol, WUProtocol
from .srd import SRDProtocol
from .wbwi import WBWIProtocol

__all__ = [
    "ALL_PROTOCOLS",
    "BY_BLOCK",
    "Counters",
    "PartitionDim",
    "SHARDABLE_PROTOCOLS",
    "ShardPlan",
    "FiniteOTFProtocol",
    "LifetimeTracker",
    "MAXSchedule",
    "MINProtocol",
    "OTFProtocol",
    "PROTOCOL_REGISTRY",
    "Protocol",
    "ProtocolResult",
    "RDProtocol",
    "SDProtocol",
    "SectorProtocol",
    "SRDProtocol",
    "CUProtocol",
    "Traffic",
    "TrafficModel",
    "WBWIProtocol",
    "WUProtocol",
    "by_cache_set",
    "cache_geometry",
    "estimate_traffic",
    "finite_spec",
    "parse_finite_spec",
    "traffic_per_reference",
    "make_protocol",
    "merge_shard_results",
    "plan_for_trace",
    "plan_shards",
    "protocol_names",
    "register",
    "run_finite_shard",
    "run_finite_sharded",
    "run_protocol",
    "run_protocol_grid",
    "run_protocol_shard",
    "run_protocol_sharded",
    "run_protocols",
    "sector_sweep_sizes",
    "shard_subtrace",
]
