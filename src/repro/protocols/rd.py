"""RD — the Receive-Delayed protocol (paper section 4.0).

"Invalidations are sent without delay and stored in an invalidation buffer
when they are received.  When a processor executes an acquire all blocks
for which there is a pending received invalidation are invalidated."

Between the arrival of an invalidation and the next ``acquire``, the
processor keeps reading its (legally, under release consistency) stale
copy — the delay *combines* all invalidations received in that span into at
most one miss per block, eliminating most useless misses.  Only one stale
bit per cached block is required (vs. WBWI's dirty bit per word), which is
why the paper recommends RD for systems that accept relaxed consistency.

Ownership is still maintained: a store to a block with a locally pending
invalidation has a stale copy and must re-fetch (ownership miss).
"""

from __future__ import annotations

from typing import Dict, Set

from .base import Protocol, register


@register
class RDProtocol(Protocol):
    """Receive-delayed invalidations, applied at acquire."""

    name = "RD"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        # pending[proc]: blocks with a buffered received invalidation.
        self._pending = [set() for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        # A pending invalidation does NOT block the load: the stale copy is
        # legal to read until the next acquire.
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        pending = self._pending[proc]
        if block in pending:
            # Ownership: the writer must hold a current copy.  Apply the
            # buffered invalidation and re-fetch.
            self.counters.ownership_misses += 1
            self.drop_copy(proc, block)
            pending.discard(block)
            self.fetch(proc, block)
        else:
            self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)
        # Send invalidations immediately; receivers only buffer them.
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            qp = self._pending[q]
            if block not in qp:
                qp.add(block)
            self.counters.invalidations_sent += 1
        self.tracker.store_performed(proc, addr)

    def on_acquire(self, proc: int, addr: int) -> None:
        pending = self._pending[proc]
        if pending:
            for block in pending:
                if self.has_copy(proc, block):
                    self.drop_copy(proc, block)
            pending.clear()
