"""Partition-dimension sharding of one protocol or classifier run.

The sweep engine parallelizes the *grid* (block size × protocol), but each
cell is one sequential pass over the whole trace, so a lone Figure-6b cell
on the paper-large suite uses one core no matter how many ``--jobs`` are
given.  This module supplies the missing level of parallelism: one cell is
split across worker processes along a :class:`PartitionDim` — a choice of
*partition unit* per event row plus the legality contract that makes
independent simulation of the units sound.

Dimensions and their legality contracts
---------------------------------------
``by-block`` (:data:`BY_BLOCK`) — unit = block id.
    Every protocol in the paper's line-up (MIN, OTF, RD, SD, SRD, WBWI,
    MAX) and all three classifiers (Dubois Appendix A, Eggers, Torrellas)
    keep all mutable state per (block, processor) — validity masks,
    ownership, word-invalidation buffers, per-block store-buffer entries,
    lifetime trackers, word versions (a word belongs to exactly one
    block).  No handler ever couples two different blocks, so the blocks
    of a trace can be simulated independently, provided each shard still
    sees the events that drive *schedule points*:

    * ACQUIRE events apply RD/SRD's buffered invalidations and
    * RELEASE events flush SD/SRD's store buffers and bound MAX's
      adversarial delivery windows,

    and both act on every block the processor holds.  A protocol shard
    therefore runs over a sub-trace holding **its blocks' data rows plus
    every ACQUIRE and RELEASE row of the whole trace**
    (``replicate_sync=True``), in original interleaved order.  The index
    mapping from the full trace into a shard sub-trace is strictly
    monotonic, and every protocol compares event positions only by order
    (never by absolute distance), so each per-(block, processor) state
    machine takes exactly the transitions it takes in the whole-trace
    run.  The classifiers ignore sync events entirely, so a classifier
    shard reuses the *same* ``by-block`` plan but feeds only the shard's
    data rows (:func:`partition_indices`).

``by-cache-set`` (:func:`by_cache_set`) — unit = ``block % num_sets``.
    The set-associative :class:`~repro.protocols.finite.FiniteOTFProtocol`
    adds one coupling the infinite protocols lack: LRU replacement ties
    together all blocks that map to the same cache set.  Partitioning by
    *set index* restores independence — a set's LRU order, valid bits,
    replaced-set and lifetime state are all reachable only from blocks of
    that set, so disjoint set groups never interact.  OTF's sync handlers
    are no-ops (``on_acquire``/``on_release`` inherit the base-class
    defaults), so ``by-cache-set`` shards need **no sync replication**
    (``replicate_sync=False``): a shard is exactly its sets' data rows.
    The fully-associative degenerate case (``num_sets == 1``) has a
    single unit and therefore correctly refuses to split.

Merging is plain addition along every dimension: every
:class:`~repro.protocols.results.Counters` field is incremented for events
attributable to a single (processor, block) pair — MIN's
``write_throughs`` count stores (a store hits one block), SD/SRD's
``stores_buffered``/``stores_combined`` count per-(proc, block) buffer
entries, the finite cache's ``replacements`` count per-(proc, set)
evictions — so per-shard counters sum to the whole-trace counters exactly
(asserted by the equivalence tests).  What is *not* modeled cross-shard is
per-processor store-buffer **occupancy** (how many blocks one processor
has buffered at an instant, across blocks); no current counter depends on
it, and :func:`merge_shard_results` documents the constraint for future
ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ProtocolError
from ..mem.addresses import BlockMap
from ..trace.trace import Trace

#: Protocols whose state is fully per-(block, processor) and may be
#: sharded along the ``by-block`` dimension.  Everything in the public
#: registry qualifies.  The finite-cache extension is *not* here because
#: its legal dimension is ``by-cache-set`` (LRU couples the blocks of a
#: set); the sweep engine selects that dimension for ``finite`` cells
#: instead.  The sector extension remains unsharded.
SHARDABLE_PROTOCOLS = frozenset(
    {"MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX", "WU", "CU"})


@dataclasses.dataclass(frozen=True)
class PartitionDim:
    """One partition dimension: unit ids per row + legality contract.

    A dimension maps each data row's block id to a *partition unit* id;
    rows whose units land in different shards must be simulatable
    independently (the module docstring argues legality per instance).

    Parameters
    ----------
    name:
        Stable identifier; embedded in :class:`ShardPlan` digests so a
        resumed sweep can never mix plans from different dimensions.
    replicate_sync:
        Whether shard sub-traces must replicate every ACQUIRE/RELEASE row
        (required when sync events drive per-processor schedule points
        across all held blocks; unnecessary when the simulated model
        ignores sync).
    num_sets:
        For ``by-cache-set``: the modulus mapping blocks to sets.  ``0``
        means the identity mapping (``by-block``).
    legality:
        One-line statement of why units partition independently.
    """

    name: str
    replicate_sync: bool
    num_sets: int = 0
    legality: str = ""

    def unit_of_rows(self, block_ids: np.ndarray) -> np.ndarray:
        """Partition-unit id per row, given the rows' block ids."""
        blocks = np.asarray(block_ids, dtype=np.int64)
        if self.num_sets:
            return blocks % self.num_sets
        return blocks


#: Unit = block id; sync rows replicated into every shard.  Legal for all
#: registered protocols (state per (block, processor), sync acts by order)
#: and, reused without sync replication via :func:`partition_indices`, for
#: the Dubois/Eggers/Torrellas classifiers (state per block or per word,
#: and a word belongs to exactly one block).
BY_BLOCK = PartitionDim(
    name="by-block", replicate_sync=True, num_sets=0,
    legality="all protocol/classifier state is per (block, processor); "
             "sync events act on every shard identically by order")


def by_cache_set(num_sets: int) -> PartitionDim:
    """Unit = ``block % num_sets``; no sync replication.

    Legal for the set-associative finite cache: LRU couples blocks only
    within a set, and OTF ignores sync events.  ``num_sets == 1`` (fully
    associative) yields a single unit, so plans clamp to one shard.
    """
    if num_sets < 1:
        raise ConfigError(f"num_sets must be positive, got {num_sets}")
    return PartitionDim(
        name=f"by-cache-set/{num_sets}", replicate_sync=False,
        num_sets=num_sets,
        legality="LRU replacement couples blocks only within one set; "
                 "OTF sync handlers are no-ops")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one trace's units into shards.

    Built once per (trace, block size, shard count, dimension) by
    :func:`plan_shards` and shared (fork-inherited) by every shard worker
    of a cell.

    Parameters
    ----------
    offset_bits:
        The block-size configuration the plan was computed for (block ids
        are ``addr >> offset_bits``).
    num_shards:
        Number of shards; at most the number of distinct units.
    unique_blocks:
        Sorted distinct partition-unit ids of the trace's data rows
        (block ids for ``by-block``, set indices for ``by-cache-set``;
        the field name predates the dimension layer and is kept for
        compatibility).
    assignment:
        Shard index per entry of ``unique_blocks``.
    shard_events:
        Data-event count per shard (the balancing objective).
    digest:
        Stable content hash of the dimension plus the full assignment.
        Checkpoint journal keys of per-shard results embed this digest,
        so a resumed sweep can never mix partial results from two
        different shard plans — or two different partition dimensions.
    dim:
        The :class:`PartitionDim` the plan partitions along.
    """

    offset_bits: int
    num_shards: int
    unique_blocks: np.ndarray
    assignment: np.ndarray
    shard_events: Tuple[int, ...]
    digest: str
    dim: PartitionDim = BY_BLOCK

    def shard_of_rows(self, block_ids: np.ndarray) -> np.ndarray:
        """Shard index per row, given the rows' block ids (vectorized).

        Every queried block must be a data block of the planned trace.
        """
        if len(self.unique_blocks) == 0:
            return np.zeros(len(block_ids), dtype=np.int64)
        units = self.dim.unit_of_rows(block_ids)
        pos = np.searchsorted(self.unique_blocks, units)
        return self.assignment[np.minimum(pos, len(self.assignment) - 1)]

    @property
    def max_shard_events(self) -> int:
        """Heaviest shard's data-event count.

        This is the row count the resource governor's footprint model
        charges one shard worker for (the heaviest shard bounds every
        worker of the cell).
        """
        return max(self.shard_events) if self.shard_events else 0

    def describe(self) -> str:
        lo = min(self.shard_events) if self.shard_events else 0
        hi = self.max_shard_events
        return (f"ShardPlan({self.num_shards} shards over "
                f"{len(self.unique_blocks)} {self.dim.name} units, "
                f"{lo}..{hi} events/shard, digest {self.digest})")


def plan_shards(data_block_ids: np.ndarray, offset_bits: int,
                num_shards: int, *, dim: PartitionDim = BY_BLOCK) -> ShardPlan:
    """Partition units into ``num_shards`` shards balanced by event count.

    Block ids are first mapped to partition units via ``dim`` (identity
    for ``by-block``, ``block % num_sets`` for ``by-cache-set``).
    Longest-processing-time greedy: units are taken heaviest first (ties
    by ascending unit id, so the plan is deterministic) and assigned to
    the currently lightest shard.  The shard count is clamped to the
    number of distinct units — one unit cannot be split.
    """
    if num_shards < 1:
        raise ConfigError(f"num_shards must be positive, got {num_shards}")
    units = dim.unit_of_rows(np.asarray(data_block_ids, dtype=np.int64))
    unique, counts = np.unique(units, return_counts=True)
    num_shards = min(num_shards, max(1, len(unique)))
    assignment = np.zeros(len(unique), dtype=np.int64)
    loads = [0] * num_shards
    if num_shards > 1:
        # argsort on (-count, unit) pairs: heaviest first, stable by id.
        order = np.lexsort((unique, -counts))
        heap = [(0, s) for s in range(num_shards)]
        for u in order:
            load, shard = heapq.heappop(heap)
            assignment[u] = shard
            load += int(counts[u])
            loads[shard] = load
            heapq.heappush(heap, (load, shard))
    else:
        loads[0] = int(counts.sum())
    h = hashlib.sha1()
    h.update(f"v2|{dim.name}|{offset_bits}|{num_shards}|"
             f"{len(unique)}|".encode())
    h.update(np.ascontiguousarray(unique).tobytes())
    h.update(np.ascontiguousarray(assignment).tobytes())
    return ShardPlan(offset_bits=offset_bits, num_shards=num_shards,
                     unique_blocks=unique, assignment=assignment,
                     shard_events=tuple(loads), digest=h.hexdigest()[:16],
                     dim=dim)


def plan_for_trace(trace: Trace, block_map: BlockMap, num_shards: int,
                   *, dim: PartitionDim = BY_BLOCK) -> ShardPlan:
    """Build a :class:`ShardPlan` for one trace at one block size."""
    cols = trace.columns()
    data_blocks = cols.block_ids(block_map.offset_bits)[cols.data_mask()]
    return plan_shards(data_blocks, block_map.offset_bits, num_shards,
                       dim=dim)


def shard_subtrace(trace: Trace, plan: ShardPlan, shard: int) -> Trace:
    """One shard's event subsequence as a :class:`Trace`.

    Selects the shard's data rows, preserving the original interleaved
    order; when the plan's dimension demands it (``replicate_sync``), all
    ACQUIRE/RELEASE rows are additionally replicated into every shard
    (sync events drive SD/SRD flushes, RD/SRD apply points and MAX
    deadlines for every block a processor holds).  ``num_procs`` is
    inherited from the full trace so per-processor state vectors keep
    their size.
    """
    if not 0 <= shard < plan.num_shards:
        raise ProtocolError(
            f"shard {shard} out of range for {plan.num_shards}-shard plan")
    cols = trace.columns()
    data = cols.data_mask()
    if len(plan.unique_blocks) == 0:
        mine = np.zeros(len(data), dtype=bool)
    else:
        row_shard = plan.shard_of_rows(cols.block_ids(plan.offset_bits))
        mine = data & (row_shard == shard)
    keep = (~data | mine) if plan.dim.replicate_sync else mine
    return Trace(cols.take(np.flatnonzero(keep)), trace.num_procs,
                 name=trace.name, meta=trace.meta, validate=False)


def run_protocol_shard(name: str, trace: Trace, block_bytes: int,
                       plan: ShardPlan, shard: int):
    """Run one protocol over one shard of a trace (a partial result).

    The returned :class:`~repro.protocols.results.ProtocolResult` covers
    only the shard's blocks; merge all shards with
    :func:`~repro.protocols.results.merge_shard_results`.
    """
    from .runner import make_protocol  # deferred: runner imports protocols

    if name not in SHARDABLE_PROTOCOLS:
        raise ProtocolError(
            f"protocol {name!r} is not block-shardable "
            f"(shardable: {sorted(SHARDABLE_PROTOCOLS)})")
    if plan.dim.name != BY_BLOCK.name:
        raise ProtocolError(
            f"protocol {name!r} shards along {BY_BLOCK.name}, got a "
            f"{plan.dim.name} plan")
    block_map = BlockMap(block_bytes)
    if block_map.offset_bits != plan.offset_bits:
        raise ProtocolError(
            f"shard plan was built for offset_bits={plan.offset_bits}, "
            f"cell uses {block_map.offset_bits}")
    protocol = make_protocol(name, trace.num_procs, block_map)
    return protocol.run(shard_subtrace(trace, plan, shard))


def run_protocol_sharded(name: str, trace: Trace, block_bytes: int,
                         num_shards: int,
                         *, plan: Optional[ShardPlan] = None):
    """Serial reference driver: run every shard in-process and merge.

    Useful for equivalence testing and single-process validation; the
    parallel path lives in :class:`repro.analysis.engine.SweepEngine`,
    which runs the same shard cells on the supervised worker pool.
    """
    from .results import merge_shard_results

    block_map = BlockMap(block_bytes)
    if plan is None:
        plan = plan_for_trace(trace, block_map, num_shards)
    parts = [run_protocol_shard(name, trace, block_bytes, plan, s)
             for s in range(plan.num_shards)]
    return merge_shard_results(parts)


def run_finite_shard(trace: Trace, block_bytes: int, capacity_blocks: int,
                     plan: ShardPlan, shard: int, *,
                     ways: Optional[int] = None):
    """Run the finite cache over one ``by-cache-set`` shard (partial).

    The plan must have been built along :func:`by_cache_set` for the
    cache's set count; merge all shards with
    :func:`~repro.protocols.results.merge_shard_results`.
    """
    from .finite import FiniteOTFProtocol, cache_geometry

    num_sets, _ = cache_geometry(capacity_blocks, ways)
    if plan.dim.num_sets != num_sets:
        raise ProtocolError(
            f"shard plan partitions {plan.dim.name}, cache has "
            f"{num_sets} sets")
    block_map = BlockMap(block_bytes)
    if block_map.offset_bits != plan.offset_bits:
        raise ProtocolError(
            f"shard plan was built for offset_bits={plan.offset_bits}, "
            f"cell uses {block_map.offset_bits}")
    protocol = FiniteOTFProtocol(trace.num_procs, block_map,
                                 capacity_blocks, ways=ways)
    return protocol.run(shard_subtrace(trace, plan, shard))


def run_finite_sharded(trace: Trace, block_bytes: int, capacity_blocks: int,
                       num_shards: int, *, ways: Optional[int] = None,
                       plan: Optional[ShardPlan] = None):
    """Serial reference driver for set-sharded finite-cache runs."""
    from .finite import cache_geometry
    from .results import merge_shard_results

    num_sets, _ = cache_geometry(capacity_blocks, ways)
    block_map = BlockMap(block_bytes)
    if plan is None:
        plan = plan_for_trace(trace, block_map, num_shards,
                              dim=by_cache_set(num_sets))
    parts = [run_finite_shard(trace, block_bytes, capacity_blocks, plan, s,
                              ways=ways)
             for s in range(plan.num_shards)]
    return merge_shard_results(parts)


def partition_indices(plan: ShardPlan,
                      data_block_ids: np.ndarray) -> Sequence[np.ndarray]:
    """Row-index arrays partitioning data rows by shard (classifier feed).

    Unlike protocols, the classifiers (Dubois Appendix A, Eggers,
    Torrellas) ignore sync events, so a classifier shard is exactly the
    shard's data rows — the same ``by-block`` plan, no replication.
    """
    row_shard = plan.shard_of_rows(np.asarray(data_block_ids, dtype=np.int64))
    return [np.flatnonzero(row_shard == s) for s in range(plan.num_shards)]
