"""Block-sharded execution of one protocol or classifier run.

The sweep engine parallelizes the *grid* (block size × protocol), but each
cell is one sequential pass over the whole trace, so a lone Figure-6b cell
on the paper-large suite uses one core no matter how many ``--jobs`` are
given.  This module supplies the missing level of parallelism: one cell is
split across worker processes *by block id*.

Why this is legal
-----------------
Every protocol in the paper's line-up (MIN, OTF, RD, SD, SRD, WBWI, MAX)
and the Appendix A classifier keep all their mutable state per
(block, processor) — validity masks, ownership, word-invalidation buffers,
per-block store-buffer entries, lifetime trackers, word versions (a word
belongs to exactly one block).  No handler ever couples two different
blocks, so the blocks of a trace can be simulated independently, provided
each shard still sees the events that drive *schedule points*:

* ACQUIRE events apply RD/SRD's buffered invalidations and
* RELEASE events flush SD/SRD's store buffers and bound MAX's
  adversarial delivery windows,

and both act on every block the processor holds.  A shard therefore runs
over a sub-trace holding **its blocks' data rows plus every ACQUIRE and
RELEASE row of the whole trace**, in original interleaved order.  The
index mapping from the full trace into a shard sub-trace is strictly
monotonic, and every protocol compares event positions only by order
(never by absolute distance), so each per-(block, processor) state machine
takes exactly the transitions it takes in the whole-trace run.

Merging is plain addition: every :class:`~repro.protocols.results.Counters`
field is incremented for events attributable to a single (processor,
block) pair — MIN's ``write_throughs`` count stores (a store hits one
block), SD/SRD's ``stores_buffered``/``stores_combined`` count per-(proc,
block) buffer entries — so per-shard counters sum to the whole-trace
counters exactly (asserted by the equivalence tests).  What is *not*
modeled cross-shard is per-processor store-buffer **occupancy** (how many
blocks one processor has buffered at an instant, across blocks); no
current counter depends on it, and :func:`merge_shard_results` documents
the constraint for future ones.

The finite-cache extension (:class:`~repro.protocols.finite.
FiniteOTFProtocol`) is **not** shardable: LRU replacement couples all
blocks that map to a cache set.  It is not in :data:`SHARDABLE_PROTOCOLS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ProtocolError
from ..mem.addresses import BlockMap
from ..trace.trace import Trace

#: Protocols whose state is fully per-(block, processor) and may be
#: block-sharded.  Everything in the public registry qualifies; the
#: finite-cache and sector extensions (unregistered) do not.
SHARDABLE_PROTOCOLS = frozenset(
    {"MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX", "WU", "CU"})


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one trace's blocks into shards.

    Built once per (trace, block size, shard count) by :func:`plan_shards`
    and shared (fork-inherited) by every shard worker of a cell.

    Parameters
    ----------
    offset_bits:
        The block-size configuration the plan was computed for (block ids
        are ``addr >> offset_bits``).
    num_shards:
        Number of shards; at most the number of distinct blocks.
    unique_blocks:
        Sorted distinct block ids of the trace's data rows.
    assignment:
        Shard index per entry of ``unique_blocks``.
    shard_events:
        Data-event count per shard (the balancing objective).
    digest:
        Stable content hash of the full assignment.  Checkpoint journal
        keys of per-shard results embed this digest, so a resumed sweep
        can never mix partial results from two different shard plans.
    """

    offset_bits: int
    num_shards: int
    unique_blocks: np.ndarray
    assignment: np.ndarray
    shard_events: Tuple[int, ...]
    digest: str

    def shard_of_rows(self, block_ids: np.ndarray) -> np.ndarray:
        """Shard index per row, given the rows' block ids (vectorized).

        Every queried block must be a data block of the planned trace.
        """
        if len(self.unique_blocks) == 0:
            return np.zeros(len(block_ids), dtype=np.int64)
        pos = np.searchsorted(self.unique_blocks, block_ids)
        return self.assignment[np.minimum(pos, len(self.assignment) - 1)]

    @property
    def max_shard_events(self) -> int:
        """Heaviest shard's data-event count.

        This is the row count the resource governor's footprint model
        charges one shard worker for (the heaviest shard bounds every
        worker of the cell).
        """
        return max(self.shard_events) if self.shard_events else 0

    def describe(self) -> str:
        lo = min(self.shard_events) if self.shard_events else 0
        hi = self.max_shard_events
        return (f"ShardPlan({self.num_shards} shards over "
                f"{len(self.unique_blocks)} blocks, "
                f"{lo}..{hi} events/shard, digest {self.digest})")


def plan_shards(data_block_ids: np.ndarray, offset_bits: int,
                num_shards: int) -> ShardPlan:
    """Partition blocks into ``num_shards`` shards balanced by event count.

    Longest-processing-time greedy: blocks are taken heaviest first (ties
    by ascending block id, so the plan is deterministic) and assigned to
    the currently lightest shard.  The shard count is clamped to the
    number of distinct blocks — one block cannot be split.
    """
    if num_shards < 1:
        raise ConfigError(f"num_shards must be positive, got {num_shards}")
    unique, counts = np.unique(np.asarray(data_block_ids, dtype=np.int64),
                               return_counts=True)
    num_shards = min(num_shards, max(1, len(unique)))
    assignment = np.zeros(len(unique), dtype=np.int64)
    loads = [0] * num_shards
    if num_shards > 1:
        # argsort on (-count, block) pairs: heaviest first, stable by id.
        order = np.lexsort((unique, -counts))
        heap = [(0, s) for s in range(num_shards)]
        for u in order:
            load, shard = heapq.heappop(heap)
            assignment[u] = shard
            load += int(counts[u])
            loads[shard] = load
            heapq.heappush(heap, (load, shard))
    else:
        loads[0] = int(counts.sum())
    h = hashlib.sha1()
    h.update(f"v1|{offset_bits}|{num_shards}|{len(unique)}|".encode())
    h.update(np.ascontiguousarray(unique).tobytes())
    h.update(np.ascontiguousarray(assignment).tobytes())
    return ShardPlan(offset_bits=offset_bits, num_shards=num_shards,
                     unique_blocks=unique, assignment=assignment,
                     shard_events=tuple(loads), digest=h.hexdigest()[:16])


def plan_for_trace(trace: Trace, block_map: BlockMap,
                   num_shards: int) -> ShardPlan:
    """Build a :class:`ShardPlan` for one trace at one block size."""
    cols = trace.columns()
    data_blocks = cols.block_ids(block_map.offset_bits)[cols.data_mask()]
    return plan_shards(data_blocks, block_map.offset_bits, num_shards)


def shard_subtrace(trace: Trace, plan: ShardPlan, shard: int) -> Trace:
    """One shard's event subsequence as a :class:`Trace`.

    Selects the shard's data rows **plus all ACQUIRE/RELEASE rows** (sync
    events drive SD/SRD flushes, RD/SRD apply points and MAX deadlines for
    every block a processor holds), preserving the original interleaved
    order.  ``num_procs`` is inherited from the full trace so per-processor
    state vectors keep their size.
    """
    if not 0 <= shard < plan.num_shards:
        raise ProtocolError(
            f"shard {shard} out of range for {plan.num_shards}-shard plan")
    cols = trace.columns()
    data = cols.data_mask()
    if len(plan.unique_blocks) == 0:
        keep = ~data
    else:
        row_shard = plan.shard_of_rows(cols.block_ids(plan.offset_bits))
        keep = ~data | (row_shard == shard)
    return Trace(cols.take(np.flatnonzero(keep)), trace.num_procs,
                 name=trace.name, meta=trace.meta, validate=False)


def run_protocol_shard(name: str, trace: Trace, block_bytes: int,
                       plan: ShardPlan, shard: int):
    """Run one protocol over one shard of a trace (a partial result).

    The returned :class:`~repro.protocols.results.ProtocolResult` covers
    only the shard's blocks; merge all shards with
    :func:`~repro.protocols.results.merge_shard_results`.
    """
    from .runner import make_protocol  # deferred: runner imports protocols

    if name not in SHARDABLE_PROTOCOLS:
        raise ProtocolError(
            f"protocol {name!r} is not block-shardable "
            f"(shardable: {sorted(SHARDABLE_PROTOCOLS)})")
    block_map = BlockMap(block_bytes)
    if block_map.offset_bits != plan.offset_bits:
        raise ProtocolError(
            f"shard plan was built for offset_bits={plan.offset_bits}, "
            f"cell uses {block_map.offset_bits}")
    protocol = make_protocol(name, trace.num_procs, block_map)
    return protocol.run(shard_subtrace(trace, plan, shard))


def run_protocol_sharded(name: str, trace: Trace, block_bytes: int,
                         num_shards: int,
                         *, plan: Optional[ShardPlan] = None):
    """Serial reference driver: run every shard in-process and merge.

    Useful for equivalence testing and single-process validation; the
    parallel path lives in :class:`repro.analysis.engine.SweepEngine`,
    which runs the same shard cells on the supervised worker pool.
    """
    from .results import merge_shard_results

    block_map = BlockMap(block_bytes)
    if plan is None:
        plan = plan_for_trace(trace, block_map, num_shards)
    parts = [run_protocol_shard(name, trace, block_bytes, plan, s)
             for s in range(plan.num_shards)]
    return merge_shard_results(parts)


def partition_indices(plan: ShardPlan,
                      data_block_ids: np.ndarray) -> Sequence[np.ndarray]:
    """Row-index arrays partitioning data rows by shard (classifier feed).

    Unlike protocols, the Appendix A classifier ignores sync events, so a
    classifier shard is exactly the shard's data rows — no replication.
    """
    row_shard = plan.shard_of_rows(np.asarray(data_block_ids, dtype=np.int64))
    return [np.flatnonzero(row_shard == s) for s in range(plan.num_shards)]
