"""Per-miss classification under arbitrary invalidation schedules.

The Appendix A algorithm classifies misses of the *on-the-fly* (OTF)
write-invalidate execution, where a lifetime always ends at the first remote
store.  The delayed protocols (RD/SD/SRD/MAX) let lifetimes stretch past
remote stores, so the paper's Figure 6 decomposition (TRUE/COLD/FALSE per
protocol) needs a generalization: the :class:`LifetimeTracker`.

Semantics (fetch-snapshot)
--------------------------
Each word carries a *version*, bumped when a store to it is **performed**
(made globally visible — at issue for OTF/RD/WBWI/MIN, at the release flush
for SD/SRD).  Each processor *knows* a version of each word: the version it
defined itself, or the version delivered to it by its last essential miss.
A fetch snapshots, per word of the block, the fresh versions the fetched
copy carries (``version > known``).  The miss that caused the fetch is
**essential** iff the processor, during the lifetime, accesses a word that
was fresh *in the snapshot*; at that moment all snapshot versions become
known (the whole fetched block was delivered), mirroring Appendix A's
clearing of every C flag of the block.

Stores performed *after* the fetch do not make the current lifetime
essential — their values are not in the cached copy — which is exactly the
distinction Appendix A never needs (under OTF such stores end the lifetime)
but delayed schedules do.  For an OTF schedule this tracker provably
produces the same counts as :class:`~repro.classify.dubois.DuboisClassifier`
(asserted by the integration tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ProtocolError
from ..mem.addresses import BlockMap
from ..classify.breakdown import DuboisBreakdown, MissClass


class _Lifetime:
    """State of one (block, processor) lifetime between fetch and invalidation."""

    __slots__ = ("fresh", "essential", "dirty_at_fetch", "replacement")

    def __init__(self, fresh: Optional[Dict[int, int]], replacement: bool):
        #: word -> fetched version, for words carrying values new to the
        #: processor; None once the lifetime has turned essential.
        self.fresh = fresh
        self.essential = False
        self.dirty_at_fetch = bool(fresh)
        #: True when the miss that started this lifetime re-fetched a block
        #: lost to a cache replacement (finite caches only).  Such misses
        #: are *replacement misses* — essential by definition (paper
        #: section 8.0) — and are counted apart from the five classes.
        self.replacement = replacement


class LifetimeTracker:
    """Classifies protocol misses into PC/CTS/CFS/PTS/PFS.

    Protocol simulators drive it with:

    * :meth:`access` — once per data reference (load or store), *after*
      ensuring the block is fetched;
    * :meth:`fetch` — when a miss brings a block into a cache;
    * :meth:`invalidate` — when a cache's copy is destroyed (classifies the
      ending lifetime and returns its class);
    * :meth:`store_performed` — when a store becomes globally visible;
    * :meth:`finish` — once, at end of trace (classifies live lifetimes).
    """

    def __init__(self, num_procs: int, block_map: BlockMap):
        self.num_procs = num_procs
        self.block_map = block_map
        # version[word]: bumped per performed store; missing == 0.
        self._version: Dict[int, int] = {}
        # known[word]: per-proc list of known versions; missing == all 0.
        self._known: Dict[int, List[int]] = {}
        # active[block]: per-proc list of live _Lifetime (or None).
        self._active: Dict[int, List[Optional[_Lifetime]]] = {}
        # First-Reference mask per block (set once a lifetime is classified).
        self._fr: Dict[int, int] = {}
        # Blocks ever stored to (fast path: fetches of clean blocks).
        self._block_stored: Dict[int, bool] = {}
        self._counts = {MissClass.PC: 0, MissClass.CTS: 0, MissClass.CFS: 0,
                        MissClass.PTS: 0, MissClass.PFS: 0}
        self._data_refs = 0
        self._finished = False
        #: Replacement misses counted apart (finite-cache extension).
        self.replacement_misses = 0

    # ------------------------------------------------------------------
    # store visibility
    # ------------------------------------------------------------------
    def store_performed(self, proc: int, word: int) -> None:
        """A store to ``word`` by ``proc`` becomes globally visible.

        Bumps the word version and records that the writer knows the value
        it defined.
        """
        v = self._version.get(word, 0) + 1
        self._version[word] = v
        known = self._known.get(word)
        if known is None:
            known = [0] * self.num_procs
            self._known[word] = known
        known[proc] = v
        self._block_stored[self.block_map.block_of(word)] = True

    # ------------------------------------------------------------------
    # lifetime events
    # ------------------------------------------------------------------
    def fetch(self, proc: int, block: int, *, replacement: bool = False) -> None:
        """A miss by ``proc`` brings ``block`` into its cache.

        ``replacement=True`` marks the miss as a re-fetch after a cache
        replacement (finite caches): it is counted as a replacement miss
        instead of one of the five classes.
        """
        row = self._active.get(block)
        if row is None:
            row = [None] * self.num_procs
            self._active[block] = row
        if row[proc] is not None:
            raise ProtocolError(
                f"P{proc} fetches block {block:#x} while already holding it")
        fresh: Optional[Dict[int, int]] = None
        if self._block_stored.get(block):
            version = self._version
            known = self._known
            snapshot = {}
            for w in self.block_map.words_of(block):
                v = version.get(w, 0)
                if v:
                    k = known.get(w)
                    if k is None or k[proc] < v:
                        snapshot[w] = v
            fresh = snapshot or None
        row[proc] = _Lifetime(fresh, replacement)

    def access(self, proc: int, word: int) -> None:
        """``proc`` performs a data reference to ``word`` (hit or post-fetch)."""
        self._data_refs += 1
        block = self.block_map.block_of(word)
        row = self._active.get(block)
        life = row[proc] if row is not None else None
        if life is None:
            raise ProtocolError(
                f"P{proc} accesses word {word:#x} without a live copy of "
                f"block {block:#x} (protocol forgot to fetch?)")
        fresh = life.fresh
        if fresh is not None and word in fresh:
            life.essential = True
            # The essential miss delivered every snapshot value.
            known_map = self._known
            for w, v in fresh.items():
                k = known_map.get(w)
                if k is None:
                    k = [0] * self.num_procs
                    known_map[w] = k
                if k[proc] < v:
                    k[proc] = v
            life.fresh = None

    def deliver_word(self, proc: int, word: int) -> None:
        """An update message pushes ``word``'s current value into ``proc``'s

        cache (write-update / competitive-update protocols).  The processor
        now knows the value without a miss; if the live lifetime's fetch
        snapshot still carried an older pending value of the word, that
        delivery is superseded."""
        v = self._version.get(word, 0)
        if not v:
            return
        known = self._known.get(word)
        if known is None:
            known = [0] * self.num_procs
            self._known[word] = known
        if known[proc] < v:
            known[proc] = v
        row = self._active.get(self.block_map.block_of(word))
        life = row[proc] if row is not None else None
        if life is not None and life.fresh is not None and word in life.fresh:
            del life.fresh[word]
            if not life.fresh:
                life.fresh = None

    def holds(self, proc: int, block: int) -> bool:
        """True if ``proc`` currently has a live lifetime for ``block``."""
        row = self._active.get(block)
        return row is not None and row[proc] is not None

    def invalidate(self, proc: int, block: int):
        """End ``proc``'s lifetime for ``block``; classify and return the
        :class:`~repro.classify.breakdown.MissClass` (None for lifetimes
        started by a replacement miss)."""
        row = self._active.get(block)
        life = row[proc] if row is not None else None
        if life is None:
            raise ProtocolError(
                f"P{proc} invalidated for block {block:#x} it does not hold")
        row[proc] = None
        return self._classify(proc, block, life)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _classify(self, proc: int, block: int, life: _Lifetime):
        bit = 1 << proc
        fr = self._fr.get(block, 0)
        if life.replacement:
            # Replacement misses are essential by definition and counted
            # outside the five-way decomposition.
            self._fr[block] = fr | bit
            self.replacement_misses += 1
            return None
        if not fr & bit:
            self._fr[block] = fr | bit
            if life.essential:
                mclass = MissClass.CTS
            elif life.dirty_at_fetch:
                mclass = MissClass.CFS
            else:
                mclass = MissClass.PC
        elif life.essential:
            mclass = MissClass.PTS
        else:
            mclass = MissClass.PFS
        self._counts[mclass] += 1
        return mclass

    def finish(self) -> DuboisBreakdown:
        """Classify all live lifetimes and return the five-way breakdown."""
        if self._finished:
            raise ProtocolError("tracker already finished")
        self._finished = True
        for block, row in self._active.items():
            for proc, life in enumerate(row):
                if life is not None:
                    self._classify(proc, block, life)
                    row[proc] = None
        c = self._counts
        return DuboisBreakdown(pc=c[MissClass.PC], cts=c[MissClass.CTS],
                               cfs=c[MissClass.CFS], pts=c[MissClass.PTS],
                               pfs=c[MissClass.PFS], data_refs=self._data_refs)
