"""Common machinery for the invalidation-schedule simulators.

All protocols simulate infinite private caches per processor over a fixed
interleaved trace (trace-driven simulation, paper section 5.0).  A protocol
consumes the four event kinds (load/store/acquire/release) and maintains:

* per-processor block validity (plus protocol-specific state: ownership,
  invalidation buffers, store buffers, per-word dirty bits...);
* a :class:`~repro.protocols.lifetime.LifetimeTracker` that attributes each
  miss to PC/CTS/CFS/PTS/PFS;
* :class:`~repro.protocols.results.Counters` for traffic accounting.

Subclasses implement the four ``on_*`` handlers; the base class provides the
trace-driving loop and the shared fetch/invalidate helpers that keep cache
state and the tracker in sync.
"""

from __future__ import annotations

from typing import Dict, Type

from ..errors import ProtocolError
from ..mem.addresses import BlockMap
from ..runtime import signals
from ..trace.events import ACQUIRE, LOAD, RELEASE, STORE
from ..trace.trace import Trace
from .lifetime import LifetimeTracker
from .results import Counters, ProtocolResult


class Protocol:
    """Base class for invalidation-schedule simulators.

    Parameters
    ----------
    num_procs:
        Processor count of the trace to be simulated.
    block_map:
        The block size configuration.
    """

    #: Short name used in reports and the registry ("OTF", "MIN", ...).
    name: str = "?"

    def __init__(self, num_procs: int, block_map: BlockMap):
        if num_procs <= 0:
            raise ProtocolError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.block_map = block_map
        self.tracker = LifetimeTracker(num_procs, block_map)
        self.counters = Counters()
        # valid[block]: bitmask of processors with a (possibly stale) copy.
        self.valid: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # cache-state helpers shared by all protocols
    # ------------------------------------------------------------------
    def has_copy(self, proc: int, block: int) -> bool:
        """True if ``proc`` currently caches ``block``."""
        return bool(self.valid.get(block, 0) & (1 << proc))

    def fetch(self, proc: int, block: int) -> None:
        """Bring ``block`` into ``proc``'s cache (a miss)."""
        self.valid[block] = self.valid.get(block, 0) | (1 << proc)
        self.tracker.fetch(proc, block)
        self.counters.fetches += 1

    def drop_copy(self, proc: int, block: int) -> None:
        """Destroy ``proc``'s copy of ``block`` (classifies the lifetime)."""
        mask = self.valid.get(block, 0)
        bit = 1 << proc
        if not mask & bit:
            raise ProtocolError(
                f"P{proc} has no copy of block {block:#x} to invalidate")
        self.valid[block] = mask & ~bit
        self.tracker.invalidate(proc, block)
        self.counters.invalidations_applied += 1

    def ensure_copy(self, proc: int, block: int) -> bool:
        """Fetch ``block`` for ``proc`` unless cached; True if it missed."""
        if self.has_copy(proc, block):
            return False
        self.fetch(proc, block)
        return True

    def copies_other_than(self, proc: int, block: int) -> int:
        """Bitmask of processors other than ``proc`` caching ``block``."""
        return self.valid.get(block, 0) & ~(1 << proc)

    @staticmethod
    def iter_procs(mask: int):
        """Iterate processor ids set in a bitmask."""
        while mask:
            low = mask & -mask
            mask ^= low
            yield low.bit_length() - 1

    # ------------------------------------------------------------------
    # event handlers (subclass responsibility)
    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        raise NotImplementedError

    def on_store(self, proc: int, addr: int) -> None:
        raise NotImplementedError

    def on_acquire(self, proc: int, addr: int) -> None:
        """Default: synchronization accesses don't change cache state."""

    def on_release(self, proc: int, addr: int) -> None:
        """Default: synchronization accesses don't change cache state."""

    def on_end(self) -> None:
        """Hook run after the last event, before classification of live

        lifetimes (e.g. SD flushes its store buffers here)."""

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ProtocolResult:
        """Simulate the whole trace and return the result."""
        if trace.num_procs > self.num_procs:
            raise ProtocolError(
                f"trace has {trace.num_procs} processors, protocol built "
                f"for {self.num_procs}")
        on_load, on_store = self.on_load, self.on_store
        on_acquire, on_release = self.on_acquire, self.on_release
        # The event loop is chunked so long simulations stay interruptible
        # and heartbeat-visible without paying any per-event overhead: the
        # progress tick (which doubles as a cancellation point) runs once
        # per HEARTBEAT_CHUNK events, not once per event.
        events = trace.events
        step = signals.HEARTBEAT_CHUNK
        for start in range(0, len(events), step):
            for proc, op, addr in events[start:start + step]:
                if op == LOAD:
                    on_load(proc, addr)
                elif op == STORE:
                    on_store(proc, addr)
                elif op == ACQUIRE:
                    on_acquire(proc, addr)
                elif op == RELEASE:
                    on_release(proc, addr)
            signals.note_progress(min(step, len(events) - start))
        self.on_end()
        breakdown = self.tracker.finish()
        return ProtocolResult(
            protocol=self.name,
            trace_name=trace.name or "<anonymous>",
            block_bytes=self.block_map.block_bytes,
            num_procs=self.num_procs,
            breakdown=breakdown,
            counters=self.counters,
            replacement_misses=self.counters.replacements,
        )


#: Registry of protocol classes by name, filled by the submodules.
PROTOCOL_REGISTRY: Dict[str, Type[Protocol]] = {}


def register(cls: Type[Protocol]) -> Type[Protocol]:
    """Class decorator adding a protocol to :data:`PROTOCOL_REGISTRY`."""
    if cls.name in PROTOCOL_REGISTRY:
        raise ProtocolError(f"duplicate protocol name {cls.name!r}")
    PROTOCOL_REGISTRY[cls.name] = cls
    return cls
