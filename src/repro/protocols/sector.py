"""Sector (sub-block) coherence — the paper's section 7 "line of thought".

"Because of the discrepancy between the miss rates of WBWI and MIN ... it
appears that any improvement will have to deal with the problem of block
ownership.  This line of thought leads to systems with multiple block
sizes, or even systems in which coherence is maintained on individual
words."

:class:`SectorProtocol` implements exactly that design space: data is
*transferred* in blocks of ``block_map.block_bytes`` (one fetch fills the
whole block) while *coherence* — validity, invalidation and ownership — is
maintained on sub-blocks of ``sub_block_bytes``.  The two endpoints are
the paper's protocols:

* ``sub_block_bytes == block_bytes``  →  behaves exactly like OTF
  (whole-block invalidation);
* ``sub_block_bytes == 4`` (one word) →  behaves exactly like MIN
  (word-granular invalidation, no whole-block ownership penalty).

Sweeping the sub-block size therefore quantifies how much coherence
granularity buys at each point between the two — the ablation in
``benchmarks/bench_ablation_sector.py``.

Not registered in the paper line-up (takes an extra parameter); construct
it directly like :class:`~repro.protocols.finite.FiniteOTFProtocol`.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from ..mem.addresses import BlockMap, is_power_of_two
from ..trace.events import WORD_SIZE
from .base import Protocol


class SectorProtocol(Protocol):
    """Block-granularity transfer, sub-block-granularity coherence."""

    name = "SECTOR"

    def __init__(self, num_procs: int, block_map: BlockMap,
                 sub_block_bytes: int = 16):
        super().__init__(num_procs, block_map)
        if not is_power_of_two(sub_block_bytes) or sub_block_bytes < WORD_SIZE:
            raise ConfigError(
                f"sub-block size must be a power-of-two >= {WORD_SIZE}, "
                f"got {sub_block_bytes}")
        if sub_block_bytes > block_map.block_bytes:
            raise ConfigError(
                f"sub-block ({sub_block_bytes} B) larger than block "
                f"({block_map.block_bytes} B)")
        self.sub_block_bytes = sub_block_bytes
        self._sub_map = BlockMap(sub_block_bytes)
        self._subs_per_block = block_map.block_bytes // sub_block_bytes
        # pending[block]: per-proc bitmask of invalidated sub-blocks.
        self._pending: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def _sub_bit(self, addr: int) -> int:
        """Bit of the sub-block containing ``addr`` within its block."""
        sub_index = (self.block_map.word_offset(addr)
                     >> self._sub_map.offset_bits)
        return 1 << sub_index

    def _access(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        pending = self._pending.get(block)
        if self.has_copy(proc, block):
            if pending is not None and pending[proc] & self._sub_bit(addr):
                # The accessed sub-block is invalid: refetch the whole
                # block (sector transfer), clearing every pending sub.
                self.drop_copy(proc, block)
                pending[proc] = 0
                self.fetch(proc, block)
        else:
            self.fetch(proc, block)
            if pending is not None:
                pending[proc] = 0
        self.tracker.access(proc, addr)

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        self._access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        self._access(proc, addr)
        block = self.block_map.block_of(addr)
        pending = self._pending.get(block)
        if pending is None:
            pending = [0] * self.num_procs
            self._pending[block] = pending
        sub_bit = self._sub_bit(addr)
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            pending[q] |= sub_bit
            self.counters.word_invalidations += 1
        self.tracker.store_performed(proc, addr)


def sector_sweep_sizes(block_bytes: int) -> List[int]:
    """All legal sub-block sizes for a block size (4 .. block_bytes)."""
    sizes = []
    sub = WORD_SIZE
    while sub <= block_bytes:
        sizes.append(sub)
        sub *= 2
    return sizes
