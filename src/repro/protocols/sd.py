"""SD — the Send-Delayed protocol (paper section 4.0).

"If the processor is the owner at the time of a store, the store is
completed without delay.  Otherwise, the store is buffered.  Pending stores
in the buffer are sent at the execution of a release.  A received
invalidation is immediately executed in the cache."

Delaying at the sender only helps when it leads to *combining*: several
buffered stores to the same block flush as a single invalidation, so a
remote reader takes one miss instead of several.  The paper finds pure SD
ineffective at B=64 (blocks too small for combining) but much better at
B=1024 — the shape reproduced by the Figure 6 benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .base import Protocol, register


@register
class SDProtocol(Protocol):
    """Send-delayed stores, flushed at release; immediate remote apply."""

    name = "SD"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        self._owner: Dict[int, Optional[int]] = {}
        # buffer[proc]: block -> set of buffered word addresses (insertion
        # order preserved by dict so flushes are deterministic).
        self._buffer: List[Dict[int, Set[int]]] = [dict() for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        self.ensure_copy(proc, block)
        self.tracker.access(proc, addr)
        if self._owner.get(block) == proc:
            self._perform_store(proc, block, (addr,))
        else:
            buffered = self._buffer[proc].setdefault(block, set())
            if buffered:
                self.counters.stores_combined += 1
            buffered.add(addr)
            self.counters.stores_buffered += 1

    def on_release(self, proc: int, addr: int) -> None:
        self._flush(proc)

    def on_end(self) -> None:
        # Any store still buffered at the end of the trace is performed
        # (release consistency requires it no later than the next release;
        # end of execution is a global synchronization point).
        for proc in range(self.num_procs):
            self._flush(proc)

    # ------------------------------------------------------------------
    def _flush(self, proc: int) -> None:
        buffer = self._buffer[proc]
        if not buffer:
            return
        self._buffer[proc] = {}
        for block, words in buffer.items():
            # The writer may itself have lost its copy since buffering (a
            # remote store invalidated it immediately under SD).  The flush
            # still performs the stores; memory is updated regardless.
            self._perform_store(proc, block, sorted(words))

    def _perform_store(self, proc: int, block: int, words) -> None:
        """Make stores globally visible: invalidate remote copies, own block."""
        if self._owner.get(block) != proc:
            if self._owner.get(block) is not None:
                self.counters.ownership_transfers += 1
            self._owner[block] = proc
        others = self.copies_other_than(proc, block)
        for q in self.iter_procs(others):
            self.counters.invalidations_sent += 1
            self.drop_copy(q, block)
        for w in words:
            self.tracker.store_performed(proc, w)
