"""Finite-cache extension (paper section 8.0, "future work").

"The current classification is applicable to infinite caches only.
However, it can easily be extended to finite caches by introducing
replacement misses.  A replacement miss is an essential miss since the
value is needed to execute the program.  Coherence misses can then be
classified into PFS and PTS misses according to the algorithm in this
paper.  We expect that the fraction of essential misses will increase in
systems with finite caches."

:class:`FiniteOTFProtocol` is an OTF write-invalidate simulator with a
fully-associative LRU cache of ``capacity_blocks`` blocks per processor.
A re-fetch of a block lost to replacement is a *replacement miss*; all
other misses classify exactly as in the infinite-cache protocols.  The
``bench_finite_cache.py`` benchmark verifies the paper's expectation: the
essential fraction of the miss rate grows as capacity shrinks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Set

from ..errors import ConfigError
from ..mem.addresses import BlockMap
from .base import Protocol
from .results import ProtocolResult
from ..trace.trace import Trace


class FiniteOTFProtocol(Protocol):
    """Write-invalidate with finite fully-associative LRU caches.

    Not part of :data:`~repro.protocols.base.PROTOCOL_REGISTRY` because it
    takes an extra ``capacity_blocks`` argument; construct it directly.
    """

    name = "OTF-finite"

    def __init__(self, num_procs: int, block_map: BlockMap, capacity_blocks: int):
        super().__init__(num_procs, block_map)
        if capacity_blocks <= 0:
            raise ConfigError(
                f"capacity_blocks must be positive, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        # Per-processor LRU: block -> None, most recently used last.
        self._lru: List[OrderedDict] = [OrderedDict() for _ in range(num_procs)]
        # Blocks each processor lost to replacement (pending re-fetch).
        self._replaced: List[Set[int]] = [set() for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def _touch(self, proc: int, block: int) -> None:
        self._lru[proc].move_to_end(block)

    def _fetch_finite(self, proc: int, block: int) -> None:
        replaced = self._replaced[proc]
        was_replaced = block in replaced
        if was_replaced:
            replaced.discard(block)
        lru = self._lru[proc]
        if len(lru) >= self.capacity_blocks:
            victim, _ = lru.popitem(last=False)
            # Evicting classifies the victim's lifetime normally; the
            # *next* fetch of the victim (if any) is the replacement miss.
            bit = 1 << proc
            self.valid[victim] = self.valid.get(victim, 0) & ~bit
            self.tracker.invalidate(proc, victim)
            self._replaced[proc].add(victim)
            self.counters.replacements += 1
        lru[block] = None
        self.valid[block] = self.valid.get(block, 0) | (1 << proc)
        self.tracker.fetch(proc, block, replacement=was_replaced)
        self.counters.fetches += 1

    def _drop_remote(self, proc: int, block: int) -> None:
        """Invalidate ``proc``'s copy from a remote store."""
        bit = 1 << proc
        self.valid[block] = self.valid.get(block, 0) & ~bit
        self.tracker.invalidate(proc, block)
        self._lru[proc].pop(block, None)
        # An invalidated copy is not a replacement victim: its next miss is
        # a coherence miss.
        self._replaced[proc].discard(block)
        self.counters.invalidations_applied += 1

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        if self.has_copy(proc, block):
            self._touch(proc, block)
        else:
            self._fetch_finite(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        if self.has_copy(proc, block):
            self._touch(proc, block)
        else:
            self._fetch_finite(proc, block)
        self.tracker.access(proc, addr)
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            self.counters.invalidations_sent += 1
            self._drop_remote(q, block)
        self.tracker.store_performed(proc, addr)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ProtocolResult:
        result = super().run(trace)
        # The tracker counted replacement-started lifetimes apart; surface
        # them on the result (Counters.replacements counts evictions, which
        # can exceed re-fetches when evicted blocks are never touched again).
        return ProtocolResult(
            protocol=result.protocol,
            trace_name=result.trace_name,
            block_bytes=result.block_bytes,
            num_procs=result.num_procs,
            breakdown=result.breakdown,
            counters=result.counters,
            replacement_misses=self.tracker.replacement_misses,
        )
