"""Finite-cache extension (paper section 8.0, "future work").

"The current classification is applicable to infinite caches only.
However, it can easily be extended to finite caches by introducing
replacement misses.  A replacement miss is an essential miss since the
value is needed to execute the program.  Coherence misses can then be
classified into PFS and PTS misses according to the algorithm in this
paper.  We expect that the fraction of essential misses will increase in
systems with finite caches."

:class:`FiniteOTFProtocol` is an OTF write-invalidate simulator with a
set-associative LRU cache of ``capacity_blocks`` blocks per processor,
organised as ``num_sets × ways`` (a block maps to set ``block %
num_sets``).  The default ``ways=None`` means fully associative — one set
holding ``capacity_blocks`` ways, the degenerate case and the original
behavior of this module.  A re-fetch of a block lost to replacement is a
*replacement miss*; all other misses classify exactly as in the
infinite-cache protocols.  The ``bench_finite_cache.py`` benchmark
verifies the paper's expectation: the essential fraction of the miss rate
grows as capacity shrinks.

Because LRU couples blocks only *within* a set, runs with ``num_sets > 1``
shard along the ``by-cache-set`` partition dimension
(:func:`~repro.protocols.sharding.by_cache_set`).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..mem.addresses import BlockMap
from .base import Protocol
from .results import ProtocolResult
from ..trace.trace import Trace


def cache_geometry(capacity_blocks: int,
                   ways: Optional[int] = None) -> Tuple[int, int]:
    """Validate a cache shape and return ``(num_sets, ways)``.

    ``ways=None`` (fully associative) resolves to ``ways ==
    capacity_blocks`` and hence one set.  ``ways`` must divide
    ``capacity_blocks`` evenly — a ragged last set would make the set
    index data-dependent.
    """
    if capacity_blocks <= 0:
        raise ConfigError(
            f"capacity_blocks must be positive, got {capacity_blocks}")
    if ways is None:
        ways = capacity_blocks
    if ways <= 0:
        raise ConfigError(f"ways must be positive, got {ways}")
    if ways > capacity_blocks:
        raise ConfigError(
            f"ways ({ways}) cannot exceed capacity_blocks "
            f"({capacity_blocks})")
    if capacity_blocks % ways:
        raise ConfigError(
            f"ways ({ways}) must divide capacity_blocks "
            f"({capacity_blocks}) evenly")
    return capacity_blocks // ways, ways


def finite_spec(capacity_blocks: int, ways: Optional[int] = None) -> str:
    """JSON-safe cell spec for a finite-cache shape, e.g. ``c128w4``.

    Fully-associative shapes (``ways`` omitted or equal to capacity)
    canonicalize to ``c<capacity>`` so equal geometries get equal specs.
    """
    num_sets, ways = cache_geometry(capacity_blocks, ways)
    if num_sets == 1:
        return f"c{capacity_blocks}"
    return f"c{capacity_blocks}w{ways}"


def parse_finite_spec(spec: str) -> Tuple[int, Optional[int]]:
    """Invert :func:`finite_spec`: ``"c128w4"`` → ``(128, 4)``."""
    m = re.fullmatch(r"c(\d+)(?:w(\d+))?", spec)
    if not m:
        raise ConfigError(
            f"malformed finite-cache spec {spec!r} "
            f"(expected c<capacity>[w<ways>])")
    capacity = int(m.group(1))
    ways = int(m.group(2)) if m.group(2) else None
    cache_geometry(capacity, ways)  # validate the shape early
    return capacity, ways


class FiniteOTFProtocol(Protocol):
    """Write-invalidate with finite set-associative LRU caches.

    Not part of :data:`~repro.protocols.base.PROTOCOL_REGISTRY` because it
    takes extra geometry arguments; construct it directly or run it via a
    ``("finite", block_bytes, spec)`` sweep-engine cell.
    """

    name = "OTF-finite"

    def __init__(self, num_procs: int, block_map: BlockMap,
                 capacity_blocks: int, ways: Optional[int] = None):
        super().__init__(num_procs, block_map)
        self.num_sets, self.ways = cache_geometry(capacity_blocks, ways)
        self.capacity_blocks = capacity_blocks
        # Per-(processor, set) LRU: block -> None, most recently used last.
        self._lru: List[List[OrderedDict]] = [
            [OrderedDict() for _ in range(self.num_sets)]
            for _ in range(num_procs)]
        # Blocks each processor lost to replacement (pending re-fetch),
        # tracked per set so set shards never observe another set's state.
        self._replaced: List[List[set]] = [
            [set() for _ in range(self.num_sets)] for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def _touch(self, proc: int, block: int) -> None:
        self._lru[proc][block % self.num_sets].move_to_end(block)

    def _fetch_finite(self, proc: int, block: int) -> None:
        replaced = self._replaced[proc][block % self.num_sets]
        was_replaced = block in replaced
        if was_replaced:
            replaced.discard(block)
        lru = self._lru[proc][block % self.num_sets]
        if len(lru) >= self.ways:
            victim, _ = lru.popitem(last=False)
            # Evicting classifies the victim's lifetime normally; the
            # *next* fetch of the victim (if any) is the replacement miss.
            bit = 1 << proc
            self.valid[victim] = self.valid.get(victim, 0) & ~bit
            self.tracker.invalidate(proc, victim)
            replaced.add(victim)
            self.counters.replacements += 1
        lru[block] = None
        self.valid[block] = self.valid.get(block, 0) | (1 << proc)
        self.tracker.fetch(proc, block, replacement=was_replaced)
        self.counters.fetches += 1

    def _drop_remote(self, proc: int, block: int) -> None:
        """Invalidate ``proc``'s copy from a remote store."""
        bit = 1 << proc
        self.valid[block] = self.valid.get(block, 0) & ~bit
        self.tracker.invalidate(proc, block)
        self._lru[proc][block % self.num_sets].pop(block, None)
        # An invalidated copy is not a replacement victim: its next miss is
        # a coherence miss.
        self._replaced[proc][block % self.num_sets].discard(block)
        self.counters.invalidations_applied += 1

    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        if self.has_copy(proc, block):
            self._touch(proc, block)
        else:
            self._fetch_finite(proc, block)
        self.tracker.access(proc, addr)

    def on_store(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        if self.has_copy(proc, block):
            self._touch(proc, block)
        else:
            self._fetch_finite(proc, block)
        self.tracker.access(proc, addr)
        for q in self.iter_procs(self.copies_other_than(proc, block)):
            self.counters.invalidations_sent += 1
            self._drop_remote(q, block)
        self.tracker.store_performed(proc, addr)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ProtocolResult:
        result = super().run(trace)
        # The tracker counted replacement-started lifetimes apart; surface
        # them on the result (Counters.replacements counts evictions, which
        # can exceed re-fetches when evicted blocks are never touched again).
        return ProtocolResult(
            protocol=result.protocol,
            trace_name=result.trace_name,
            block_bytes=result.block_bytes,
            num_procs=result.num_procs,
            breakdown=result.breakdown,
            counters=result.counters,
            replacement_misses=self.tracker.replacement_misses,
        )
