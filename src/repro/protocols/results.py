"""Result and counter types for protocol simulations."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, Sequence

from ..classify.breakdown import DuboisBreakdown
from ..errors import ProtocolError


@dataclass
class Counters:
    """Mutable event counters accumulated during a protocol run.

    Not every field is meaningful for every protocol (e.g. only MIN counts
    ``write_throughs``); unused fields stay zero.
    """

    #: Block fetches (== total misses, plus re-fetches after replacement).
    fetches: int = 0
    #: Block invalidations applied to a cache (copies destroyed).
    invalidations_applied: int = 0
    #: Invalidation messages sent (block granularity; one per remote copy).
    invalidations_sent: int = 0
    #: Word-invalidation messages (MIN/WBWI: one per word per remote copy).
    word_invalidations: int = 0
    #: Words written through to memory (MIN only).
    write_throughs: int = 0
    #: Misses forced purely by ownership (store to a non-owned block whose
    #: local invalidation buffer is non-empty — section 2.2's "cost of
    #: maintaining ownership").
    ownership_misses: int = 0
    #: Stores buffered at the sender (SD/SRD).
    stores_buffered: int = 0
    #: Buffered stores that were combined with an earlier buffered store to
    #: the same block (SD/SRD send combining).
    stores_combined: int = 0
    #: Ownership (block) transfers.
    ownership_transfers: int = 0
    #: Cache replacements (finite-cache extension only).
    replacements: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters by field name.

        Derived from ``dataclasses.fields`` so a counter added later can
        never silently vanish from reports, checkpoints or merges.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def merge(cls, parts: Iterable["Counters"]) -> "Counters":
        """Sum counters across block shards (or any disjoint partition).

        Every field is a count of events attributable to a single
        (processor, block) pair — MIN's ``write_throughs`` count stores
        (one block each), SD/SRD's ``stores_buffered``/``stores_combined``
        count per-(proc, block) buffer entries — so summing per-shard
        counters reproduces the whole-trace counters exactly.  Per-proc
        store-buffer *occupancy* across blocks is not a counter and is not
        modeled cross-shard (see :mod:`repro.protocols.sharding`).
        """
        total = cls()
        names = [f.name for f in fields(cls)]
        for part in parts:
            for name in names:
                value = getattr(part, name)
                if not isinstance(value, int):
                    raise ProtocolError(
                        f"counter {name!r} is not an int and cannot be "
                        f"shard-merged: {value!r}")
                setattr(total, name, getattr(total, name) + value)
        return total


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of running one protocol over one trace at one block size."""

    protocol: str
    trace_name: str
    block_bytes: int
    num_procs: int
    #: Per-class miss decomposition (PC/CTS/CFS/PTS/PFS) with data_refs.
    breakdown: DuboisBreakdown
    counters: Counters
    #: Replacement misses (finite-cache runs; 0 for infinite caches).
    replacement_misses: int = 0

    @property
    def misses(self) -> int:
        """Total misses (coherence + cold + replacement)."""
        return self.breakdown.total + self.replacement_misses

    @property
    def miss_rate(self) -> float:
        """Total miss rate in percent of data references."""
        refs = self.breakdown.data_refs
        return 100.0 * self.misses / refs if refs else 0.0

    @property
    def cold_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.cold)

    @property
    def pts_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.pts)

    @property
    def pfs_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.pfs)

    def fig6_bars(self) -> Dict[str, float]:
        """The TRUE/COLD/FALSE/TOTAL series of the paper's Figure 6."""
        return {"TRUE": self.pts_rate, "COLD": self.cold_rate,
                "FALSE": self.pfs_rate, "TOTAL": self.miss_rate}

    def describe(self) -> str:
        b = self.breakdown
        extra = ""
        if self.replacement_misses:
            extra = f" repl={self.replacement_misses}"
        return (f"{self.protocol:5s} B={self.block_bytes:<5d} "
                f"miss_rate={self.miss_rate:6.2f}%  misses={self.misses}"
                f" (cold={b.cold} PTS={b.pts} PFS={b.pfs}{extra})")


def merge_shard_results(parts: Sequence[ProtocolResult]) -> ProtocolResult:
    """Merge per-shard partial results into one whole-trace result.

    Valid when the parts come from a disjoint partition of the trace's
    blocks (see :mod:`repro.protocols.sharding`): lifetimes, miss classes
    and every counter are per-(block, processor), so the merged result is
    bit-identical to a single whole-trace run.  All parts must describe
    the same protocol, trace, block size and processor count.
    """
    if not parts:
        raise ProtocolError("cannot merge an empty shard result list")
    first = parts[0]
    for part in parts[1:]:
        for attr in ("protocol", "trace_name", "block_bytes", "num_procs"):
            if getattr(part, attr) != getattr(first, attr):
                raise ProtocolError(
                    f"shard results disagree on {attr}: "
                    f"{getattr(first, attr)!r} vs {getattr(part, attr)!r}")
    breakdown = first.breakdown
    for part in parts[1:]:
        breakdown = breakdown + part.breakdown
    return ProtocolResult(
        protocol=first.protocol,
        trace_name=first.trace_name,
        block_bytes=first.block_bytes,
        num_procs=first.num_procs,
        breakdown=breakdown,
        counters=Counters.merge(p.counters for p in parts),
        replacement_misses=sum(p.replacement_misses for p in parts),
    )
