"""Result and counter types for protocol simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..classify.breakdown import DuboisBreakdown


@dataclass
class Counters:
    """Mutable event counters accumulated during a protocol run.

    Not every field is meaningful for every protocol (e.g. only MIN counts
    ``write_throughs``); unused fields stay zero.
    """

    #: Block fetches (== total misses, plus re-fetches after replacement).
    fetches: int = 0
    #: Block invalidations applied to a cache (copies destroyed).
    invalidations_applied: int = 0
    #: Invalidation messages sent (block granularity; one per remote copy).
    invalidations_sent: int = 0
    #: Word-invalidation messages (MIN/WBWI: one per word per remote copy).
    word_invalidations: int = 0
    #: Words written through to memory (MIN only).
    write_throughs: int = 0
    #: Misses forced purely by ownership (store to a non-owned block whose
    #: local invalidation buffer is non-empty — section 2.2's "cost of
    #: maintaining ownership").
    ownership_misses: int = 0
    #: Stores buffered at the sender (SD/SRD).
    stores_buffered: int = 0
    #: Buffered stores that were combined with an earlier buffered store to
    #: the same block (SD/SRD send combining).
    stores_combined: int = 0
    #: Ownership (block) transfers.
    ownership_transfers: int = 0
    #: Cache replacements (finite-cache extension only).
    replacements: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in (
            "fetches", "invalidations_applied", "invalidations_sent",
            "word_invalidations", "write_throughs", "ownership_misses",
            "stores_buffered", "stores_combined", "ownership_transfers",
            "replacements")}


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of running one protocol over one trace at one block size."""

    protocol: str
    trace_name: str
    block_bytes: int
    num_procs: int
    #: Per-class miss decomposition (PC/CTS/CFS/PTS/PFS) with data_refs.
    breakdown: DuboisBreakdown
    counters: Counters
    #: Replacement misses (finite-cache runs; 0 for infinite caches).
    replacement_misses: int = 0

    @property
    def misses(self) -> int:
        """Total misses (coherence + cold + replacement)."""
        return self.breakdown.total + self.replacement_misses

    @property
    def miss_rate(self) -> float:
        """Total miss rate in percent of data references."""
        refs = self.breakdown.data_refs
        return 100.0 * self.misses / refs if refs else 0.0

    @property
    def cold_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.cold)

    @property
    def pts_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.pts)

    @property
    def pfs_rate(self) -> float:
        return self.breakdown.rate(self.breakdown.pfs)

    def fig6_bars(self) -> Dict[str, float]:
        """The TRUE/COLD/FALSE/TOTAL series of the paper's Figure 6."""
        return {"TRUE": self.pts_rate, "COLD": self.cold_rate,
                "FALSE": self.pfs_rate, "TOTAL": self.miss_rate}

    def describe(self) -> str:
        b = self.breakdown
        extra = ""
        if self.replacement_misses:
            extra = f" repl={self.replacement_misses}"
        return (f"{self.protocol:5s} B={self.block_bytes:<5d} "
                f"miss_rate={self.miss_rate:6.2f}%  misses={self.misses}"
                f" (cold={b.cold} PTS={b.pts} PFS={b.pfs}{extra})")
