"""MAX — worst-case invalidation propagation (paper section 4.0).

"MAX is not a protocol.  Rather, it corresponds to a worst-case scenario
for scheduling invalidations, consistent with the release consistency
model.  Stores from a given processor can be performed at any time between
the time they are issued by the processor and the next release in that
processor, and they can be performed out of program order.  Within these
limits, we schedule the invalidations of each store so as to maximize the
miss rate."

Adversary model
---------------
Each store issued by processor *p* at trace index *s* owns, for every other
processor *q*, one invalidation deliverable at any index in ``[s, d]``,
where *d* is *p*'s next release (end of trace if none).  An invalidation
delivered while *q* holds a copy destroys it; otherwise it is wasted.  The
adversary chooses delivery times to maximize misses.

Greedy schedule: at an access by *q* to a block it holds (copy fetched at
index *f*), any unspent invalidation with deadline ``d > f`` can be
delivered just before the access (its issue is necessarily ``<= t`` because
tokens are created as the trace advances), forcing a miss.  Spending rule:

* tokens whose deadline has passed (``d <= t``) can never kill a copy
  fetched later, so *all* of them are spent on this one miss;
* otherwise a single token with the earliest deadline is spent, saving
  later deadlines to kill future re-fetches (the ping-pong that makes MAX
  blow up for large blocks — and spectacularly for LU, as the paper notes).

This earliest-deadline greedy is optimal per (block, receiver) stream by
the standard exchange argument for interval matching.

Implementation note: stores by the same processor with the same deadline
are interchangeable, so tokens are *merged* per (block, issuer, deadline)
with a multiplicity and a per-receiver spent count.  This keeps the per-
access scan proportional to the number of open store windows (at most a
few per processor), not the number of stores.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List

from ..errors import ProtocolError
from ..trace.events import RELEASE
from ..trace.trace import Trace
from .base import Protocol, register
from .results import ProtocolResult

_PRUNE_THRESHOLD = 24


class _TokenGroup:
    """All stores by one issuer sharing one deadline, for one block."""

    __slots__ = ("issuer", "deadline", "count", "spent")

    def __init__(self, issuer: int, deadline: int, num_procs: int):
        self.issuer = issuer
        self.deadline = deadline
        self.count = 0                     # stores merged into this group
        self.spent = [0] * num_procs       # kills consumed per receiver

    def available(self, proc: int) -> int:
        return self.count - self.spent[proc]


@register
class MAXSchedule(Protocol):
    """Adversarial invalidation timing maximizing the miss rate."""

    name = "MAX"

    def __init__(self, num_procs, block_map):
        super().__init__(num_procs, block_map)
        self._groups: Dict[int, List[_TokenGroup]] = {}
        # fetch_index[block]: per-proc index of the current copy's fetch.
        self._fetch_index: Dict[int, List[int]] = {}
        self._t = 0
        self._releases: List[List[int]] = []
        self._end_index = 0

    # ------------------------------------------------------------------
    # driver (needs event indices and precomputed release positions)
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ProtocolResult:
        if trace.num_procs > self.num_procs:
            raise ProtocolError(
                f"trace has {trace.num_procs} processors, protocol built "
                f"for {self.num_procs}")
        self._releases = [[] for _ in range(self.num_procs)]
        for index, (proc, op, _) in enumerate(trace.events):
            if op == RELEASE:
                self._releases[proc].append(index)
        self._end_index = len(trace.events)
        return super().run(trace)

    def _deadline(self, proc: int, issue: int) -> int:
        """Index of ``proc``'s next release after ``issue`` (or end of trace)."""
        releases = self._releases[proc]
        k = bisect_right(releases, issue)
        return releases[k] if k < len(releases) else self._end_index

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def on_load(self, proc: int, addr: int) -> None:
        self._adversarial_access(proc, addr)
        self._t += 1

    def on_store(self, proc: int, addr: int) -> None:
        self._adversarial_access(proc, addr)
        block = self.block_map.block_of(addr)
        deadline = self._deadline(proc, self._t)
        groups = self._groups.setdefault(block, [])
        for g in groups:
            if g.issuer == proc and g.deadline == deadline:
                g.count += 1
                break
        else:
            g = _TokenGroup(proc, deadline, self.num_procs)
            g.count = 1
            groups.append(g)
            if len(groups) > _PRUNE_THRESHOLD:
                self._prune(block, groups)
        self.tracker.store_performed(proc, addr)
        self._t += 1

    def on_acquire(self, proc: int, addr: int) -> None:
        self._t += 1

    def on_release(self, proc: int, addr: int) -> None:
        self._t += 1

    # ------------------------------------------------------------------
    # the adversary
    # ------------------------------------------------------------------
    def _adversarial_access(self, proc: int, addr: int) -> None:
        block = self.block_map.block_of(addr)
        if self.has_copy(proc, block):
            fetched_at = self._fetch_index[block][proc]
            kills = self._spend_tokens(block, proc, fetched_at)
            if kills:
                self.drop_copy(proc, block)
                self._fetch(proc, block)
                self.counters.invalidations_sent += kills
        else:
            self._fetch(proc, block)
        self.tracker.access(proc, addr)

    def _spend_tokens(self, block: int, proc: int, fetched_at: int) -> int:
        """Spend invalidations to kill the current copy; returns how many."""
        groups = self._groups.get(block)
        if not groups:
            return 0
        t = self._t
        feasible = [g for g in groups
                    if g.issuer != proc and g.deadline > fetched_at
                    and g.available(proc) > 0]
        if not feasible:
            return 0
        forced = [g for g in feasible if g.deadline <= t]
        if forced:
            # Must all deliver by now: they land in this single epoch.
            kills = 0
            for g in forced:
                kills += g.available(proc)
                g.spent[proc] = g.count
            return kills
        best = min(feasible, key=lambda g: g.deadline)
        best.spent[proc] += 1
        return 1

    def _fetch(self, proc: int, block: int) -> None:
        self.fetch(proc, block)
        row = self._fetch_index.get(block)
        if row is None:
            row = [-1] * self.num_procs
            self._fetch_index[block] = row
        row[proc] = self._t

    def _prune(self, block: int, groups: List[_TokenGroup]) -> None:
        """Drop token groups that can no longer kill any copy."""
        valid_mask = self.valid.get(block, 0)
        fetch_row = self._fetch_index.get(block)
        t = self._t
        keep: List[_TokenGroup] = []
        for g in groups:
            if g.deadline > t:
                keep.append(g)
                continue
            # Deadline passed: only useful against a currently-held copy
            # fetched before the deadline.
            alive = False
            remaining = valid_mask & ~(1 << g.issuer)
            if remaining and fetch_row is not None:
                for q in self.iter_procs(remaining):
                    if g.available(q) > 0 and fetch_row[q] < g.deadline:
                        alive = True
                        break
            if alive:
                keep.append(g)
        groups[:] = keep
