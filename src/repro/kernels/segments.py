"""Sort-and-scan primitives shared by the vectorized kernels.

Every kernel question is of the form "what happened most recently in my
block (or word) before me?".  This module answers them with packed
sorts plus O(n) passes instead of per-event state machines:

* :func:`pack_order` — rows ordered by ``(key, row)``.  Packing the row
  index into the sort key makes every value unique, so an *unstable*
  sort is exact, and for the narrow key ranges synthetic traces use the
  packed array fits ``uint32`` — roughly 10x faster than a stable
  int64 argsort;
* :func:`prev_same_index` — previous occurrence of each row's key;
* :func:`store_runs` / :func:`last_store_tables` — the store
  subsequence of a unit-sorted order and per-row last / last-remote
  store positions (the two-top trick: within a unit, tracking the
  newest store and the newest store by a different processor answers
  "newest store by a processor other than me" for every processor);
* :func:`unit_store_summary` — per-unit first / newest / newest-remote
  store rows from a unit-sorted store subsequence.

All positions are row indices into the batch being analysed, held as
``int32`` (value arrays) indexed by ``int64`` orders (NumPy's fast
indexing path).  Because every returned quantity is a *relative order*
between rows of the same unit, running these over any row subset that
keeps whole (unit, processor) histories intact — e.g. a block shard's
rows, or the rows of units that have stores at all — yields results
identical to slicing the full-batch answers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NO_ROW", "pack_order", "prev_same_index", "dense_unique",
           "regroup_monotone", "unit_ids", "store_runs",
           "last_store_tables", "unit_store_summary"]

#: Sentinel for "no such row" in int32 position arrays.
NO_ROW = np.int32(-1)


def pack_order(key: np.ndarray, key_max: int):
    """``(order, sorted_key)`` with rows ordered by ``(key, row)``.

    ``key_max`` bounds the key values (inclusive); it picks the
    narrowest packing — ``uint32`` when key and index bits fit, else
    ``int64``, else a stable argsort for astronomically wide keys.  The
    sorted keys come back int32 when they fit (cheaper downstream
    gathers and compares), int64 otherwise.
    """
    n = len(key)
    if n == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    shift = max((n - 1).bit_length(), 1)
    key_max = int(key_max)
    top = (key_max << shift) | (n - 1)
    skey_t = np.int32 if key_max < 1 << 31 else np.int64
    if top < 1 << 32:
        packed = (key.astype(np.uint32) << np.uint32(shift)
                  | np.arange(n, dtype=np.uint32))
        packed.sort()
        order = (packed & np.uint32((1 << shift) - 1)).astype(np.int64)
        skey = (packed >> np.uint32(shift)).astype(skey_t)
    elif top < 1 << 63:
        packed = ((key.astype(np.int64) << np.int64(shift))
                  | np.arange(n, dtype=np.int64))
        packed.sort()
        order = packed & np.int64((1 << shift) - 1)
        skey = (packed >> np.int64(shift)).astype(skey_t, copy=False)
    else:  # pragma: no cover - keys this wide are densified first
        order = np.argsort(key, kind="stable")
        skey = key[order].astype(np.int64)
    return order, skey


def prev_same_index(key: np.ndarray, key_max: int) -> np.ndarray:
    """``prev[i]`` = greatest ``j < i`` with ``key[j] == key[i]``, else -1.

    Adjacency in ``(key, row)`` order is exactly "previous occurrence".
    """
    n = len(key)
    prev = np.full(n, NO_ROW, dtype=np.int32)
    if n > 1:
        order, sk = pack_order(key, key_max)
        same = np.flatnonzero(sk[1:] == sk[:-1]) + 1
        prev[order[same]] = order[same - 1]
    return prev


def dense_unique(values: np.ndarray):
    """``(unique_sorted, dense)`` with ``values == unique_sorted[dense]``."""
    uniq, dense = np.unique(values, return_inverse=True)
    return uniq, dense.reshape(-1).astype(np.int64, copy=False)


def regroup_monotone(dense: np.ndarray, mapped: np.ndarray):
    """Coarser dense ids after collapsing unique values through a
    non-decreasing map.

    ``mapped`` is ``f(unique_sorted)`` for a monotone ``f`` (e.g.
    ``unique_words >> offset_bits`` maps words to blocks): equal mapped
    values are contiguous, so the coarser ids are a change-point cumsum —
    no second comparison sort.  Returns ``(ids_per_row, num_groups)``.
    """
    if len(mapped) == 0:
        return np.empty(0, dtype=np.int64), 0
    change = np.empty(len(mapped), dtype=bool)
    change[0] = True
    np.not_equal(mapped[1:], mapped[:-1], out=change[1:])
    group_of_uniq = np.cumsum(change) - 1
    return group_of_uniq[dense], int(group_of_uniq[-1]) + 1


def unit_ids(values: np.ndarray):
    """Per-row unit ids: ``(ids, num_units, unique_or_None)``.

    Raw values serve directly as ids when their range is modest (the
    synthetic traces use tiny address spaces), keeping the packed sort
    keys narrow for free; sparse or huge ranges densify first, which
    also guarantees the ids fit the int64 packing.
    """
    n = len(values)
    vmax = int(values.max()) + 1 if n else 0
    if vmax <= 4 * n + (1 << 16):
        return values, vmax, None
    uniq, dense = dense_unique(values)
    return dense, len(uniq), uniq


class StoreRuns:
    """The store subsequence of one unit-sorted row order.

    ``row`` / ``unit`` / ``proc`` are each store's batch row, unit id
    and processor; ``other[k]`` is the batch row of the newest store to
    the same unit *by a different processor* strictly before store ``k``
    (-1 if none).
    """

    __slots__ = ("row", "row32", "unit", "proc", "other")

    def __init__(self, row, unit, proc, other):
        self.row = row
        self.row32 = row.astype(np.int32)
        self.unit = unit
        self.proc = proc
        self.other = other


def store_runs(order: np.ndarray, sunit: np.ndarray, st: np.ndarray,
               proc_small: np.ndarray) -> StoreRuns:
    """Extract the store subsequence (see :class:`StoreRuns`).

    ``st`` is the store mask gathered into sorted order; same-processor
    runs break on unit or processor change, and the store preceding a
    run is that run's "other" (two-top) value.
    """
    pos = np.flatnonzero(st)
    row = order[pos]
    unit = sunit[pos]
    proc = proc_small[row]
    m = len(pos)
    if m == 0:
        return StoreRuns(row, unit, proc, np.empty(0, dtype=np.int32))
    brk = np.empty(m, dtype=bool)
    brk[0] = True
    brk[1:] = (unit[1:] != unit[:-1]) | (proc[1:] != proc[:-1])
    run_first = np.maximum.accumulate(
        np.where(brk, np.arange(m, dtype=np.int64), 0))
    pi = run_first - 1
    has = pi >= 0
    pis = np.where(has, pi, 0)
    has &= unit[pis] == unit
    other = np.where(has, row[pis], np.int64(-1)).astype(np.int32)
    return StoreRuns(row, unit, proc, other)


def last_store_tables(order: np.ndarray, sunit: np.ndarray,
                      st: np.ndarray, runs: StoreRuns,
                      proc_small: np.ndarray):
    """Per-row last / last-remote store positions, in *sorted* order.

    Returns ``(last, remote)`` (each int32, aligned with ``order``):
    the newest store to the row's unit strictly before it, by any / by
    a different processor.  The newest store before a row is the store
    subsequence entry just before the row's exclusive store count; when
    that store was written by the row's own processor, its two-top
    "other" value is exactly the row's newest remote store.
    """
    n = len(order)
    if len(runs.row) == 0:
        empty = np.full(n, NO_ROW, dtype=np.int32)
        return empty, empty
    j = np.cumsum(st, dtype=np.int64)
    np.subtract(j, st, out=j, casting="unsafe")
    j -= 1
    valid = j >= 0
    js = np.maximum(j, 0, out=j)
    valid &= runs.unit[js] == sunit
    last = np.where(valid, runs.row32[js], NO_ROW)
    remote = np.where(runs.proc[js] != proc_small[order], last,
                      np.where(valid, runs.other[js], NO_ROW))
    return last, remote


def unit_store_summary(unit: np.ndarray, row: np.ndarray,
                       proc: np.ndarray, num_units: int):
    """Per-unit store summary from a unit-sorted store subsequence.

    Returns ``(first_row, top_row, top_proc, second_row)``: each unit's
    oldest store, newest store, its writer, and the newest store by a
    different processor (-1 where absent).  A unit's stores are
    contiguous, so the first/newest are the run boundaries and the
    newest-remote is the two-top "other" value at the unit's last store.
    """
    first_row = np.full(num_units, -1, dtype=np.int64)
    top_row = np.full(num_units, -1, dtype=np.int64)
    top_proc = np.full(num_units, -1, dtype=np.int64)
    second_row = np.full(num_units, -1, dtype=np.int64)
    m = len(unit)
    if m:
        brk = np.empty(m, dtype=bool)
        brk[0] = True
        brk[1:] = (unit[1:] != unit[:-1]) | (proc[1:] != proc[:-1])
        run_first = np.maximum.accumulate(
            np.where(brk, np.arange(m, dtype=np.int64), 0))
        pi = run_first - 1
        has = pi >= 0
        pis = np.where(has, pi, 0)
        has &= unit[pis] == unit
        other = np.where(has, row[pis], np.int64(-1))
        ufirst = np.flatnonzero(
            np.concatenate(([True], unit[1:] != unit[:-1])))
        ulast = np.append(ufirst[1:], m) - 1
        present = unit[ufirst]
        first_row[present] = row[ufirst]
        top_row[present] = row[ulast]
        top_proc[present] = proc[ulast]
        second_row[present] = other[ulast]
    return first_row, top_row, top_proc, second_row
