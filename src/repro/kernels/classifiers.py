"""Vectorized classifier kernels over columnar data rows.

Each kernel computes the *same counters* as its streaming oracle
(:class:`~repro.classify.dubois.DuboisClassifier`,
:class:`~repro.classify.eggers.EggersClassifier`,
:class:`~repro.classify.torrellas.TorrellasClassifier`) from a handful of
NumPy sorts and reductions instead of a Python loop per event.  The
reduction is legal because every piece of classifier state is per
(block, processor) or per (word, processor), and every transition
compares *relative positions* of rows within those groups:

* an access misses iff it is the first (block, processor) access or a
  store to the block intervened since the previous one — every store to
  the block between two consecutive accesses by one processor is
  necessarily a *remote* store (the processor's own stores are accesses
  too), so the test is a store-*count* difference along the block's
  time-sorted history, no per-processor provenance needed;
* Dubois' per-word C flags reduce to "newest remote store to the word
  before the access" (own stores *can* be the newest here, so this one
  needs the two-top remote table), folded per miss lifetime with
  ``np.maximum.reduceat`` and resolved against the previous *essential*
  lifetime by an antitone fixpoint iteration (the only sequential
  dependence, solved in a few whole-array passes);
* Eggers' stale-word test reduces to "newest store to the word since
  the previous block access" and Torrellas' word-system to the same
  first-touch/store-since comparisons at word granularity.

Because every comparison is order-only, feeding a kernel any row subset
that keeps whole (block, processor) histories — a block shard, or the
rows surviving the Dubois no-op read elision mask — produces exactly the
counters the oracle produces on that subset.  The word-side tables are
additionally restricted to rows of words that are stored at all (the
rest have no last store by construction), a subset of the same kind.
The full legality argument lives in DESIGN.md ("Vectorized kernels").

Heartbeat contract: kernels credit the runtime progress counter with
roughly one tick per row, spread across their phases in slices no larger
than ``HEARTBEAT_CHUNK``, so the supervisor's stall watchdog sees a
slow-but-alive vectorized cell advance exactly like an interpreted one.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..classify.breakdown import DuboisBreakdown, SimpleBreakdown
from ..runtime import signals
from ..trace.events import STORE
from .segments import (
    NO_ROW,
    last_store_tables,
    pack_order,
    prev_same_index,
    regroup_monotone,
    store_runs,
    unit_ids,
    unit_store_summary,
)

__all__ = ["KernelContext", "dubois_kernel", "eggers_kernel",
           "torrellas_kernel"]


class _Heartbeat:
    """Spread one batch's liveness ticks across a kernel's phases.

    The interpreted paths call
    :func:`repro.runtime.signals.note_progress` once per
    ``HEARTBEAT_CHUNK`` events consumed; a kernel consumes the whole
    batch in a few vectorized phases, so it credits the same total (one
    tick per row) in per-phase installments, each split into slices no
    larger than ``HEARTBEAT_CHUNK``.  Every tick is also a cancellation
    point, so graceful shutdown interrupts between phases.  ``stats``
    (when given) accumulates the batch count and row total for the
    ``kernel.batch`` telemetry metric.
    """

    #: Nominal phase budget; :meth:`finish` credits any remainder, so a
    #: kernel with fewer phases still ticks its full row count.
    PHASES = 8

    def __init__(self, rows: int, stats: Optional[Dict] = None):
        self.rows = int(rows)
        self.stats = stats
        self._credited = 0
        self._phase_no = 0
        if stats is not None:
            stats["rows"] = stats.get("rows", 0) + self.rows
            stats.setdefault("batches", 0)

    def _tick(self, n: int) -> None:
        step = signals.HEARTBEAT_CHUNK
        while n > 0:
            take = min(n, step)
            signals.note_progress(take)
            if self.stats is not None:
                self.stats["batches"] += 1
            n -= take

    def phase(self) -> None:
        """Credit one phase's share of the batch's ticks."""
        self._phase_no += 1
        target = min(self.rows,
                     self.rows * self._phase_no // self.PHASES)
        due = target - self._credited
        self._credited = target
        if due > 0:
            self._tick(due)
        else:
            signals.check_interrupt()

    def pulse(self) -> None:
        """A cancellation point that credits nothing (inner loops)."""
        signals.check_interrupt()

    def finish(self) -> None:
        """Credit whatever the phases have not ticked yet."""
        due = self.rows - self._credited
        self._credited = self.rows
        if due > 0:
            self._tick(due)
        else:
            signals.check_interrupt()


class KernelContext:
    """Shared vectorized derivations over one batch of data rows.

    Word-granularity artifacts (the per-word store tables, the previous
    same-(word, processor) access) do not depend on the block size, so
    one context serves every block size of a sweep; per-block-size state
    lives in cached :class:`_BlockView` instances.  Per-row position
    tables are int32 and the large gathers run over int8/int16 value
    arrays — at these sizes the kernels are memory-bound, so narrow
    lanes are most of the speedup after the packed sorts.
    """

    def __init__(self, proc, op, addr, num_procs: int):
        self.proc = np.ascontiguousarray(proc, dtype=np.int64)
        op = np.ascontiguousarray(op, dtype=np.int64)
        self.addr = np.ascontiguousarray(addr, dtype=np.int64)
        self.store8 = (op == STORE).view(np.int8)
        self.n = len(self.addr)
        self.num_procs = int(num_procs)
        self.proc_small = self.proc.astype(np.int16)
        self._pbits = max(1, (self.num_procs - 1).bit_length())
        self.wid, self.num_words, self.wuniq = unit_ids(self.addr)
        self._srows = None
        self._wbase = None
        self._word_last = None
        self._word_remote = None
        self._word_prev = None
        self._views: Dict[int, "_BlockView"] = {}

    @classmethod
    def from_columns(cls, data, num_procs: int) -> "KernelContext":
        """Build from a data-only :class:`~repro.trace.columnar.TraceColumns`."""
        return cls(data.proc, data.op, data.addr, num_procs)

    # -- word-granularity state (block-size independent) ----------------
    def store_rows(self) -> np.ndarray:
        """Rows that are stores, in time order."""
        if self._srows is None:
            self._srows = np.flatnonzero(self.store8)
        return self._srows

    def _word_base(self):
        """Word-sorted last/remote store tables, pre-scatter.

        Computed over the rows whose word has at least one store when
        that subset is small enough to pay for the indirection (rows of
        never-stored words have no last/remote store by construction —
        whole word histories, hence exact).  Returns ``(g_row, last,
        remote)`` aligned with the (word, time) sort of that subset.
        """
        if self._wbase is None:
            has = np.zeros(self.num_words, dtype=bool)
            has[self.wid[self.store_rows()]] = True
            mask = has[self.wid]
            sel = None
            wid_s, st8 = self.wid, self.store8
            cnt = int(mask.sum())
            if cnt < (3 * self.n) // 4:
                sel = np.flatnonzero(mask)
                wid_s, st8 = self.wid[sel], self.store8[sel]
            order, swid = pack_order(wid_s, self.num_words - 1)
            g_row = order if sel is None else sel[order]
            st = st8[order]
            runs = store_runs(g_row, swid, st, self.proc_small)
            last_s, remote_s = last_store_tables(g_row, swid, st, runs,
                                                 self.proc_small)
            self._wbase = (g_row, last_s, remote_s)
        return self._wbase

    def word_last_rows(self) -> np.ndarray:
        """Newest store to the row's word strictly before it (any proc)."""
        if self._word_last is None:
            g_row, last_s, _ = self._word_base()
            out = np.full(self.n, NO_ROW, dtype=np.int32)
            out[g_row] = last_s
            self._word_last = out
        return self._word_last

    def word_remote_rows(self) -> np.ndarray:
        """Newest store to the row's word before it by another proc."""
        if self._word_remote is None:
            g_row, _, remote_s = self._word_base()
            out = np.full(self.n, NO_ROW, dtype=np.int32)
            out[g_row] = remote_s
            self._word_remote = out
        return self._word_remote

    def word_prev(self) -> np.ndarray:
        """Previous access by the same processor to the same word."""
        if self._word_prev is None:
            key = ((self.wid << self._pbits) | self.proc)
            kmax = (((self.num_words - 1) << self._pbits)
                    | (self.num_procs - 1))
            self._word_prev = prev_same_index(key, kmax)
        return self._word_prev

    # -- per-block-size state -------------------------------------------
    def block_view(self, offset_bits: int) -> "_BlockView":
        if offset_bits not in self._views:
            self._views[offset_bits] = _BlockView(self, offset_bits)
        return self._views[offset_bits]


class _BlockView:
    """Block-granularity state of one context at one block size.

    Raw word ids shift straight to block ids; densified ids collapse
    through the sorted uniques (monotone, so no second comparison
    sort).  The (block, processor) grouping is one packed sort yielding
    the group starts and the sorted order the folds run over; rows of a
    group being *adjacent* there, "my group's previous row" is a
    one-slot shift, so nothing is gathered through a prev-index table.
    """

    def __init__(self, ctx: KernelContext, offset_bits: int):
        self.ctx = ctx
        self.offset_bits = offset_bits
        if ctx.wuniq is None:
            self.bid = ctx.wid >> offset_bits
            self.num_blocks = ((ctx.num_words - 1) >> offset_bits) + 1 \
                if ctx.n else 0
        else:
            self.bid, self.num_blocks = regroup_monotone(
                ctx.wid, ctx.wuniq >> offset_bits)
        self._bsorted = None
        self._counts = None
        self._summary = None
        self._groups = None
        self._prev_sorted = None
        self._miss = None
        self._life = None

    def _block_sorted(self):
        """Rows in (block, time) order: ``(order, sorted_bid, store)``."""
        if self._bsorted is None:
            order, sbid = pack_order(self.bid, self.num_blocks - 1)
            self._bsorted = (order, sbid, self.ctx.store8[order])
        return self._bsorted

    def store_counts(self) -> np.ndarray:
        """Exclusive running store count along each block's history.

        ``counts[i]`` is the number of stores in blocks sorted before
        i's block plus those to i's block strictly before i.
        Differences between rows of the same block cancel the per-block
        offset, which is the only way the kernels consume it: the
        number of stores to the block between two of its rows.
        """
        if self._counts is None:
            order, _, st = self._block_sorted()
            t = np.cumsum(st, dtype=np.int32)
            np.subtract(t, st, out=t, casting="unsafe")
            out = np.empty(self.ctx.n, dtype=np.int32)
            out[order] = t
            self._counts = out
        return self._counts

    def store_summary(self):
        """Per-block ``(first_row, top_row, top_proc, second_row)``.

        Store-subsequence-sized work over the (block, time) sort the
        counts already paid for.
        """
        if self._summary is None:
            order, sbid, st = self._block_sorted()
            spos = np.flatnonzero(st)
            self._summary = unit_store_summary(
                sbid[spos], order[spos],
                self.ctx.proc_small[order[spos]].astype(np.int64),
                self.num_blocks)
        return self._summary

    def groups(self):
        """``(order, new_group, gid_sorted, num_groups)``.

        ``new_group`` and ``gid_sorted`` align with ``order`` (the
        (block, processor, time) sort), not with batch rows — the
        kernels consume them in place and sum, so nothing is ever
        scattered back to row order.
        """
        if self._groups is None:
            ctx = self.ctx
            n = ctx.n
            if n:
                key = (self.bid << ctx._pbits) | ctx.proc
                kmax = (((self.num_blocks - 1) << ctx._pbits)
                        | (ctx.num_procs - 1))
                order, sk = pack_order(key, kmax)
                newg = np.empty(n, dtype=bool)
                newg[0] = True
                np.not_equal(sk[1:], sk[:-1], out=newg[1:])
                gid_sorted = np.cumsum(newg, dtype=np.int32)
                gid_sorted -= 1
                num_groups = int(gid_sorted[-1]) + 1
            else:
                order = np.empty(0, dtype=np.int64)
                newg = np.empty(0, dtype=bool)
                gid_sorted = np.empty(0, dtype=np.int32)
                num_groups = 0
            self._groups = (order, newg, gid_sorted, num_groups)
        return self._groups

    def prev_sorted(self) -> np.ndarray:
        """Previous same-(block, processor) row, aligned with the group
        order (-1 at group starts) — only the word-versus-block-history
        comparisons need the actual row number."""
        if self._prev_sorted is None:
            order, newg, _, _ = self.groups()
            n = len(order)
            shifted = np.empty(n, dtype=np.int64)
            if n:
                shifted[0] = -1
                shifted[1:] = order[:-1]
            self._prev_sorted = np.where(newg, np.int64(-1), shifted)
        return self._prev_sorted

    def miss_sorted(self) -> np.ndarray:
        """Miss flags aligned with the (block, processor, time) order.

        A row misses iff it is its group's first or any store to the
        block (necessarily remote) lands between it and the group's
        previous row.  Group rows are adjacent in group order, so the
        store-count difference is a one-slot shift — excluding the
        previous row itself when it is a store.
        """
        if self._miss is None:
            counts = self.store_counts()
            order, newg, _, _ = self.groups()
            n = len(order)
            if not n:
                self._miss = np.empty(0, dtype=bool)
                return self._miss
            tg = counts[order]
            st_g = self.ctx.store8[order]
            between = np.empty(n, dtype=np.int32)
            between[0] = 0
            np.subtract(tg[1:], tg[:-1], out=between[1:])
            np.subtract(between[1:], st_g[:-1], out=between[1:],
                        casting="unsafe")
            self._miss = newg | (between > 0)
        return self._miss

    def lifetimes(self, hb: _Heartbeat):
        """Per-miss-lifetime facts shared by Dubois and OTF.

        Returns ``(fetch_row, cold, dirty, essential)`` — one entry per
        miss of the batch, in (group, time) order:

        * ``fetch_row`` — the row whose access fetched the block;
        * ``cold`` — the lifetime is its (block, processor)'s first;
        * ``dirty`` — some store to the block precedes the fetch;
        * ``essential`` — some access of the lifetime touched a word
          whose newest remote store postdates the processor's previous
          essential lifetime on the block (the paper's C-flag test).
        """
        if self._life is None:
            ctx = self.ctx
            rww = ctx.word_remote_rows()
            hb.phase()
            order, newg, gid_sorted, _ = self.groups()
            hb.phase()
            miss = self.miss_sorted()
            hb.phase()
            starts = np.flatnonzero(miss)
            fetch = order[starts]
            if len(starts):
                maxr = np.maximum.reduceat(rww[order], starts)
            else:
                maxr = np.empty(0, dtype=np.int32)
            cold = newg[starts]
            first_store, _, _, _ = self.store_summary()
            fsb = first_store[self.bid[fetch]]
            dirty = (fsb >= 0) & (fsb < fetch)
            hb.phase()
            ess = _essential_chain(gid_sorted[starts], maxr, fetch, hb)
            self._life = (fetch, cold, dirty, ess)
        return self._life


def _essential_chain(life_group: np.ndarray, maxr: np.ndarray,
                     fetch: np.ndarray, hb: _Heartbeat) -> np.ndarray:
    """Resolve the essential flag per lifetime, chained within groups.

    A lifetime is essential iff its newest relevant remote word store
    postdates the *fetch of the group's previous essential lifetime*
    (substituting the fetch for the oracle's clear position is exact: no
    remote store to the block can land inside an established lifetime —
    it would have ended it).  Only lifetimes with any remote word store
    at all (``maxr >= 0``) are candidates.

    The recurrence is solved by iterating ``flags -> (maxr > F(flags))``
    where ``F(flags)`` is each candidate's last flagged in-group
    predecessor's fetch, computed as one ``np.maximum.accumulate`` over
    values offset by ``group * big`` (fetches increase within a group,
    so the running max *is* the last flagged predecessor, and earlier
    groups' values stay below the current group's offset).  The map is
    antitone and its fixpoint is unique (induction over each group's
    candidates), so iterating from all-flagged converges exactly to the
    sequential chain, in practice within a handful of whole-array
    passes.
    """
    ess = np.zeros(len(maxr), dtype=bool)
    cand = np.flatnonzero(maxr >= 0)
    if not len(cand):
        return ess
    g = life_group[cand].astype(np.int64)
    r = maxr[cand].astype(np.int64)
    f = fetch[cand]
    big = int(f.max()) + 2
    base = g * big
    flagged_val = base + f + 1
    shifted = np.empty(len(cand), dtype=np.int64)
    flags = np.ones(len(cand), dtype=bool)
    while True:
        hb.pulse()
        vals = np.where(flags, flagged_val, base)
        shifted[0] = -1
        shifted[1:] = vals[:-1]
        F = np.maximum.accumulate(shifted)
        F -= base
        F -= 1
        np.maximum(F, -1, out=F)
        new = r > F
        if np.array_equal(new, flags):
            break
        flags = new
    ess[cand] = flags
    return ess


def dubois_kernel(ctx: KernelContext, block_map,
                  stats: Optional[Dict] = None) -> DuboisBreakdown:
    """Dubois et al.'s five-way classification, vectorized.

    Bit-identical to feeding the batch's rows through
    :class:`~repro.classify.dubois.DuboisClassifier` (``data_refs`` is
    the batch's row count; callers composing with the no-op read elision
    re-add their dropped rows, exactly like the interpreted path).
    """
    hb = _Heartbeat(ctx.n, stats)
    view = ctx.block_view(block_map.offset_bits)
    fetch, cold, dirty, ess = view.lifetimes(hb)
    ncold = ~cold
    ness = ~ess
    result = DuboisBreakdown(
        pc=int((cold & ness & ~dirty).sum()),
        cts=int((cold & ess).sum()),
        cfs=int((cold & ness & dirty).sum()),
        pts=int((ncold & ess).sum()),
        pfs=int((ncold & ness).sum()),
        data_refs=ctx.n,
    )
    hb.finish()
    return result


def eggers_kernel(ctx: KernelContext, block_map,
                  stats: Optional[Dict] = None) -> SimpleBreakdown:
    """Eggers & Katz's cold/true/false split, vectorized.

    An invalidation miss is true sharing iff some store to the missing
    word postdates the processor's previous access to the block: the
    oracle's per-word stale bits are reset (inclusively) by the first
    remote store after that access and OR-accumulated by later ones, and
    every store in that window is remote — the processor itself has no
    accesses there — so "newest store to the word > previous block
    access" is exactly the stale-bit test.
    """
    hb = _Heartbeat(ctx.n, stats)
    view = ctx.block_view(block_map.offset_bits)
    lastw = ctx.word_last_rows()
    hb.phase()
    order, newg, _, _ = view.groups()
    hb.phase()
    miss = view.miss_sorted()
    hb.phase()
    prev_g = view.prev_sorted()
    hb.phase()
    inval = miss & ~newg
    tsm = inval & (lastw[order] > prev_g)
    result = SimpleBreakdown(
        cold=int(newg.sum()),
        true_sharing=int(tsm.sum()),
        false_sharing=int((inval & ~tsm).sum()),
        data_refs=ctx.n,
    )
    hb.finish()
    return result


def torrellas_kernel(ctx: KernelContext, block_map,
                     stats: Optional[Dict] = None) -> SimpleBreakdown:
    """Torrellas et al.'s split, vectorized.

    Runs the miss test at both granularities: a block miss is cold when
    the word was never referenced by the processor, true sharing when
    the word system also misses (first word touch or a word store since
    the previous same-word access — necessarily remote, the processor's
    own word stores being word accesses), false sharing otherwise.
    """
    hb = _Heartbeat(ctx.n, stats)
    view = ctx.block_view(block_map.offset_bits)
    lastw = ctx.word_last_rows()
    hb.phase()
    wprev = ctx.word_prev()
    hb.phase()
    order, _, _, _ = view.groups()
    hb.phase()
    bm = view.miss_sorted()
    hb.phase()
    wprev_g = wprev[order]
    ft = wprev_g == NO_ROW
    wm = ft | (lastw[order] > wprev_g)
    warm = bm & ~ft
    result = SimpleBreakdown(
        cold=int((bm & ft).sum()),
        true_sharing=int((warm & wm).sum()),
        false_sharing=int((warm & ~wm).sum()),
        data_refs=ctx.n,
    )
    hb.finish()
    return result
