"""Vectorized kernel registry and execution-path resolution.

A *kernel* computes one grid cell's counters as NumPy reductions over
columnar rows instead of a per-event Python loop (10×+ single-core on
the cells that have one; see BENCH_throughput.json).  The streaming
implementations stay authoritative: they are the differential-test
oracle — exactly the role ``ReferenceDuboisClassifier`` plays for the
optimized Dubois classifier — and the execution path for every cell
without a kernel.

Resolution contract (``--kernel {auto,vectorized,interpreted}``):

* ``interpreted`` — every cell runs the streaming oracle;
* ``vectorized`` — cells with a kernel run it, the rest *fall back* to
  the oracle (finite caches and the delayed protocols have inherently
  sequential state); requires NumPy;
* ``auto`` (default) — ``vectorized`` when NumPy is importable, else
  ``interpreted``.

Checkpoint journals bind the *effective* mode — ``auto`` resolved
against NumPy availability via :func:`effective_kernel_mode` (see
:func:`repro.runtime.checkpoint.journal_digest`) — so ``--resume`` can
never mix results computed under different execution paths, even when
both runs said ``auto``.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["KERNEL_MODES", "VECTORIZED_AVAILABLE", "CLASSIFIER_KERNELS",
           "PROTOCOL_KERNELS", "KernelContext", "validate_kernel_mode",
           "has_kernel", "resolve_kernel", "effective_kernel_mode"]

#: Legal ``--kernel`` settings.
KERNEL_MODES = ("auto", "vectorized", "interpreted")

try:
    import numpy as _np  # noqa: F401
    VECTORIZED_AVAILABLE = True
except ImportError:  # pragma: no cover - the tree is tested with numpy
    VECTORIZED_AVAILABLE = False

if VECTORIZED_AVAILABLE:
    from .classifiers import (
        KernelContext,
        dubois_kernel,
        eggers_kernel,
        torrellas_kernel,
    )
    from .protocols import otf_kernel

    #: ``{classifier name: kernel}`` for classify cells (compare cells
    #: use all three).
    CLASSIFIER_KERNELS = {"dubois": dubois_kernel,
                          "eggers": eggers_kernel,
                          "torrellas": torrellas_kernel}
    #: ``{protocol name: kernel}`` for protocol cells.
    PROTOCOL_KERNELS = {"OTF": otf_kernel}
else:  # pragma: no cover
    KernelContext = None
    CLASSIFIER_KERNELS = {}
    PROTOCOL_KERNELS = {}


def validate_kernel_mode(mode: str) -> str:
    """Validate a ``--kernel`` setting, returning it unchanged."""
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; known: {list(KERNEL_MODES)}")
    if mode == "vectorized" and not VECTORIZED_AVAILABLE:
        raise ConfigError(
            "--kernel vectorized requires NumPy, which is not importable; "
            "use --kernel interpreted (or auto)")
    return mode


def effective_kernel_mode(mode: str) -> str:
    """Resolve ``auto`` to the execution-path family this process takes.

    Returns ``"vectorized"`` or ``"interpreted"`` — the string checkpoint
    journals bind, so two ``auto`` runs on machines that resolve
    differently can never share a journal.
    """
    validate_kernel_mode(mode)
    if mode == "interpreted" or not VECTORIZED_AVAILABLE:
        return "interpreted"
    return "vectorized"


def has_kernel(kind: str, which) -> bool:
    """True when a vectorized kernel exists for one cell kind.

    ``kind`` is a grid-cell kind (shard subtask kinds resolve like their
    parent: a shard's rows feed the same kernel).
    """
    if kind.endswith("-shard"):
        kind = kind[:-len("-shard")]
    if kind == "classify":
        return which in CLASSIFIER_KERNELS
    if kind == "compare":
        return bool(CLASSIFIER_KERNELS)
    if kind == "protocol":
        return which in PROTOCOL_KERNELS
    return False


def resolve_kernel(mode: str, kind: str, which) -> str:
    """The execution path one cell takes under a kernel mode.

    Returns ``"vectorized"`` or ``"interpreted"``.  Both ``auto`` and
    ``vectorized`` fall back to the oracle for cells without a kernel;
    they differ only in that ``vectorized`` refuses to run without NumPy
    while ``auto`` degrades silently.
    """
    validate_kernel_mode(mode)
    if mode == "interpreted" or not VECTORIZED_AVAILABLE:
        return "interpreted"
    return "vectorized" if has_kernel(kind, which) else "interpreted"
