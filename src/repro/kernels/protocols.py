"""Vectorized protocol kernels.

Only the infinite-cache on-the-fly protocol (OTF) has a kernel so far:
its dynamics reduce exactly to the Dubois miss lifetimes (see
:mod:`repro.protocols.lifetime` for the streaming proof that OTF's
tracker produces the Dubois breakdown) plus three counter identities:

* ``fetches`` — one per miss, i.e. the lifetime count;
* ``invalidations_sent == invalidations_applied`` — every store
  invalidates each remote copy exactly once and every copy drop *is*
  such an invalidation, so both equal the number of lifetimes that do
  not survive to the end of the batch.  A (block, processor) group's
  last lifetime survives iff no remote store to the block postdates the
  group's last access — the per-block two-top store summary answers
  that without any per-event replay;
* ``replacements`` and every other counter — zero (infinite caches,
  write-through of the invalidate protocol is not modelled by OTF).

Sync events are no-ops for OTF (its acquire/release handlers are the
base class's), so the kernel consumes only data rows; a shard's
replicated sync rows change nothing, exactly as in the interpreted path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..classify.breakdown import DuboisBreakdown
from ..protocols.results import Counters, ProtocolResult
from .classifiers import KernelContext, _Heartbeat

__all__ = ["otf_kernel"]


def otf_kernel(ctx: KernelContext, block_map, *, trace_name: str,
               stats: Optional[Dict] = None) -> ProtocolResult:
    """OTF over one batch of data rows, vectorized.

    Bit-identical to ``make_protocol("OTF", num_procs, block_map)
    .run(trace)`` over the same rows (with ``num_procs = ctx.num_procs``
    and ``data_refs`` the batch's row count).
    """
    hb = _Heartbeat(ctx.n, stats)
    view = ctx.block_view(block_map.offset_bits)
    fetch, cold, dirty, ess = view.lifetimes(hb)
    ncold = ~cold
    ness = ~ess
    breakdown = DuboisBreakdown(
        pc=int((cold & ness & ~dirty).sum()),
        cts=int((cold & ess).sum()),
        cfs=int((cold & ness & dirty).sum()),
        pts=int((ncold & ess).sum()),
        pfs=int((ncold & ness).sum()),
        data_refs=ctx.n,
    )
    fetches = len(fetch)
    # Copies alive at the end of the batch: per (block, processor) group,
    # only the last lifetime can survive, and it does iff the newest
    # remote store to the block precedes the group's last access.
    live = 0
    if ctx.n:
        order, newg, _, _ = view.groups()
        last_pos = np.flatnonzero(np.append(newg[1:], True))
        last_row = order[last_pos]
        bid = view.bid[last_row]
        pg = ctx.proc[last_row]
        _, top_row, top_proc, second_row = view.store_summary()
        remote_final = np.where(top_proc[bid] != pg,
                                top_row[bid], second_row[bid])
        live = int((remote_final < last_row).sum())
    invalidations = fetches - live
    hb.finish()
    return ProtocolResult(
        protocol="OTF",
        trace_name=trace_name,
        block_bytes=block_map.block_bytes,
        num_procs=ctx.num_procs,
        breakdown=breakdown,
        counters=Counters(fetches=fetches,
                          invalidations_applied=invalidations,
                          invalidations_sent=invalidations),
        replacement_misses=0,
    )
