"""Columnar (structure-of-arrays) trace core.

A :class:`TraceColumns` holds one interleaved trace as three parallel
``int64`` NumPy arrays — ``proc``, ``op``, ``addr`` — matching the layout
of the on-disk ``.npz`` format (:mod:`repro.trace.io`), so traces load and
save with zero copies.  :class:`~repro.trace.trace.Trace` keeps its
tuple-sequence API on top of this core: a trace built from tuples grows
columns lazily on first use, and a trace loaded from arrays materializes
tuples lazily on first use.  Either representation is authoritative; they
always decode to the same events.

The columnar form is what makes parameter sweeps cheap (see
:mod:`repro.analysis.engine`): per-block-size derived columns are single
vectorized expressions (``addr >> shift``), the data-op prefilter is a
boolean mask instead of a per-event branch, and slicing is a NumPy view.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from ..errors import TraceError
from .events import ACQUIRE, Event, LOAD, OPS, RELEASE, STORE

#: dtype of all three columns (matches the ``.npz`` format).
COLUMN_DTYPE = np.int64


def _as_column(values, label: str) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype != COLUMN_DTYPE:
        arr = arr.astype(COLUMN_DTYPE)
    if arr.ndim != 1:
        raise TraceError(f"{label} column must be one-dimensional, "
                         f"got shape {arr.shape}")
    return arr


class TraceColumns:
    """Three parallel ``int64`` arrays encoding an interleaved trace.

    Parameters
    ----------
    proc, op, addr:
        Equal-length one-dimensional arrays (anything ``np.asarray``
        accepts).  Arrays already of dtype int64 are stored by reference
        (zero-copy); other dtypes are converted.
    """

    __slots__ = ("proc", "op", "addr")

    def __init__(self, proc, op, addr):
        self.proc = _as_column(proc, "proc")
        self.op = _as_column(op, "op")
        self.addr = _as_column(addr, "addr")
        if not (len(self.proc) == len(self.op) == len(self.addr)):
            raise TraceError(
                f"column lengths differ: proc={len(self.proc)} "
                f"op={len(self.op)} addr={len(self.addr)}")

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "TraceColumns":
        """Encode a sequence of ``(proc, op, addr)`` tuples."""
        n = len(events)
        if n == 0:
            empty = np.empty(0, dtype=COLUMN_DTYPE)
            return cls(empty, empty.copy(), empty.copy())
        packed = np.array(events, dtype=COLUMN_DTYPE)
        if packed.ndim != 2 or packed.shape[1] != 3:
            raise TraceError("events must be (proc, op, addr) triples")
        # np.ascontiguousarray gives each column its own compact buffer
        # (a strided view would pin the full 3xN matrix in memory).
        return cls(np.ascontiguousarray(packed[:, 0]),
                   np.ascontiguousarray(packed[:, 1]),
                   np.ascontiguousarray(packed[:, 2]))

    def to_events(self) -> List[Event]:
        """Decode into the tuple-list representation."""
        return list(zip(self.proc.tolist(), self.op.tolist(),
                        self.addr.tolist()))

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.proc)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.to_events())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TraceColumns(self.proc[index], self.op[index],
                                self.addr[index])
        return (int(self.proc[index]), int(self.op[index]),
                int(self.addr[index]))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (np.array_equal(self.proc, other.proc)
                and np.array_equal(self.op, other.op)
                and np.array_equal(self.addr, other.addr))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceColumns: {len(self)} events>"

    def take(self, indices: np.ndarray) -> "TraceColumns":
        """Gather a subset of rows by index array."""
        return TraceColumns(self.proc[indices], self.op[indices],
                            self.addr[indices])

    def concat(self, other: "TraceColumns") -> "TraceColumns":
        """Row-wise concatenation."""
        return TraceColumns(np.concatenate([self.proc, other.proc]),
                            np.concatenate([self.op, other.op]),
                            np.concatenate([self.addr, other.addr]))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def infer_num_procs(self) -> int:
        """``max(proc) + 1`` (1 for an empty trace)."""
        if len(self.proc) == 0:
            return 1
        return int(self.proc.max()) + 1

    def validate(self, num_procs: int) -> None:
        """Vectorized well-formedness check (mirrors ``validate_event``)."""
        if len(self) == 0:
            return
        if self.proc.min() < 0 or self.proc.max() >= num_procs:
            bad = int(self.proc[(self.proc < 0)
                                | (self.proc >= num_procs)][0])
            raise TraceError(
                f"processor id {bad} out of range for {num_procs} processors")
        if self.op.min() < min(OPS) or self.op.max() > max(OPS):
            bad = int(self.op[(self.op < min(OPS)) | (self.op > max(OPS))][0])
            raise TraceError(f"bad opcode {bad!r}")
        if self.addr.min() < 0:
            bad = int(self.addr[self.addr < 0][0])
            raise TraceError(f"bad word address {bad!r}")

    # ------------------------------------------------------------------
    # derived columns (the sweep engine's raw material)
    # ------------------------------------------------------------------
    def op_counts(self) -> np.ndarray:
        """Event count per opcode, indexed by opcode (length 4)."""
        return np.bincount(self.op, minlength=len(OPS))[:len(OPS)]

    def data_mask(self) -> np.ndarray:
        """Boolean mask of LOAD/STORE rows (the data-op prefilter)."""
        return self.op <= STORE  # LOAD == 0, STORE == 1

    def data_indices(self) -> np.ndarray:
        """Row indices of LOAD/STORE events."""
        return np.flatnonzero(self.data_mask())

    def data_only(self) -> "TraceColumns":
        """Compressed copy containing only LOAD/STORE rows."""
        return self.take(self.data_indices())

    def sync_indices(self) -> Dict[int, np.ndarray]:
        """Row indices of ACQUIRE and RELEASE events, keyed by opcode."""
        return {ACQUIRE: np.flatnonzero(self.op == ACQUIRE),
                RELEASE: np.flatnonzero(self.op == RELEASE)}

    def block_ids(self, offset_bits: int) -> np.ndarray:
        """Block address per event: ``addr >> offset_bits``, vectorized."""
        return self.addr >> offset_bits

    def word_offsets(self, words_per_block: int) -> np.ndarray:
        """Word offset within the block per event, vectorized."""
        return self.addr & (words_per_block - 1)

    def per_processor_indices(self, num_procs: int) -> List[np.ndarray]:
        """Row indices of each processor's events (program order)."""
        return [np.flatnonzero(self.proc == p) for p in range(num_procs)]

    def touched_words(self) -> np.ndarray:
        """Sorted unique word addresses touched by data accesses."""
        return np.unique(self.addr[self.data_mask()])
