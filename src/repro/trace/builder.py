"""Fluent builder for small hand-written traces.

The paper's Figures 1-4 are tiny two-processor reference sequences; the
builder makes those (and unit tests) readable:

>>> from repro.trace import TraceBuilder
>>> t = (TraceBuilder(num_procs=2)
...      .store(0, 0)        # T0: P0 stores word 0
...      .load(1, 0)         # T1: P1 loads word 0
...      .build("fig1"))
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import TraceError
from .events import ACQUIRE, Event, LOAD, RELEASE, STORE, make_event
from .trace import Trace


class TraceBuilder:
    """Accumulates events in interleaved order; see module docstring."""

    def __init__(self, num_procs: int):
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self._events: List[Event] = []

    # ------------------------------------------------------------------
    # one event at a time
    # ------------------------------------------------------------------
    def _emit(self, proc: int, op: int, addr: int) -> "TraceBuilder":
        if not 0 <= proc < self.num_procs:
            raise TraceError(
                f"processor {proc} out of range for {self.num_procs} processors")
        self._events.append(make_event(proc, op, addr))
        return self

    def load(self, proc: int, addr: int) -> "TraceBuilder":
        """Append ``LOAD addr`` by ``proc``."""
        return self._emit(proc, LOAD, addr)

    def store(self, proc: int, addr: int) -> "TraceBuilder":
        """Append ``STORE addr`` by ``proc``."""
        return self._emit(proc, STORE, addr)

    def acquire(self, proc: int, addr: int) -> "TraceBuilder":
        """Append an ``ACQUIRE`` of sync variable ``addr`` by ``proc``."""
        return self._emit(proc, ACQUIRE, addr)

    def release(self, proc: int, addr: int) -> "TraceBuilder":
        """Append a ``RELEASE`` of sync variable ``addr`` by ``proc``."""
        return self._emit(proc, RELEASE, addr)

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def loads(self, proc: int, addrs) -> "TraceBuilder":
        """Append a LOAD per address."""
        for a in addrs:
            self.load(proc, a)
        return self

    def stores(self, proc: int, addrs) -> "TraceBuilder":
        """Append a STORE per address."""
        for a in addrs:
            self.store(proc, a)
        return self

    def critical_section(self, proc: int, lock_addr: int, body) -> "TraceBuilder":
        """Append ``ACQUIRE lock; body(self); RELEASE lock``."""
        self.acquire(proc, lock_addr)
        body(self)
        return self.release(proc, lock_addr)

    def extend(self, events) -> "TraceBuilder":
        """Append raw ``(proc, op, addr)`` tuples."""
        for proc, op, addr in events:
            self._emit(proc, op, addr)
        return self

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def build(self, name: str = "", meta: Optional[dict] = None) -> Trace:
        """Produce the (validated) :class:`~repro.trace.trace.Trace`."""
        # list() already gives the trace a private copy (the builder may be
        # extended afterwards), so skip Trace's defensive copy.
        return Trace(list(self._events), self.num_procs, name=name, meta=meta,
                     copy=False)
