"""On-disk (+ in-memory) cache of generated workload traces.

Generating a benchmark trace costs minutes of simulated-machine time;
re-running an experiment over the same workload should not pay that again.
:class:`WorkloadTraceCache` stores each generated trace as a compact
``.npz`` keyed by **workload name, full configuration, seed and library
version**, so a cache entry is invalidated automatically whenever anything
that could change the generated events changes.

Used by the sweep engine (:mod:`repro.analysis.engine`), the CLI
(``--trace-cache``), ``benchmarks/conftest.py`` and
``examples/paper_scale.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Union

from .io import load_npz, save_npz
from .trace import Trace

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> str:
    """``$REPRO_TRACE_CACHE`` or ``~/.cache/repro/traces``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


def workload_cache_key(workload) -> str:
    """Stable cache key for one workload configuration.

    Combines the workload's name, its full configuration dictionary, its
    seed and the library version; any difference produces a different key.
    """
    from .. import __version__

    payload = {
        "workload": workload.name,
        "label": workload.label,
        "config": workload.describe_config(),
        "seed": workload.seed,
        "version": __version__,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha1(blob.encode()).hexdigest()[:16]
    return f"{workload.label}-{digest}"


class WorkloadTraceCache:
    """Generate-once cache of workload traces.

    Parameters
    ----------
    directory:
        Where ``.npz`` entries live (created on first write).  Defaults to
        :func:`default_cache_dir`.
    memory:
        Keep loaded traces in an in-process dictionary as well, so repeated
        ``get`` calls within one process return the same object without
        touching disk.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 memory: bool = True):
        self.directory = directory or default_cache_dir()
        self._memory: Optional[Dict[str, Trace]] = {} if memory else None

    # ------------------------------------------------------------------
    def _resolve(self, workload: Union[str, object]):
        if isinstance(workload, str):
            from ..workloads.registry import make_workload
            return make_workload(workload)
        return workload

    def path_for(self, workload: Union[str, object]) -> str:
        """On-disk path of the cache entry for a workload (or its name)."""
        wl = self._resolve(workload)
        return os.path.join(self.directory, f"{workload_cache_key(wl)}.npz")

    def get(self, workload: Union[str, object]) -> Trace:
        """Load the workload's trace from cache, generating it on a miss."""
        wl = self._resolve(workload)
        key = workload_cache_key(wl)
        if self._memory is not None and key in self._memory:
            return self._memory[key]
        path = os.path.join(self.directory, f"{key}.npz")
        if os.path.exists(path):
            trace = load_npz(path)
        else:
            trace = wl.generate()
            os.makedirs(self.directory, exist_ok=True)
            save_npz(trace, path)
        if self._memory is not None:
            self._memory[key] = trace
        return trace

    def clear_memory(self) -> None:
        """Drop the in-process cache (disk entries are kept)."""
        if self._memory is not None:
            self._memory.clear()
