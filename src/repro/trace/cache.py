"""On-disk (+ in-memory) cache of generated workload traces.

Generating a benchmark trace costs minutes of simulated-machine time;
re-running an experiment over the same workload should not pay that again.
:class:`WorkloadTraceCache` stores each generated trace as a compact
``.npz`` keyed by **workload name, full configuration, seed and library
version**, so a cache entry is invalidated automatically whenever anything
that could change the generated events changes.

The cache is hardened against the failure modes of long production runs:

* **Atomic writes** — entries are written to a temporary sibling and
  renamed into place (:func:`repro.trace.io.save_npz`), so a killed
  process never leaves a truncated entry behind the real name.
* **Integrity checking** — each entry stores a content checksum verified
  on load; a corrupt or truncated entry is *quarantined* (renamed to
  ``<entry>.corrupt``) and transparently regenerated instead of crashing
  the caller.
* **Inter-process locking** — generation takes a per-entry lock file, so
  N concurrent sweeps over the same workload generate its trace once
  instead of stampeding.

Used by the sweep engine (:mod:`repro.analysis.engine`), the CLI
(``--trace-cache``), ``benchmarks/conftest.py`` and
``examples/paper_scale.py``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import warnings
from typing import Dict, Optional, Union

from ..errors import TraceFormatError
from .io import load_npz, save_npz
from .trace import Trace

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> str:
    """``$REPRO_TRACE_CACHE`` or ``~/.cache/repro/traces``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


def workload_cache_key(workload) -> str:
    """Stable cache key for one workload configuration.

    Combines the workload's name, its full configuration dictionary, its
    seed and the library version; any difference produces a different key.
    """
    from .. import __version__

    payload = {
        "workload": workload.name,
        "label": workload.label,
        "config": workload.describe_config(),
        "seed": workload.seed,
        "version": __version__,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha1(blob.encode()).hexdigest()[:16]
    return f"{workload.label}-{digest}"


@contextlib.contextmanager
def entry_lock(path: str):
    """Exclusive inter-process lock guarding one cache entry's generation.

    Blocks until the lock is acquired (a concurrent generator of the same
    entry is *minutes* of work worth waiting for).  The ``<path>.lock``
    file is left in place — unlinking a locked file would race with other
    waiters.  Degrades to no locking where ``fcntl`` is unavailable (the
    atomic rename still keeps concurrent writers safe, they just both pay
    the generation).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = f"{path}.lock"
    os.makedirs(os.path.dirname(lock_path) or ".", exist_ok=True)
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


class WorkloadTraceCache:
    """Generate-once cache of workload traces.

    Parameters
    ----------
    directory:
        Where ``.npz`` entries live (created on first write).  Defaults to
        :func:`default_cache_dir`.
    memory:
        Keep loaded traces in an in-process dictionary as well, so repeated
        ``get`` calls within one process return the same object without
        touching disk.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 memory: bool = True):
        self.directory = directory or default_cache_dir()
        self._memory: Optional[Dict[str, Trace]] = {} if memory else None

    # ------------------------------------------------------------------
    def _resolve(self, workload: Union[str, object]):
        if isinstance(workload, str):
            from ..workloads.registry import make_workload
            return make_workload(workload)
        return workload

    def path_for(self, workload: Union[str, object]) -> str:
        """On-disk path of the cache entry for a workload (or its name)."""
        wl = self._resolve(workload)
        return os.path.join(self.directory, f"{workload_cache_key(wl)}.npz")

    # ------------------------------------------------------------------
    def _load_entry(self, path: str) -> Optional[Trace]:
        """Load one entry, quarantining it on any integrity failure."""
        if not os.path.exists(path):
            return None
        try:
            return load_npz(path)
        except TraceFormatError as exc:
            self._quarantine(path, exc)
            return None

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Move a corrupt entry aside so the evidence survives regeneration."""
        quarantined = f"{path}.corrupt"
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - entry vanished underneath us
            quarantined = "<gone>"
        warnings.warn(
            f"quarantined corrupt trace cache entry {path!r} -> "
            f"{quarantined!r} ({exc}); regenerating", stacklevel=4)

    def get(self, workload: Union[str, object]) -> Trace:
        """Load the workload's trace from cache, generating it on a miss.

        Corrupt or truncated entries are quarantined and regenerated
        transparently; concurrent callers (other processes included)
        generate each entry at most once thanks to a per-entry lock file.
        """
        wl = self._resolve(workload)
        key = workload_cache_key(wl)
        if self._memory is not None and key in self._memory:
            return self._memory[key]
        path = os.path.join(self.directory, f"{key}.npz")
        trace = self._load_entry(path)
        if trace is None:
            os.makedirs(self.directory, exist_ok=True)
            with entry_lock(path):
                # A concurrent holder may have generated the entry while
                # we waited for the lock: re-check before regenerating.
                trace = self._load_entry(path)
                if trace is None:
                    trace = wl.generate()
                    save_npz(trace, path)
        if self._memory is not None:
            self._memory[key] = trace
        return trace

    def clear_memory(self) -> None:
        """Drop the in-process cache (disk entries are kept)."""
        if self._memory is not None:
            self._memory.clear()
