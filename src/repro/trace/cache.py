"""On-disk (+ in-memory) cache of generated workload traces.

Generating a benchmark trace costs minutes of simulated-machine time;
re-running an experiment over the same workload should not pay that again.
:class:`WorkloadTraceCache` stores each generated trace as a compact
``.npz`` keyed by **workload name, full configuration, seed and library
version**, so a cache entry is invalidated automatically whenever anything
that could change the generated events changes.

The cache is hardened against the failure modes of long production runs:

* **Atomic writes** — entries are written to a temporary sibling and
  renamed into place (:func:`repro.trace.io.save_npz`), so a killed
  process never leaves a truncated entry behind the real name.
* **Integrity checking** — each entry stores a content checksum verified
  on load; a corrupt or truncated entry is *quarantined* (renamed to
  ``<entry>.corrupt``) and transparently regenerated instead of crashing
  the caller.
* **Inter-process locking** — generation takes a per-entry lock file, so
  N concurrent sweeps over the same workload generate its trace once
  instead of stampeding.
* **Disk budget** — a free-space preflight refuses to start a write the
  filesystem cannot hold (raising a structured
  :class:`~repro.errors.ResourceExhaustedError` instead of half-writing
  an entry), and an optional ``max_bytes`` quota (``--cache-max-bytes``)
  evicts least-recently-used entries under an inter-process lock so the
  cache directory never outgrows its budget.
* **Quarantine GC** — quarantined corrupt entries (``*.corrupt``) are
  garbage-collected on cache open, keeping only the newest per key for
  post-mortem, so repeated corruption (or version churn) cannot
  accumulate unbounded evidence files.

Used by the sweep engine (:mod:`repro.analysis.engine`), the CLI
(``--trace-cache``), ``benchmarks/conftest.py`` and
``examples/paper_scale.py``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import re
import warnings
from typing import Dict, List, Optional, Tuple, Union

from ..errors import TraceFormatError
from ..obs.recorder import get_recorder
from .io import load_npz, save_npz
from .trace import Trace

logger = logging.getLogger(__name__)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE"

#: Rough on-disk bytes per trace event, used for the free-space preflight
#: before writing a new entry.  Deliberately generous: an ``.npz`` entry
#: stores five integer columns plus metadata, compressing well below this.
BYTES_PER_EVENT_ON_DISK = 24

#: Fixed headroom added to every entry-size estimate (archive framing,
#: metadata, temp-file sibling during the atomic rename).
ENTRY_SLACK_BYTES = 256 << 10

_CORRUPT_RE = re.compile(r"^(?P<key>.+\.npz)\.corrupt(?:\.\d+)?$")


def default_cache_dir() -> str:
    """``$REPRO_TRACE_CACHE`` or ``~/.cache/repro/traces``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


def workload_cache_key(workload) -> str:
    """Stable cache key for one workload configuration.

    Combines the workload's name, its full configuration dictionary, its
    seed and the library version; any difference produces a different key.
    """
    from .. import __version__

    payload = {
        "workload": workload.name,
        "label": workload.label,
        "config": workload.describe_config(),
        "seed": workload.seed,
        "version": __version__,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha1(blob.encode()).hexdigest()[:16]
    return f"{workload.label}-{digest}"


@contextlib.contextmanager
def entry_lock(path: str):
    """Exclusive inter-process lock guarding one cache entry's generation.

    Blocks until the lock is acquired (a concurrent generator of the same
    entry is *minutes* of work worth waiting for).  The ``<path>.lock``
    file is left in place — unlinking a locked file would race with other
    waiters.  Degrades to no locking where ``fcntl`` is unavailable (the
    atomic rename still keeps concurrent writers safe, they just both pay
    the generation).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = f"{path}.lock"
    os.makedirs(os.path.dirname(lock_path) or ".", exist_ok=True)
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def gc_quarantined(directory: str) -> int:
    """Garbage-collect quarantined entries, keeping the newest per key.

    Quarantine preserves a corrupt entry for post-mortem, but an unlucky
    cache (bad disk, repeated kills mid-write) would otherwise accumulate
    one ``.corrupt`` file per incident forever.  For each cache key the
    newest quarantined file is kept as evidence and all older ones are
    deleted.  Returns the number of files removed.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    by_key: Dict[str, List[str]] = {}
    for name in names:
        m = _CORRUPT_RE.match(name)
        if m:
            by_key.setdefault(m.group("key"), []).append(name)
    removed = 0
    for key, files in by_key.items():
        if len(files) < 2:
            continue
        paths = [os.path.join(directory, f) for f in files]

        def _mtime(p: str) -> float:
            try:
                return os.path.getmtime(p)
            except OSError:
                return float("-inf")

        paths.sort(key=lambda p: (_mtime(p), p))
        for stale in paths[:-1]:
            try:
                os.remove(stale)
                removed += 1
            except OSError:  # pragma: no cover - racing GC in another proc
                pass
    return removed


class WorkloadTraceCache:
    """Generate-once cache of workload traces.

    Parameters
    ----------
    directory:
        Where ``.npz`` entries live (created on first write).  Defaults to
        :func:`default_cache_dir`.
    memory:
        Keep loaded traces in an in-process dictionary as well, so repeated
        ``get`` calls within one process return the same object without
        touching disk.
    max_bytes:
        Optional disk quota for the cache directory (``--cache-max-bytes``
        on the CLI).  After each write, least-recently-used entries are
        evicted under an inter-process lock until the directory fits the
        quota again; recency is the entry's mtime, which ``get`` bumps on
        every disk hit.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 memory: bool = True, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            from ..errors import ConfigError
            raise ConfigError(
                f"cache max_bytes must be positive, got {max_bytes}")
        self.directory = directory or default_cache_dir()
        self.max_bytes = max_bytes
        self._memory: Optional[Dict[str, Trace]] = {} if memory else None
        # Opening the cache adopts responsibility for its hygiene: drop
        # all but the newest quarantined file per key (satellite of the
        # corruption hardening — evidence is bounded, not unbounded) and
        # reap `*.tmp.npz` siblings leaked by writers that were SIGKILLed
        # between create and atomic rename (the age guard in gc_stale_tmp
        # protects writes concurrently in flight from another process).
        from ..runtime.resources import gc_stale_tmp

        gc_quarantined(self.directory)
        gc_stale_tmp(self.directory)

    # ------------------------------------------------------------------
    def _resolve(self, workload: Union[str, object]):
        if isinstance(workload, str):
            from ..workloads.registry import make_workload
            return make_workload(workload)
        return workload

    def path_for(self, workload: Union[str, object]) -> str:
        """On-disk path of the cache entry for a workload (or its name)."""
        wl = self._resolve(workload)
        return os.path.join(self.directory, f"{workload_cache_key(wl)}.npz")

    # ------------------------------------------------------------------
    def _load_entry(self, path: str) -> Optional[Trace]:
        """Load one entry, quarantining it on any integrity failure."""
        if not os.path.exists(path):
            return None
        try:
            return load_npz(path)
        except TraceFormatError as exc:
            self._quarantine(path, exc)
            return None

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Move a corrupt entry aside so the evidence survives regeneration.

        The quarantine name is unique (``.corrupt``, ``.corrupt.1``, …) so
        a repeat corruption of the same key never overwrites the earlier
        evidence; :func:`gc_quarantined` keeps only the newest on the next
        cache open.
        """
        quarantined = f"{path}.corrupt"
        n = 0
        while os.path.exists(quarantined):
            n += 1
            quarantined = f"{path}.corrupt.{n}"
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - entry vanished underneath us
            quarantined = "<gone>"
        logger.warning("quarantined corrupt trace cache entry %r -> %r "
                       "(%s); regenerating", path, quarantined, exc)
        warnings.warn(
            f"quarantined corrupt trace cache entry {path!r} -> "
            f"{quarantined!r} ({exc}); regenerating", stacklevel=4)

    def get(self, workload: Union[str, object]) -> Trace:
        """Load the workload's trace from cache, generating it on a miss.

        Corrupt or truncated entries are quarantined and regenerated
        transparently; concurrent callers (other processes included)
        generate each entry at most once thanks to a per-entry lock file.
        """
        wl = self._resolve(workload)
        key = workload_cache_key(wl)
        rec = get_recorder()
        if self._memory is not None and key in self._memory:
            rec.metric("cache.hit", 1, key=key, where="memory")
            return self._memory[key]
        path = os.path.join(self.directory, f"{key}.npz")
        with rec.span("cache.lookup", key=key):
            trace = self._load_entry(path)
        if trace is None:
            rec.metric("cache.miss", 1, key=key)
            logger.info("trace cache miss for %s; generating", key)
            os.makedirs(self.directory, exist_ok=True)
            with entry_lock(path):
                # A concurrent holder may have generated the entry while
                # we waited for the lock: re-check before regenerating.
                trace = self._load_entry(path)
                if trace is None:
                    with rec.span("trace.generate", key=key,
                                  workload=getattr(wl, "label", None)) as sp:
                        trace = wl.generate()
                        sp.set(events=len(trace))
                    self._preflight_write(trace)
                    save_npz(trace, path)
            self._enforce_quota(protect=path)
        else:
            rec.metric("cache.hit", 1, key=key, where="disk")
            logger.info("trace cache hit for %s", key)
            self._touch(path)
        if self._memory is not None:
            self._memory[key] = trace
        return trace

    # ------------------------------------------------------------------
    # disk budget
    # ------------------------------------------------------------------
    @staticmethod
    def _touch(path: str) -> None:
        """Bump an entry's mtime: our LRU clock for quota eviction."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - evicted by a concurrent proc
            pass

    def _preflight_write(self, trace: Trace) -> None:
        """Refuse to start a write the filesystem cannot hold."""
        from ..runtime.resources import ensure_free_space

        needed = BYTES_PER_EVENT_ON_DISK * len(trace) + ENTRY_SLACK_BYTES
        ensure_free_space(self.directory, needed, label="trace cache")

    def _scan_entries(self) -> List[Tuple[str, int, float]]:
        """Quota-relevant files as ``(path, size, mtime)``, oldest first.

        Counts entries and quarantined evidence; lock files are excluded
        (they are empty and must stay for waiters holding them open).
        """
        entries: List[Tuple[str, int, float]] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not (name.endswith(".npz") or _CORRUPT_RE.match(name)):
                continue
            path = os.path.join(self.directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((path, st.st_size, st.st_mtime))
        entries.sort(key=lambda e: (e[2], e[0]))
        return entries

    def _enforce_quota(self, protect: Optional[str] = None) -> int:
        """Evict LRU entries until the directory fits ``max_bytes``.

        Runs under a cache-wide inter-process lock so two processes never
        double-count or race deletions.  ``protect`` (the entry just
        written) is never evicted — the caller is about to use it.
        Returns the number of files evicted.
        """
        if self.max_bytes is None:
            return 0
        evicted = 0
        with entry_lock(os.path.join(self.directory, ".gc")):
            entries = self._scan_entries()
            total = sum(size for _, size, _ in entries)
            for path, size, _ in entries:
                if total <= self.max_bytes:
                    break
                if (protect is not None
                        and os.path.abspath(path) == os.path.abspath(protect)):
                    continue
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - concurrent eviction
                    continue
                # The lock file of an evicted entry is dead weight now; a
                # concurrent generator re-creates it on demand.
                with contextlib.suppress(OSError):
                    os.remove(f"{path}.lock")
                total -= size
                evicted += 1
            if total > self.max_bytes:
                warnings.warn(
                    f"trace cache still {total} bytes after eviction "
                    f"(quota {self.max_bytes}): the in-use entry alone "
                    "exceeds the quota", stacklevel=3)
        return evicted

    def disk_usage_bytes(self) -> int:
        """Current quota-relevant size of the cache directory."""
        return sum(size for _, size, _ in self._scan_entries())

    def clear_memory(self) -> None:
        """Drop the in-process cache (disk entries are kept)."""
        if self._memory is not None:
            self._memory.clear()
