"""Trace serialization.

Two formats are supported:

Text (``.trc``)
    One event per line: ``<proc> <OP> <hex-or-dec addr>``, with ``#``
    comments and a small header.  Human-readable; used in examples and docs.

NumPy (``.npz``)
    Three parallel int64 arrays (``proc``, ``op``, ``addr``) plus metadata.
    Compact and fast; used to cache generated benchmark traces between
    experiment runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List

import numpy as np

from ..errors import CacheIntegrityError, TraceError, TraceFormatError
from .columnar import TraceColumns
from .events import Event, op_from_name, op_name
from .trace import Trace

_TEXT_MAGIC = "#repro-trace-v1"


# ----------------------------------------------------------------------
# text format
# ----------------------------------------------------------------------
def dumps_text(trace: Trace) -> str:
    """Serialize a trace to the text format."""
    lines = [_TEXT_MAGIC,
             f"# name: {trace.name}",
             f"num_procs {trace.num_procs}"]
    for proc, op, addr in trace.events:
        lines.append(f"{proc} {op_name(op)} {addr:#x}")
    return "\n".join(lines) + "\n"


def loads_text(text: str) -> Trace:
    """Parse the text format produced by :func:`dumps_text`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != _TEXT_MAGIC:
        raise TraceFormatError(f"missing trace header {_TEXT_MAGIC!r}")
    name = ""
    num_procs = None
    events: List[Event] = []
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.split("#", 1)[0].strip()
        if raw.strip().startswith("# name:"):
            name = raw.split(":", 1)[1].strip()
            continue
        if not line:
            continue
        parts = line.split()
        if parts[0] == "num_procs":
            if len(parts) != 2:
                raise TraceFormatError(f"line {lineno}: bad num_procs line {raw!r}")
            try:
                num_procs = int(parts[1])
            except ValueError:
                raise TraceFormatError(
                    f"line {lineno}: bad num_procs value {parts[1]!r}") from None
            continue
        if len(parts) != 3:
            raise TraceFormatError(f"line {lineno}: expected 'proc OP addr', got {raw!r}")
        try:
            proc = int(parts[0])
            op = op_from_name(parts[1])
            addr = int(parts[2], 0)
        except (ValueError, TraceError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from None
        events.append((proc, op, addr))
    if num_procs is None:
        raise TraceFormatError("missing num_procs line")
    return Trace(events, num_procs, name=name, copy=False)


def save_text(trace: Trace, path: str) -> None:
    """Write the text format to ``path``."""
    with open(path, "w") as f:
        f.write(dumps_text(trace))


def load_text(path: str) -> Trace:
    """Read the text format from ``path``."""
    with open(path) as f:
        return loads_text(f.read())


# ----------------------------------------------------------------------
# npz format
# ----------------------------------------------------------------------
def _array_checksum(proc: np.ndarray, op: np.ndarray,
                    addr: np.ndarray) -> str:
    """SHA-256 over the trace arrays' bytes (dtype- and order-stable)."""
    h = hashlib.sha256()
    for arr in (proc, op, addr):
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(str(len(arr)).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_npz(trace: Trace, path: str) -> None:
    """Write the compact NumPy format to ``path`` atomically.

    The trace's columnar core is written as-is (zero-copy for traces that
    already carry columns, e.g. anything loaded from ``.npz``).  The
    header records a content checksum verified by :func:`load_npz`, and
    the file is written to a temporary sibling then renamed into place, so
    a crash mid-write can never leave a truncated entry under ``path``.
    """
    cols = trace.columns()
    header = json.dumps({"name": trace.name, "num_procs": trace.num_procs,
                         "meta": _jsonable(trace.meta),
                         "checksum": _array_checksum(cols.proc, cols.op,
                                                     cols.addr)})
    # np.savez appends ".npz" when missing, so the temp name must keep it.
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(tmp, proc=cols.proc, op=cols.op, addr=cols.addr,
                            header=np.array(header))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_npz(path: str, *, verify_checksum: bool = True) -> Trace:
    """Read the compact NumPy format from ``path``.

    Raises :class:`~repro.errors.CacheIntegrityError` (a
    :class:`~repro.errors.TraceFormatError` subclass) when the entry is
    truncated, unreadable, or fails its stored content checksum.  Entries
    written before checksums existed load without verification.
    """
    try:
        data = np.load(path, allow_pickle=False)
        for key in ("proc", "op", "addr", "header"):
            if key not in data:
                raise TraceFormatError(f"{path!r} missing array {key!r}")
        header = json.loads(str(data["header"]))
        proc = data["proc"]
        op = data["op"]
        addr = data["addr"]
    except TraceFormatError:
        raise
    except Exception as exc:
        # np.load lazily inflates arrays, so a truncated/garbled archive
        # can fail anywhere above (zlib, zipfile, json...).
        raise CacheIntegrityError(f"cannot read {path!r}: {exc}") from None
    if proc.ndim != 1 or op.ndim != 1 or addr.ndim != 1:
        raise TraceFormatError(f"{path!r} has non-1D trace arrays")
    if not (len(proc) == len(op) == len(addr)):
        raise TraceFormatError(f"{path!r} has unequal array lengths")
    if not isinstance(header, dict) or "num_procs" not in header:
        raise TraceFormatError(f"{path!r} has a malformed header")
    stored = header.get("checksum")
    if verify_checksum and stored is not None:
        actual = _array_checksum(proc, op, addr)
        if actual != stored:
            raise CacheIntegrityError(
                f"{path!r} failed its content checksum "
                f"(stored {stored[:12]}..., actual {actual[:12]}...)")
    try:
        cols = TraceColumns(proc, op, addr)
        return Trace.from_columns(cols, header["num_procs"],
                                  name=header.get("name", ""),
                                  meta=header.get("meta") or {})
    except TraceError as exc:
        raise TraceFormatError(f"{path!r}: {exc}") from None


def _jsonable(meta: dict) -> dict:
    """Best-effort conversion of metadata to JSON-safe values."""
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            value = repr(value)
        out[str(key)] = value
    return out


# ----------------------------------------------------------------------
# cache-on-disk helper
# ----------------------------------------------------------------------
def cached(path: str, generate) -> Trace:
    """Load the trace at ``path`` if present, else generate and save it.

    ``generate`` is a zero-argument callable returning a :class:`Trace`.
    Benchmarks use this so that each generated workload trace is produced
    once per configuration.
    """
    if os.path.exists(path):
        return load_npz(path)
    trace = generate()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    save_npz(trace, path)
    return trace
