"""Data-race detection over interleaved traces.

The delayed protocols (RD/SD/SRD) are only correct for programs that are
free of data races and conform to release consistency (paper section 5.0:
"applications must be free of data races and conform to the release
consistency model").  This module implements a vector-clock happens-before
checker (Djit+-style) so that every workload generator shipped with the
library can be *proven* race-free on its generated traces, and so users can
check their own traces before trusting RD/SD/SRD results.

Happens-before model
--------------------
* Program order: events of the same processor are ordered as they appear.
* Synchronization order: a ``RELEASE`` of sync variable *s* happens-before
  every later ``ACQUIRE`` of *s* (in trace order).  This covers both locks
  and the flag-style synchronization used by ANL barriers.

Two data accesses to the same word *conflict* if at least one is a store and
they come from different processors.  A trace is racy iff some conflicting
pair is unordered by the transitive closure of the above.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import DataRaceError
from .events import ACQUIRE, LOAD, RELEASE, STORE, format_event
from .trace import Trace


class VectorClock(dict):
    """Sparse vector clock: missing entries are zero."""

    def joined(self, other: "VectorClock") -> None:
        """In-place join (element-wise max)."""
        for p, t in other.items():
            if self.get(p, 0) < t:
                self[p] = t

    def dominates(self, other: Dict[int, int]) -> bool:
        """True if self[p] >= other[p] for all p."""
        for p, t in other.items():
            if self.get(p, 0) < t:
                return False
        return True

    def copy(self) -> "VectorClock":
        return VectorClock(self)


class RaceReport:
    """Outcome of a race check: either clean or a list of races found."""

    def __init__(self, races: List[Tuple[Tuple[int, tuple], Tuple[int, tuple]]]):
        #: List of ``((index1, event1), (index2, event2))`` conflicting pairs.
        self.races = races

    @property
    def is_race_free(self) -> bool:
        return not self.races

    def __bool__(self) -> bool:
        return self.is_race_free

    def describe(self, limit: int = 5) -> str:
        if self.is_race_free:
            return "race-free"
        lines = [f"{len(self.races)} data race(s) detected:"]
        for (i1, e1), (i2, e2) in self.races[:limit]:
            lines.append(f"  T{i1} {format_event(e1)}  <racy with>  "
                         f"T{i2} {format_event(e2)}")
        if len(self.races) > limit:
            lines.append(f"  ... {len(self.races) - limit} more")
        return "\n".join(lines)


def check_races(trace: Trace, *, max_races: int = 16) -> RaceReport:
    """Run the happens-before checker; return a :class:`RaceReport`.

    Stops collecting after ``max_races`` distinct racy pairs (the checker
    keeps running so per-word state stays consistent, it just stops
    recording).
    """
    nprocs = trace.num_procs
    clocks = [VectorClock({p: 1}) for p in range(nprocs)]
    sync_clocks: Dict[int, VectorClock] = {}
    # Per word: last writer (proc, clock, index) and last readers {proc: (clock, index)}.
    last_write: Dict[int, Tuple[int, int, int]] = {}
    last_reads: Dict[int, Dict[int, Tuple[int, int]]] = {}
    races: List[Tuple[Tuple[int, tuple], Tuple[int, tuple]]] = []
    events = trace.events

    def record(i1: int, i2: int) -> None:
        if len(races) < max_races:
            races.append(((i1, events[i1]), (i2, events[i2])))

    for index, (proc, op, addr) in enumerate(events):
        clock = clocks[proc]
        if op == ACQUIRE:
            released = sync_clocks.get(addr)
            if released is not None:
                clock.joined(released)
        elif op == RELEASE:
            sync_clocks[addr] = clock.copy()
            clock[proc] = clock.get(proc, 0) + 1
        elif op == LOAD:
            write = last_write.get(addr)
            if write is not None:
                wproc, wclock, windex = write
                if wproc != proc and clock.get(wproc, 0) < wclock:
                    record(windex, index)
            last_reads.setdefault(addr, {})[proc] = (clock.get(proc, 0), index)
        elif op == STORE:
            write = last_write.get(addr)
            if write is not None:
                wproc, wclock, windex = write
                if wproc != proc and clock.get(wproc, 0) < wclock:
                    record(windex, index)
            for rproc, (rclock, rindex) in last_reads.get(addr, {}).items():
                if rproc != proc and clock.get(rproc, 0) < rclock:
                    record(rindex, index)
            last_write[addr] = (proc, clock.get(proc, 0), index)
            last_reads[addr] = {}
    return RaceReport(races)


def assert_race_free(trace: Trace) -> None:
    """Raise :class:`~repro.errors.DataRaceError` if the trace is racy."""
    report = check_races(trace, max_races=4)
    if not report.is_race_free:
        (i1, e1), (i2, e2) = report.races[0]
        raise DataRaceError(
            f"trace {trace.name or '<anonymous>'} is not race-free: "
            + report.describe(limit=2),
            first=(i1, e1), second=(i2, e2))


def sync_pairs_balanced(trace: Trace) -> Optional[str]:
    """Heuristic check that *lock-style* acquires are eventually released.

    Release consistency permits two synchronization styles:

    * lock style — the same processor acquires and later releases the same
      variable (ANL locks);
    * flag style — one processor releases a variable that others only ever
      acquire (ANL barrier flags, LU column flags).

    A variable is treated as lock-style for a processor when that processor
    both acquires and releases it; for those, a surplus of acquires at end
    of trace indicates a leaked critical section (a generator bug) and is
    reported.  Flag-style imbalance is legal and ignored.  Returns None
    when consistent, else a description of the first problem.
    """
    acquires: Dict[tuple, int] = {}
    releases: Dict[tuple, int] = {}
    for proc, op, addr in trace.events:
        if op == ACQUIRE:
            acquires[(proc, addr)] = acquires.get((proc, addr), 0) + 1
        elif op == RELEASE:
            releases[(proc, addr)] = releases.get((proc, addr), 0) + 1
    for (proc, addr), acq_count in sorted(acquires.items()):
        rel_count = releases.get((proc, addr), 0)
        if rel_count and acq_count > rel_count:
            return (f"processor {proc} leaked lock {addr:#x}: "
                    f"{acq_count} acquires vs {rel_count} releases")
    return None
