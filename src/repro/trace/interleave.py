"""Interleaving utilities.

The paper (section 2.3, Figure 2) points out that the essential miss rate is
a property of an *interleaved trace*, not of an application: re-interleaving
the same per-processor streams can change the essential miss count.  These
utilities construct alternative legal interleavings of a trace so that
effect can be measured (``benchmarks/bench_figures_1_to_4.py`` and the
interleaving ablation use them).

All functions preserve per-processor program order — only the global order
changes — and are deterministic given their seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..errors import TraceError
from .events import Event
from .trace import Trace


def round_robin(streams: Dict[int, Sequence[Event]], *, quantum: int = 1,
                name: str = "") -> Trace:
    """Interleave per-processor streams round-robin, ``quantum`` events at a time."""
    if quantum <= 0:
        raise TraceError(f"quantum must be positive, got {quantum}")
    if not streams:
        raise TraceError("no streams to interleave")
    iters = {p: list(s) for p, s in streams.items()}
    cursors = {p: 0 for p in iters}
    order = sorted(iters)
    events: List[Event] = []
    live = True
    while live:
        live = False
        for p in order:
            stream = iters[p]
            cur = cursors[p]
            take = stream[cur:cur + quantum]
            if take:
                events.extend(take)
                cursors[p] = cur + len(take)
                live = True
    return Trace(events, num_procs=max(streams) + 1, name=name,
                 validate=False, copy=False)


def random_interleave(streams: Dict[int, Sequence[Event]], *, seed: int,
                      name: str = "") -> Trace:
    """Random legal interleaving (uniform next-processor choice, seeded)."""
    rng = random.Random(seed)
    pending = {p: list(s) for p, s in streams.items() if s}
    cursors = {p: 0 for p in pending}
    events: List[Event] = []
    while pending:
        p = rng.choice(sorted(pending))
        stream = pending[p]
        events.append(stream[cursors[p]])
        cursors[p] += 1
        if cursors[p] >= len(stream):
            del pending[p]
    return Trace(events, num_procs=max(streams) + 1 if streams else 1,
                 name=name, validate=False, copy=False)


def reinterleave(trace: Trace, *, seed: int) -> Trace:
    """Randomly re-interleave a trace's per-processor streams.

    .. warning::
       The result preserves program order but **not** synchronization order:
       an acquire may move before its matching release.  Use
       :func:`reinterleave_sync_safe` when the trace contains acquires and
       releases whose pairing must survive.
    """
    return random_interleave(trace.per_processor(), seed=seed,
                             name=f"{trace.name}#reinterleaved")


def reinterleave_sync_safe(trace: Trace, *, seed: int, window: int = 32) -> Trace:
    """Re-interleave within bounded windows, preserving synchronization order.

    Events may move at most ``window`` positions from their original global
    index, and the relative global order of all ACQUIRE/RELEASE events is
    kept fixed; data events never cross a synchronization event of their own
    processor (preserving release-consistency structure).  The result is a
    different but *equivalent* execution in the sense of section 2.3.
    """
    from .events import SYNC_OPS

    rng = random.Random(seed)
    events = trace.events
    out: List[Event] = []
    i = 0
    while i < len(events):
        # Collect a window that contains no synchronization events; sync
        # events act as interleaving barriers.
        j = i
        while j < len(events) and j - i < window and events[j][1] not in SYNC_OPS:
            j += 1
        chunk = list(events[i:j])
        if len(chunk) > 1:
            chunk = _shuffle_preserving_program_order(chunk, rng)
        out.extend(chunk)
        if j < len(events) and events[j][1] in SYNC_OPS:
            out.append(events[j])
            j += 1
        i = j
    return Trace(out, trace.num_procs, name=f"{trace.name}#sync-safe",
                 meta=trace.meta, validate=False, copy=False)


def _shuffle_preserving_program_order(chunk: List[Event],
                                      rng: random.Random) -> List[Event]:
    """Shuffle a chunk while keeping each processor's events in order."""
    streams: Dict[int, List[Event]] = {}
    for ev in chunk:
        streams.setdefault(ev[0], []).append(ev)
    # Draw processors with probability proportional to remaining events.
    tokens: List[int] = []
    for p, s in streams.items():
        tokens.extend([p] * len(s))
    rng.shuffle(tokens)
    cursors = {p: 0 for p in streams}
    out = []
    for p in tokens:
        out.append(streams[p][cursors[p]])
        cursors[p] += 1
    return out
