"""Benchmark-characteristic statistics (paper Table 2).

Table 2 reports, per benchmark: speedup (with a perfect single-cycle memory
system), writes, reads, acquire/release count, and data-set size.  The
speedup and data-set size come from the workload generator (stored in
``trace.meta`` by :mod:`repro.execution`), the rest are counted from the
trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .trace import Trace


@dataclass(frozen=True)
class BenchmarkStats:
    """One row of Table 2."""

    name: str
    num_procs: int
    reads: int
    writes: int
    acquires: int
    releases: int
    #: Simulated data-set size in bytes (allocator high-water mark), if known.
    data_set_bytes: Optional[int]
    #: Parallel-section speedup with single-cycle memory, if known.
    speedup: Optional[float]

    @property
    def data_refs(self) -> int:
        """Total data references (miss-rate denominator)."""
        return self.reads + self.writes

    @property
    def acq_rel(self) -> int:
        """Combined acquire+release count (the paper reports one column)."""
        return self.acquires + self.releases

    @property
    def data_set_kb(self) -> Optional[float]:
        return None if self.data_set_bytes is None else self.data_set_bytes / 1024.0

    def as_row(self) -> dict:
        """Column mapping used by the Table 2 report builder."""
        return {
            "BENCHMARK": self.name,
            "SPEEDUP": "-" if self.speedup is None else f"{self.speedup:.1f}",
            "WRITES (000's)": f"{self.writes / 1000:.1f}",
            "READS (000's)": f"{self.reads / 1000:.1f}",
            "ACQ/REL (000's)": f"{self.acq_rel / 1000:.1f}",
            "DATA SET (KB)": ("-" if self.data_set_kb is None
                              else f"{self.data_set_kb:.0f}"),
        }


def benchmark_stats(trace: Trace) -> BenchmarkStats:
    """Compute a :class:`BenchmarkStats` row from a trace.

    The workload generators store ``data_set_bytes`` and ``cycles`` (the
    number of simulated machine cycles of the parallel section under a
    perfect memory system) in ``trace.meta``; speedup is then
    ``data_refs_total / cycles`` — the same definition the paper uses
    ("the speedup derivation assumes a perfect memory system").
    """
    counts = trace.counts()
    cycles = trace.meta.get("cycles")
    speedup = None
    if cycles:
        # Every event costs one cycle on its processor; a perfect
        # sequential execution would take `total events` cycles.
        speedup = counts.total / cycles
    return BenchmarkStats(
        name=trace.name or "<anonymous>",
        num_procs=trace.num_procs,
        reads=counts.loads,
        writes=counts.stores,
        acquires=counts.acquires,
        releases=counts.releases,
        data_set_bytes=trace.meta.get("data_set_bytes"),
        speedup=speedup,
    )
