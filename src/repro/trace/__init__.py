"""Trace model, construction, serialization, validation and statistics."""

from .builder import TraceBuilder
from .cache import WorkloadTraceCache, default_cache_dir, workload_cache_key
from .columnar import TraceColumns
from .events import (
    ACQUIRE,
    DATA_OPS,
    Event,
    LOAD,
    OPS,
    RELEASE,
    STORE,
    SYNC_OPS,
    WORD_SIZE,
    count_ops,
    format_event,
    is_data_op,
    is_sync_op,
    make_event,
    op_from_name,
    op_name,
    validate_event,
)
from .interleave import (
    random_interleave,
    reinterleave,
    reinterleave_sync_safe,
    round_robin,
)
from .io import (
    cached,
    dumps_text,
    load_npz,
    load_text,
    loads_text,
    save_npz,
    save_text,
)
from .stats import BenchmarkStats, benchmark_stats
from .trace import Trace, TraceCounts, merge_program_order
from .validate import RaceReport, assert_race_free, check_races, sync_pairs_balanced

__all__ = [
    "ACQUIRE",
    "BenchmarkStats",
    "DATA_OPS",
    "Event",
    "LOAD",
    "OPS",
    "RELEASE",
    "RaceReport",
    "STORE",
    "SYNC_OPS",
    "Trace",
    "TraceBuilder",
    "TraceColumns",
    "TraceCounts",
    "WORD_SIZE",
    "WorkloadTraceCache",
    "assert_race_free",
    "benchmark_stats",
    "cached",
    "check_races",
    "count_ops",
    "default_cache_dir",
    "dumps_text",
    "format_event",
    "is_data_op",
    "is_sync_op",
    "load_npz",
    "load_text",
    "loads_text",
    "make_event",
    "merge_program_order",
    "op_from_name",
    "op_name",
    "random_interleave",
    "reinterleave",
    "reinterleave_sync_safe",
    "round_robin",
    "save_npz",
    "save_text",
    "sync_pairs_balanced",
    "validate_event",
    "workload_cache_key",
]
