"""Memory-reference event model.

A trace is an interleaved sequence of *events*, one per processor action.
For speed, events are plain tuples ``(proc, op, addr)``:

``proc``
    Processor id, ``0 <= proc < num_procs``.
``op``
    One of the integer opcodes below (:data:`LOAD`, :data:`STORE`,
    :data:`ACQUIRE`, :data:`RELEASE`).
``addr``
    Word address (4-byte words).  For ``ACQUIRE``/``RELEASE`` the address
    identifies the synchronization variable; synchronization variables live
    in the same address space as data (the ANL macros implement them with
    ordinary memory words).

Design notes
------------
The paper's classification operates on loads and stores only, but the
delayed protocols (RD/SD/SRD, section 4.0) schedule invalidations at
``acquire`` and ``release`` boundaries, so synchronization events are first
class citizens of the trace.

The word size is fixed at 4 bytes, the natural word of the 1993 machines the
paper simulates.  Wider accesses (e.g. the 8-byte grid elements of JACOBI)
are represented as one event per word, which is what produces the paper's
observation that JACOBI's true-sharing rate halves between block sizes 4 and
8 bytes.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import TraceError

#: Bytes per machine word.  All addresses in the library are word addresses.
WORD_SIZE = 4

# Opcodes.  Small ints so events pack tightly and compare fast.
LOAD = 0
STORE = 1
ACQUIRE = 2
RELEASE = 3

#: All valid opcodes.
OPS = (LOAD, STORE, ACQUIRE, RELEASE)

#: Opcodes that touch data and participate in miss classification.
DATA_OPS = (LOAD, STORE)

#: Opcodes that are synchronization points for release consistency.
SYNC_OPS = (ACQUIRE, RELEASE)

_OP_NAMES = {LOAD: "LOAD", STORE: "STORE", ACQUIRE: "ACQUIRE", RELEASE: "RELEASE"}
_NAME_OPS = {name: op for op, name in _OP_NAMES.items()}
# Accept common shorthands in text trace files.
_NAME_OPS.update({"LD": LOAD, "ST": STORE, "ACQ": ACQUIRE, "REL": RELEASE,
                  "R": LOAD, "W": STORE})

Event = Tuple[int, int, int]


def op_name(op: int) -> str:
    """Return the canonical name of an opcode (``"LOAD"``, ``"STORE"``, ...)."""
    try:
        return _OP_NAMES[op]
    except KeyError:
        raise TraceError(f"unknown opcode {op!r}") from None


def op_from_name(name: str) -> int:
    """Parse an opcode name (canonical or shorthand, case-insensitive)."""
    try:
        return _NAME_OPS[name.strip().upper()]
    except KeyError:
        raise TraceError(f"unknown opcode name {name!r}") from None


def is_data_op(op: int) -> bool:
    """True for LOAD/STORE."""
    return op == LOAD or op == STORE


def is_sync_op(op: int) -> bool:
    """True for ACQUIRE/RELEASE."""
    return op == ACQUIRE or op == RELEASE


def make_event(proc: int, op: int, addr: int) -> Event:
    """Build and validate a single event tuple."""
    ev = (proc, op, addr)
    validate_event(ev)
    return ev


def validate_event(event: Event, num_procs: int | None = None) -> None:
    """Raise :class:`~repro.errors.TraceError` unless ``event`` is well formed.

    ``num_procs`` additionally bounds the processor id when given.
    """
    try:
        proc, op, addr = event
    except (TypeError, ValueError):
        raise TraceError(f"event must be a (proc, op, addr) tuple, got {event!r}")
    if not isinstance(proc, int) or proc < 0:
        raise TraceError(f"bad processor id {proc!r} in event {event!r}")
    if num_procs is not None and proc >= num_procs:
        raise TraceError(
            f"processor id {proc} out of range for {num_procs} processors")
    if op not in OPS:
        raise TraceError(f"bad opcode {op!r} in event {event!r}")
    if not isinstance(addr, int) or addr < 0:
        raise TraceError(f"bad word address {addr!r} in event {event!r}")


def format_event(event: Event) -> str:
    """Render an event as ``"P3 STORE 0x40"``."""
    proc, op, addr = event
    return f"P{proc} {op_name(op)} {addr:#x}"


def count_ops(events: Iterable[Event]) -> dict:
    """Count events per opcode; returns ``{opcode: count}`` for all opcodes."""
    counts = {op: 0 for op in OPS}
    for _, op, _ in events:
        counts[op] += 1
    return counts
