"""Synthetic sharing-pattern generators.

Small parametric traces exercising canonical sharing patterns.  They are not
paper benchmarks; they exist to (a) unit-test classifiers and protocols
against analytically known answers and (b) serve as fast workloads in the
examples.

Every generator is deterministic given its ``seed``.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ConfigError
from .events import Event, LOAD, STORE
from .trace import Trace


def _check(num_procs: int, **positives) -> None:
    if num_procs <= 0:
        raise ConfigError(f"num_procs must be positive, got {num_procs}")
    for name, value in positives.items():
        if value <= 0:
            raise ConfigError(f"{name} must be positive, got {value}")


def private_blocks(num_procs: int, words_per_proc: int, iterations: int,
                   *, seed: int = 0) -> Trace:
    """Each processor loops over its own private words: no sharing at all.

    Expected classification: every first touch is a PC miss, everything else
    hits.  Essential misses == cold misses == ``num_procs * words_per_proc``
    at block size 4 (fewer at larger blocks).
    """
    _check(num_procs, words_per_proc=words_per_proc, iterations=iterations)
    events: List[Event] = []
    for _ in range(iterations):
        for p in range(num_procs):
            base = p * words_per_proc
            for w in range(words_per_proc):
                events.append((p, STORE, base + w))
                events.append((p, LOAD, base + w))
    return Trace(events, num_procs, name="synth-private", validate=False, copy=False)


def producer_consumer(num_procs: int, words: int, rounds: int,
                      *, seed: int = 0) -> Trace:
    """Processor 0 writes a buffer; all others read every word of it.

    Pure true sharing: each consumer takes one essential miss per round per
    block (cold on the first round).  No false sharing at any block size
    because consumers read *every* word.
    """
    _check(num_procs, words=words, rounds=rounds)
    if num_procs < 2:
        raise ConfigError("producer_consumer needs at least 2 processors")
    events: List[Event] = []
    for _ in range(rounds):
        for w in range(words):
            events.append((0, STORE, w))
        for p in range(1, num_procs):
            for w in range(words):
                events.append((p, LOAD, w))
    return Trace(events, num_procs, name="synth-producer-consumer",
                 validate=False, copy=False)


def false_sharing_pingpong(num_procs: int, rounds: int, *, stride_words: int = 1,
                           seed: int = 0) -> Trace:
    """Each processor repeatedly stores to *its own* word; words are adjacent.

    The canonical false-sharing stressor: with blocks larger than
    ``stride_words`` words, every store invalidates the neighbours' copies
    although no data is ever communicated.  Expected: all coherence misses
    are PFS (useless); the essential miss count is exactly the cold misses.
    """
    _check(num_procs, rounds=rounds, stride_words=stride_words)
    events: List[Event] = []
    for _ in range(rounds):
        for p in range(num_procs):
            addr = p * stride_words
            events.append((p, LOAD, addr))
            events.append((p, STORE, addr))
    return Trace(events, num_procs, name="synth-false-sharing", validate=False, copy=False)


def migratory(num_procs: int, words: int, rounds: int, *, seed: int = 0) -> Trace:
    """A single record migrates processor to processor (read-modify-write).

    Classic migratory sharing: every hand-off is one essential (PTS) miss
    per block of the record; no false sharing.
    """
    _check(num_procs, words=words, rounds=rounds)
    events: List[Event] = []
    for r in range(rounds):
        p = r % num_procs
        for w in range(words):
            events.append((p, LOAD, w))
        for w in range(words):
            events.append((p, STORE, w))
    return Trace(events, num_procs, name="synth-migratory", validate=False, copy=False)


def uniform_random(num_procs: int, words: int, num_events: int, *,
                   store_fraction: float = 0.3, seed: int = 0) -> Trace:
    """Uniformly random accesses over a shared array (fuzzing workload)."""
    _check(num_procs, words=words, num_events=num_events)
    if not 0.0 <= store_fraction <= 1.0:
        raise ConfigError(f"store_fraction must be in [0,1], got {store_fraction}")
    rng = random.Random(seed)
    events: List[Event] = []
    for _ in range(num_events):
        p = rng.randrange(num_procs)
        op = STORE if rng.random() < store_fraction else LOAD
        events.append((p, op, rng.randrange(words)))
    return Trace(events, num_procs, name="synth-uniform", validate=False, copy=False)


def read_mostly(num_procs: int, words: int, rounds: int, *,
                writer: int = 0, writes_per_round: int = 1, seed: int = 0) -> Trace:
    """Widely read-shared data with occasional updates by one writer.

    Expected: bursts of PTS misses (one per reader per update) over a
    baseline of hits; no false sharing at block sizes <= the update stride.
    """
    _check(num_procs, words=words, rounds=rounds,
           writes_per_round=writes_per_round)
    rng = random.Random(seed)
    events: List[Event] = []
    for _ in range(rounds):
        for p in range(num_procs):
            if p == writer:
                continue
            for w in range(words):
                events.append((p, LOAD, w))
        for _ in range(writes_per_round):
            events.append((writer, STORE, rng.randrange(words)))
    return Trace(events, num_procs, name="synth-read-mostly", validate=False, copy=False)
