"""The :class:`Trace` container.

A trace is an interleaved, *totally ordered* sequence of events from a fixed
number of processors (the paper uses trace-driven simulation precisely so
that the interleaving is fixed across protocol experiments — section 5.0).

Internally a trace holds one (or both) of two equivalent representations:

* the classic **tuple list** — ``[(proc, op, addr), ...]`` — which every
  streaming consumer (classifiers, protocols, validators) iterates;
* the **columnar core** — :class:`~repro.trace.columnar.TraceColumns`,
  three parallel int64 NumPy arrays — which vectorized consumers (the sweep
  engine, I/O, statistics) operate on directly.

Whichever representation a trace is built from, the other is derived
lazily on first use and cached, so existing tuple-based code keeps working
unchanged while array-based code avoids ever materializing tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..errors import TraceError
from .columnar import TraceColumns
from .events import (
    ACQUIRE,
    DATA_OPS,
    Event,
    LOAD,
    RELEASE,
    STORE,
    format_event,
    validate_event,
)


class Trace:
    """An immutable-by-convention interleaved reference trace.

    Parameters
    ----------
    events:
        Sequence of ``(proc, op, addr)`` tuples in global (interleaved)
        order, or a :class:`~repro.trace.columnar.TraceColumns` holding the
        same data as parallel arrays (stored by reference, zero-copy).
    num_procs:
        Number of processors.  If omitted it is inferred as ``max(proc)+1``.
    name:
        Optional human-readable name (e.g. ``"MP3D1000"``).
    meta:
        Free-form metadata dictionary (workload configuration, seed, the
        simulated data-set size, ...).  Stored by reference.
    validate:
        When true (default), every event is checked for well-formedness.
    copy:
        When true (default), a tuple-sequence input is defensively copied
        with ``list(events)``.  Trusted internal callers that hand over a
        freshly built list they will never mutate again (the builder, the
        I/O readers, the interleavers, the machine scheduler) pass
        ``copy=False`` to skip that O(n) copy.  Ignored for columnar input,
        which is always stored by reference.
    """

    __slots__ = ("_events", "_columns", "num_procs", "name", "meta")

    def __init__(self,
                 events: Union[Sequence[Event], TraceColumns],
                 num_procs: Optional[int] = None,
                 *, name: str = "", meta: Optional[dict] = None,
                 validate: bool = True, copy: bool = True):
        columns: Optional[TraceColumns] = None
        if isinstance(events, TraceColumns):
            columns = events
            events = None
        else:
            if copy or not isinstance(events, list):
                events = list(events)
        if num_procs is None:
            if columns is not None:
                num_procs = columns.infer_num_procs()
            else:
                num_procs = 1 + max((ev[0] for ev in events), default=-1)
                if num_procs == 0:
                    num_procs = 1
        if num_procs <= 0:
            raise TraceError(f"num_procs must be positive, got {num_procs}")
        if validate:
            if columns is not None:
                columns.validate(num_procs)
            else:
                for ev in events:
                    validate_event(ev, num_procs)
        self._events: Optional[List[Event]] = events
        self._columns: Optional[TraceColumns] = columns
        self.num_procs: int = num_procs
        self.name: str = name
        self.meta: dict = dict(meta or {})

    # ------------------------------------------------------------------
    # representations
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Event]:
        """The tuple-list representation (materialized lazily and cached)."""
        if self._events is None:
            self._events = self._columns.to_events()
        return self._events

    def columns(self) -> TraceColumns:
        """The columnar representation (built lazily and cached)."""
        if self._columns is None:
            self._columns = TraceColumns.from_events(self._events)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """True if the columnar representation is already built."""
        return self._columns is not None

    @classmethod
    def from_columns(cls, columns: TraceColumns,
                     num_procs: Optional[int] = None,
                     *, name: str = "", meta: Optional[dict] = None,
                     validate: bool = True) -> "Trace":
        """Build a trace directly over parallel arrays (zero-copy)."""
        return cls(columns, num_procs, name=name, meta=meta,
                   validate=validate)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._events is not None:
            return len(self._events)
        return len(self._columns)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self._events is None:
                # Columnar-only trace: slice as NumPy views, zero-copy.
                return Trace(self._columns[index], self.num_procs,
                             name=self.name, meta=self.meta, validate=False)
            return Trace(self._events[index], self.num_procs,
                         name=self.name, meta=self.meta, validate=False)
        if self._events is None:
            return self._columns[index]
        return self._events[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if self.num_procs != other.num_procs:
            return False
        if self._columns is not None and other._columns is not None:
            return self._columns == other._columns
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"<Trace{label}: {len(self)} events, "
                f"{self.num_procs} procs>")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def data_events(self) -> Iterator[Event]:
        """Only LOAD/STORE events, in order."""
        return (ev for ev in self.events if ev[1] in DATA_OPS)

    def per_processor(self) -> Dict[int, List[Event]]:
        """Split into per-processor streams (program order preserved)."""
        streams: Dict[int, List[Event]] = {p: [] for p in range(self.num_procs)}
        for ev in self.events:
            streams[ev[0]].append(ev)
        return streams

    def touched_words(self) -> set:
        """Set of word addresses touched by data accesses."""
        if self._columns is not None:
            return set(self._columns.touched_words().tolist())
        return {addr for _, op, addr in self._events if op in DATA_OPS}

    def touched_blocks(self, block_map) -> set:
        """Set of block addresses touched by data accesses."""
        if self._columns is not None:
            cols = self._columns
            blocks = cols.block_ids(block_map.offset_bits)[cols.data_mask()]
            return set(np.unique(blocks).tolist())
        return {block_map.block_of(addr)
                for _, op, addr in self._events if op in DATA_OPS}

    def counts(self) -> "TraceCounts":
        """Event counts by opcode (see :class:`TraceCounts`)."""
        if self._columns is not None:
            per_op = self._columns.op_counts()
            return TraceCounts(int(per_op[LOAD]), int(per_op[STORE]),
                               int(per_op[ACQUIRE]), int(per_op[RELEASE]))
        loads = stores = acquires = releases = 0
        for _, op, _ in self._events:
            if op == LOAD:
                loads += 1
            elif op == STORE:
                stores += 1
            elif op == ACQUIRE:
                acquires += 1
            elif op == RELEASE:
                releases += 1
        return TraceCounts(loads, stores, acquires, releases)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces over the same processor count."""
        if other.num_procs != self.num_procs:
            raise TraceError(
                f"cannot concat traces with {self.num_procs} and "
                f"{other.num_procs} processors")
        if self._events is None and other._events is None:
            return Trace(self._columns.concat(other._columns), self.num_procs,
                         name=self.name, meta=self.meta, validate=False)
        return Trace(self.events + other.events, self.num_procs,
                     name=self.name, meta=self.meta, validate=False,
                     copy=False)

    def head(self, n: int) -> "Trace":
        """First ``n`` events as a new trace."""
        return self[:n]

    def sample(self, fraction: float, *, granularity: int = 10_000) -> "Trace":
        """Deterministic prefix-of-window sampling for quick experiments.

        Keeps the first ``fraction`` of every ``granularity``-event window.
        This preserves local interleaving structure (unlike random event
        sampling, which would tear synchronization pairs apart).  Sampling is
        an approximation: cold-miss counts are biased high relative to a full
        run, which is documented in EXPERIMENTS.md wherever it is used.
        """
        if not 0.0 < fraction <= 1.0:
            raise TraceError(f"sample fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        keep = max(1, int(granularity * fraction))
        events = self.events
        kept: List[Event] = []
        for start in range(0, len(events), granularity):
            kept.extend(events[start:start + keep])
        return Trace(kept, self.num_procs, name=f"{self.name}~{fraction}",
                     meta=self.meta, validate=False, copy=False)

    def format(self, limit: int = 20) -> str:
        """Multi-line human-readable rendering of the first ``limit`` events."""
        events = self.events
        lines = [f"Trace {self.name or '<anonymous>'} "
                 f"({len(events)} events, {self.num_procs} procs)"]
        for i, ev in enumerate(events[:limit]):
            lines.append(f"  T{i}: {format_event(ev)}")
        if len(events) > limit:
            lines.append(f"  ... {len(events) - limit} more")
        return "\n".join(lines)


class TraceCounts:
    """Opcode counts of a trace (reads/writes/acquires/releases)."""

    __slots__ = ("loads", "stores", "acquires", "releases")

    def __init__(self, loads: int, stores: int, acquires: int, releases: int):
        self.loads = loads
        self.stores = stores
        self.acquires = acquires
        self.releases = releases

    @property
    def data(self) -> int:
        """Total data references (the denominator of every miss rate)."""
        return self.loads + self.stores

    @property
    def total(self) -> int:
        return self.data + self.acquires + self.releases

    def as_dict(self) -> dict:
        return {"loads": self.loads, "stores": self.stores,
                "acquires": self.acquires, "releases": self.releases}

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceCounts):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceCounts(loads={self.loads}, stores={self.stores}, "
                f"acquires={self.acquires}, releases={self.releases})")


def merge_program_order(streams: Dict[int, Iterable[Event]],
                        order: Iterable[int]) -> Trace:
    """Rebuild an interleaved trace from per-processor streams.

    ``order`` gives, for each global position, the processor whose next
    event is taken.  This is the inverse of :meth:`Trace.per_processor` and
    is used by the interleaving utilities and tests.
    """
    iters = {p: iter(s) for p, s in streams.items()}
    events: List[Event] = []
    for p in order:
        try:
            events.append(next(iters[p]))
        except StopIteration:
            raise TraceError(f"order names processor {p} past end of its stream")
        except KeyError:
            raise TraceError(f"order names unknown processor {p}")
    for p, it in iters.items():
        leftover = next(it, None)
        if leftover is not None:
            raise TraceError(f"order leaves events of processor {p} unconsumed")
    return Trace(events, num_procs=max(streams) + 1 if streams else 1,
                 validate=False, copy=False)
