"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands
--------
classify    Classify a trace (file or named workload) at one block size.
compare     Run all three classifiers over one (trace, block size) cell.
sweep       Figure 5: classification vs block size for one workload.
simulate    Run one or all protocols over a workload at one block size.
table1      Reproduce Table 1 (three-way classifier comparison).
table2      Reproduce Table 2 (benchmark characteristics).
fig5        Reproduce Figure 5 for the whole small suite.
fig6        Reproduce Figure 6 (a and b) for the whole small suite.
validate    Run the data-race checker over a trace file or workload.
generate    Generate a workload trace and save it (.npz or .trc).
report      Render a recorded run's telemetry (see ``--telemetry``).
trace       Render a run's span tree and critical-path attribution.
diff        Compare two runs cell-by-cell and flag regressions.
history     Append runs to a perf history file and flag trend regressions.

Global flags: ``-v``/``-q`` adjust console log verbosity (repeatable);
``--telemetry DIR`` on the sweep-style commands records the whole command
as one run — spans, metrics and a queryable ``manifest.json`` — and shows
a live progress line on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .obs import configure_logging

from .analysis.figures import figure5, figure6
from .analysis.sweep import sweep_block_sizes
from .analysis.tables import (
    build_table1,
    build_table2,
    format_table1,
    format_table2,
)
from .errors import (
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_RESOURCE_EXHAUSTED,
    ReproError,
    ResourceExhaustedError,
    SweepInterrupted,
)
from .runtime.signals import graceful_shutdown
from .protocols.runner import protocol_names, run_protocol, run_protocols
from .trace import io as trace_io
from .trace.cache import WorkloadTraceCache, default_cache_dir
from .trace.trace import Trace
from .trace.validate import check_races
from .workloads.registry import NAMED_CONFIGS, make_workload, suite


def _trace_cache(args) -> "WorkloadTraceCache | None":
    """The workload trace cache selected by ``--trace-cache``, if any."""
    directory = getattr(args, "trace_cache", None)
    if directory is None:
        return None
    return WorkloadTraceCache(directory or None,
                              max_bytes=getattr(args, "cache_max_bytes", None))


def _engine_options(args):
    """Build :class:`ExecutionOptions` from the resilience flags.

    Returns ``None`` when every flag is at its default, so commands run
    exactly as before unless resilience features are requested.
    """
    from .analysis.engine import ExecutionOptions
    from .runtime.retry import RetryPolicy

    retries = getattr(args, "retries", None)
    timeout = getattr(args, "timeout", None)
    resume = getattr(args, "resume", None)
    strict = getattr(args, "strict_invariants", False)
    shards = getattr(args, "shards", None)
    memory_budget = getattr(args, "memory_budget", None)
    telemetry = getattr(args, "telemetry", None)
    kernel = getattr(args, "kernel", "auto")
    hosts = getattr(args, "hosts", None)
    if (retries is None and timeout is None and resume is None
            and not strict and shards is None and memory_budget is None
            and telemetry is None and kernel == "auto" and hosts is None):
        return None
    retry = RetryPolicy.from_retries(retries) if retries is not None else None
    return ExecutionOptions(retry=retry, timeout=timeout,
                            checkpoint_dir=resume, strict_invariants=strict,
                            shards=shards, memory_budget=memory_budget,
                            telemetry_dir=telemetry, kernel=kernel,
                            hosts=hosts)


def _load_trace(spec: str, cache: "WorkloadTraceCache | None" = None) -> Trace:
    """Resolve a trace argument: a named workload or a trace file path."""
    if spec in NAMED_CONFIGS:
        if cache is not None:
            return cache.get(spec)
        return make_workload(spec).generate()
    if spec.endswith(".npz"):
        return trace_io.load_npz(spec)
    if spec.endswith(".trc") or spec.endswith(".txt"):
        return trace_io.load_text(spec)
    raise ReproError(
        f"{spec!r} is neither a named workload ({sorted(NAMED_CONFIGS)}) "
        f"nor a .npz/.trc trace file")


def _suite_traces(which: str, cache: "WorkloadTraceCache | None"):
    """Generate (or load cached) traces for a whole suite."""
    workloads = suite(which)
    if cache is not None:
        return [cache.get(wl) for wl in workloads]
    return [wl.generate() for wl in workloads]


def _cmd_classify(args) -> int:
    from .analysis.engine import ExecutionOptions, SweepEngine

    trace = _load_trace(args.trace, _trace_cache(args))
    options = _engine_options(args) or ExecutionOptions()
    engine = SweepEngine(trace, jobs=args.jobs, **options.engine_kwargs())
    (breakdown,) = engine.run_grid([("classify", args.block,
                                     args.classifier)])
    print(f"{trace.name} @ B={args.block}: {breakdown.describe()}")
    return 0


def _cmd_compare(args) -> int:
    from .analysis.engine import ExecutionOptions, SweepEngine

    trace = _load_trace(args.trace, _trace_cache(args))
    options = _engine_options(args) or ExecutionOptions()
    engine = SweepEngine(trace, jobs=args.jobs, **options.engine_kwargs())
    (cmp,) = engine.run_grid([("compare", args.block, None)])
    print(f"{trace.name} @ B={args.block}")
    print(f"  dubois    : {cmp.ours.describe()}")
    print(f"  eggers    : {cmp.eggers.describe()}")
    print(f"  torrellas : {cmp.torrellas.describe()}")
    return 0


def _cmd_sweep(args) -> int:
    trace = _load_trace(args.trace, _trace_cache(args))
    print(sweep_block_sizes(trace, jobs=args.jobs,
                            options=_engine_options(args)).format())
    return 0


def _cmd_simulate(args) -> int:
    if args.ways is not None and args.capacity_blocks is None:
        raise ReproError("--ways requires --capacity-blocks")
    trace = _load_trace(args.trace, _trace_cache(args))
    if args.capacity_blocks is not None:
        if args.protocol not in (None, "OTF"):
            raise ReproError(
                "finite caches simulate the OTF protocol; drop "
                "--protocol or pass --protocol OTF")
        from .analysis.engine import ExecutionOptions, SweepEngine
        from .protocols.finite import finite_spec

        options = _engine_options(args) or ExecutionOptions()
        engine = SweepEngine(trace, jobs=args.jobs,
                             **options.engine_kwargs())
        cell = ("finite", args.block,
                finite_spec(args.capacity_blocks, args.ways))
        (result,) = engine.run_grid([cell])
        print(result.describe())
        return 0
    names = [args.protocol] if args.protocol else None
    results = run_protocols(trace, args.block, names, jobs=args.jobs,
                            options=_engine_options(args))
    for name, result in results.items():
        print(result.describe())
    return 0


def _cmd_table1(args) -> int:
    traces = [make_workload(n).generate() for n in (args.benchmarks or
                                                    ["LU64", "MP3D1000"])]
    comparisons = build_table1(traces, block_sizes=(32, 1024))
    print(format_table1(comparisons))
    return 0


def _cmd_table2(args) -> int:
    traces = [wl.generate() for wl in suite(args.suite)]
    print(format_table2(build_table2(traces)))
    return 0


def _cmd_fig5(args) -> int:
    traces = _suite_traces(args.suite, _trace_cache(args))
    for name, panel in figure5(traces, jobs=args.jobs,
                               options=_engine_options(args)).items():
        print(panel.format())
        print()
    return 0


def _cmd_fig6(args) -> int:
    traces = _suite_traces(args.suite, _trace_cache(args))
    for block in args.blocks:
        for name, panel in figure6(traces, block, jobs=args.jobs,
                                   options=_engine_options(args)).items():
            print(panel.format_table())
            print()
    return 0


def _cmd_attribute(args) -> int:
    from .analysis.attribution import attribute_misses

    trace = _load_trace(args.trace)
    result = attribute_misses(trace, args.block)
    print(result.format())
    top = result.top_false_sharers()
    if top:
        print()
        print("Top false-sharing regions:")
        for name, count in top:
            print(f"  {name}: {count} useless misses")
    return 0


def _cmd_traffic(args) -> int:
    from .protocols.traffic import estimate_traffic

    trace = _load_trace(args.trace)
    names = [args.protocol] if args.protocol else None
    print(f"{'proto':6s} {'miss%':>7s} {'fetch B':>10s} {'word B':>9s} "
          f"{'ctrl B':>9s} {'bytes/ref':>10s}")
    for name, result in run_protocols(trace, args.block, names).items():
        t = estimate_traffic(result)
        print(f"{name:6s} {result.miss_rate:7.2f} {t.fetch_bytes:>10d} "
              f"{t.word_write_bytes:>9d} {t.control_bytes:>9d} "
              f"{t.per_reference(result.breakdown.data_refs):>10.1f}")
    return 0


def _cmd_prefetch(args) -> int:
    from .analysis.prefetch import prefetch_analysis

    trace = _load_trace(args.trace)
    print(prefetch_analysis(trace).format())
    return 0


def _cmd_validate(args) -> int:
    trace = _load_trace(args.trace)
    report = check_races(trace)
    print(f"{trace.name}: {report.describe()}")
    return 0 if report.is_race_free else 1


def _cmd_generate(args) -> int:
    trace = make_workload(args.workload).generate()
    if args.out.endswith(".npz"):
        trace_io.save_npz(trace, args.out)
    else:
        trace_io.save_text(trace, args.out)
    print(f"wrote {len(trace)} events to {args.out}")
    return 0


def _cmd_report(args) -> int:
    from .obs import render_report

    render_report(args.dir, top=args.top, stream=sys.stdout,
                  as_json=args.json)
    return 0


def _cmd_trace(args) -> int:
    from .obs import render_trace, trace_summary

    if args.json:
        import json as _json

        print(_json.dumps(trace_summary(args.run, top=args.top),
                          indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_trace(args.run, top=args.top))
    return 0


def _cmd_diff(args) -> int:
    from .obs import diff_runs, render_diff

    diff = diff_runs(args.run_a, args.run_b, threshold=args.threshold,
                     min_seconds=args.min_seconds)
    if args.json:
        import json as _json

        print(_json.dumps(diff, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_diff(diff))
    if args.fail_on_regress and diff["regressions"]:
        return 1
    return 0


def _cmd_history(args) -> int:
    from .obs import history_summary, record_run, render_history

    if args.action == "record":
        if not args.runs:
            raise ReproError("history record needs at least one run "
                             "directory")
        for run in args.runs:
            entry = record_run(run, args.file, label=args.label)
            print(f"recorded {entry['run_id']} "
                  f"({len(entry['cells'])} cell(s)) -> {args.file}")
        return 0
    summary = history_summary(args.file, window=args.window,
                              threshold=args.threshold)
    if args.json:
        import json as _json

        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_history(summary))
    if args.fail_on_regress and summary["regressions"]:
        return 1
    return 0


def _size(text: str) -> int:
    """argparse type for human byte sizes (``512M``, ``1.5G``, ``4096``)."""
    from .runtime.resources import parse_size

    try:
        return parse_size(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--trace-cache`` / resilience flags shared by the
    sweep-style commands."""
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the experiment grid "
                        "(1 = serial, 0 = one per available CPU)")
    p.add_argument("--trace-cache", nargs="?", const="", default=None,
                   metavar="DIR",
                   help="cache generated workload traces as .npz under DIR "
                        f"(no DIR: {default_cache_dir()})")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock timeout; a hung cell's worker "
                        "is killed and the cell retried (default: none)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="retries per failed/hung grid cell before the "
                        "serial in-process fallback (default: 2)")
    p.add_argument("--resume", nargs="?", const="", default=None,
                   metavar="DIR",
                   help="journal completed grid cells under DIR and resume "
                        "a killed sweep, re-running only incomplete cells "
                        "(no DIR: the default checkpoint directory)")
    p.add_argument("--strict-invariants", action="store_true",
                   help="fail on a post-cell invariant violation instead "
                        "of warning")
    p.add_argument("--shards", type=int, default=None, metavar="P",
                   help="intra-cell shards per shardable cell, along each "
                        "cell's partition dimension (by block for "
                        "protocol/classifier/compare cells, by cache set "
                        "for finite caches; 1 = never shard; 0 = "
                        "automatic: split spare workers when the grid has "
                        "fewer cells than jobs, which is also the default)")
    p.add_argument("--memory-budget", type=_size, default=None,
                   metavar="SIZE",
                   help="total memory budget for the sweep (e.g. 512M, "
                        "1.5G): admission clamps worker concurrency to "
                        "fit, workers soft-cap their address space, and "
                        "OOM-class failures degrade the run (fewer "
                        "workers, more shards, then serial) instead of "
                        "crash-looping (default: $REPRO_MEMORY_BUDGET, "
                        "else ungoverned)")
    p.add_argument("--cache-max-bytes", type=_size, default=None,
                   metavar="SIZE",
                   help="disk quota for the --trace-cache directory; "
                        "least-recently-used entries are evicted after "
                        "each write to stay under it (default: unbounded)")
    p.add_argument("--telemetry", default=None, metavar="DIR",
                   help="record run telemetry under DIR: a per-run "
                        "subdirectory with an events.jsonl span/metric "
                        "stream and a queryable manifest.json, plus a "
                        "live progress line on stderr; render it later "
                        "with 'repro report DIR'")
    p.add_argument("--kernel", choices=("auto", "vectorized", "interpreted"),
                   default="auto",
                   help="execution path for grid cells: vectorized NumPy "
                        "kernels where available (classifiers and the "
                        "infinite-cache OTF protocol; bit-identical to "
                        "the streaming oracles), the interpreted "
                        "per-event oracles everywhere, or auto "
                        "(vectorized when NumPy is importable; the "
                        "default).  Checkpoint journals record the "
                        "choice, so --resume never mixes paths")
    p.add_argument("--hosts", default=None, metavar="H1:P,H2:P",
                   help="remote worker runners joining the sweep (each a "
                        "'python -m repro.runtime.remote_worker' process); "
                        "cells are dispatched to them next to the local "
                        "workers, a versioned handshake refuses "
                        "incompatible hosts, and a lost host's cells are "
                        "reassigned to the survivors (pair with --timeout "
                        "so a partitioned host is detected)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dubois et al. (ISCA 1993) useless-miss reproduction")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more console logging (-v: info, -vv: debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less console logging (errors only; also "
                             "hides the --telemetry progress line)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="classify a trace at one block size")
    p.add_argument("trace", help="named workload or trace file")
    p.add_argument("--block", type=int, default=64, help="block size in bytes")
    p.add_argument("--classifier", default="dubois",
                   choices=("dubois", "eggers", "torrellas"),
                   help="classification scheme (default: dubois)")
    _add_engine_args(p)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("compare", help="run all three classifiers over one "
                                       "(trace, block size) cell")
    p.add_argument("trace", help="named workload or trace file")
    p.add_argument("--block", type=int, default=64, help="block size in bytes")
    _add_engine_args(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("sweep", help="Figure 5 sweep for one trace")
    p.add_argument("trace")
    _add_engine_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("simulate", help="run protocol simulations")
    p.add_argument("trace")
    p.add_argument("--block", type=int, default=64)
    p.add_argument("--protocol", choices=protocol_names(),
                   help="one protocol (default: all)")
    p.add_argument("--capacity-blocks", type=int, default=None, metavar="N",
                   help="simulate OTF with finite per-processor caches of "
                        "N blocks (paper section 8.0 replacement misses); "
                        "multi-set geometries shard by cache set under "
                        "--jobs/--shards")
    p.add_argument("--ways", type=int, default=None, metavar="W",
                   help="cache associativity: W-way sets, N/W sets total "
                        "(requires --capacity-blocks; default: fully "
                        "associative)")
    _add_engine_args(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("table1", help="reproduce Table 1")
    p.add_argument("--benchmarks", nargs="*", metavar="NAME")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table 2")
    p.add_argument("--suite", default="small",
                   choices=("small", "large", "paper-large"))
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("fig5", help="reproduce Figure 5")
    p.add_argument("--suite", default="small",
                   choices=("small", "large", "paper-large"))
    _add_engine_args(p)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="reproduce Figure 6")
    p.add_argument("--suite", default="small",
                   choices=("small", "large", "paper-large"))
    p.add_argument("--blocks", nargs="*", type=int, default=[64, 1024])
    _add_engine_args(p)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("attribute",
                       help="attribute misses to data structures")
    p.add_argument("trace")
    p.add_argument("--block", type=int, default=64)
    p.set_defaults(func=_cmd_attribute)

    p = sub.add_parser("traffic", help="estimate interconnect traffic")
    p.add_argument("trace")
    p.add_argument("--block", type=int, default=64)
    p.add_argument("--protocol", choices=protocol_names())
    p.set_defaults(func=_cmd_traffic)

    p = sub.add_parser("prefetch",
                       help="prefetching miss-rate floors (PC/CFS removal)")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_prefetch)

    p = sub.add_parser("validate", help="check a trace for data races")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("generate", help="generate and save a workload trace")
    p.add_argument("workload", choices=sorted(NAMED_CONFIGS))
    p.add_argument("out", help="output path (.npz or .trc)")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("report",
                       help="render a recorded run's telemetry (manifest "
                            "per-cell table + slowest spans)")
    p.add_argument("dir", help="a --telemetry directory or one run "
                               "directory inside it")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="how many slowest spans to list (default: 10)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as one machine-readable JSON "
                        "object instead of tables")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("trace",
                       help="render a run's causal span tree and its "
                            "critical path (who the sweep actually "
                            "waited on, including idle gaps)")
    p.add_argument("run", help="a run directory (or a --telemetry "
                               "directory holding exactly one run)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="how many critical-path contributors to rank "
                        "(default: 10)")
    p.add_argument("--json", action="store_true",
                   help="emit the tree and critical path as JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("diff",
                       help="compare two runs cell-by-cell (duration, "
                            "events/s, attempts, kernel, host) and flag "
                            "deltas past a threshold")
    p.add_argument("run_a", help="baseline: a run directory or a "
                                 "'repro report --json' output file")
    p.add_argument("run_b", help="candidate run, same forms as run_a")
    p.add_argument("--threshold", type=float, default=0.2, metavar="FRAC",
                   help="relative duration change that flags a cell "
                        "(default: 0.2 = 20%%)")
    p.add_argument("--min-seconds", type=float, default=0.005,
                   metavar="SECONDS",
                   help="never flag cells faster than this in both runs "
                        "— their deltas are noise (default: 0.005)")
    p.add_argument("--json", action="store_true",
                   help="emit the comparison as JSON")
    p.add_argument("--fail-on-regress", action="store_true",
                   help="exit 1 when any cell regressed past the "
                        "threshold")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("history",
                       help="append runs to an append-only perf history "
                            "file and flag cells regressing against "
                            "their trailing median")
    p.add_argument("action", choices=("record", "show"),
                   help="'record' appends run summaries; 'show' renders "
                        "the per-cell trend and verdicts")
    p.add_argument("runs", nargs="*",
                   help="run directories to record (record only)")
    p.add_argument("--file", default="PERF_HISTORY.jsonl", metavar="PATH",
                   help="history file (default: ./PERF_HISTORY.jsonl)")
    p.add_argument("--label", default=None,
                   help="free-form label stored with recorded entries "
                        "(e.g. a commit hash or kernel mode)")
    p.add_argument("--window", type=int, default=8, metavar="N",
                   help="trailing runs per cell forming the comparison "
                        "median (default: 8)")
    p.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                   help="relative slowdown vs the median that flags a "
                        "regression (default: 0.25 = 25%%)")
    p.add_argument("--json", action="store_true",
                   help="emit the trend summary as JSON (show only)")
    p.add_argument("--fail-on-regress", action="store_true",
                   help="exit 1 when any cell regressed (show only)")
    p.set_defaults(func=_cmd_history)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    verbosity = args.verbose - args.quiet
    configure_logging(verbosity)
    telemetry_dir = getattr(args, "telemetry", None)
    try:
        # Install the two-phase SIGINT/SIGTERM handler for the whole
        # command: the first signal drains in-flight cells and exits
        # resumable (EXIT_INTERRUPTED); a second forces teardown.
        with graceful_shutdown():
            if telemetry_dir is not None:
                # One run for the whole command: trace loading (cache
                # spans) and every engine the command builds share the
                # stream.
                from .obs import RunTelemetry

                run_argv = list(argv) if argv is not None else sys.argv[1:]
                with RunTelemetry(telemetry_dir, argv=run_argv,
                                  config={"command": args.command},
                                  progress=verbosity >= 0):
                    return args.func(args)
            return args.func(args)
    except SweepInterrupted as exc:
        resume_dir = getattr(args, "resume", None)
        hint = (" -- re-run with the same --resume to continue"
                if resume_dir is not None else
                " -- add --resume to make interrupted sweeps restartable")
        print(f"interrupted: {exc}{hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        # A Ctrl-C outside the engine (argument parsing, trace load,
        # report rendering) has no partial state to report but is still
        # a clean, resumable interruption.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ResourceExhaustedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
