"""Ablation: why the paper uses trace-driven simulation (section 5.0).

"Early on in this project we used execution-driven simulation.  We quickly
ran into problems because modifying the schedule of invalidations resulted
in different executions of the benchmarks ...  The effects of different
scheduling of invalidations were buried into the effects of altered
executions in unpredictable ways.  Therefore, we decided to use
trace-driven simulation instead."

We demonstrate both halves of that argument on our simulated machine:

1. *executions vary*: running the same program under different processor
   scan orders yields different traces with measurably different miss
   counts (the noise execution-driven evaluation would have to fight);
2. *trace-driven is exact*: on a fixed trace, every protocol comparison is
   bit-for-bit reproducible.
"""

from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.protocols import run_protocols
from repro.workloads import MP3D

SEEDS = (0, 1, 2, 3, 4)


def _mp3d(order, seed):
    wl = MP3D(200, num_cells=64, time_steps=10, num_procs=16, seed=3)
    return wl.generate(order=order) if order != "random" else \
        _random_order_trace(wl, seed)


def _random_order_trace(wl, seed):
    from repro.execution.scheduler import Machine
    from repro.mem.allocator import Allocator
    allocator = Allocator()
    threads = wl.build_threads(allocator)
    machine = Machine(wl.num_procs, order="random", seed=seed)
    return machine.run(threads, name=f"{wl.label}#seed{seed}",
                       meta={"data_set_bytes": allocator.used_bytes})


def test_execution_driven_variability(benchmark):
    def run():
        counts = {}
        for seed in SEEDS:
            trace = _mp3d("random", seed)
            bd = DuboisClassifier.classify_trace(trace, BlockMap(64))
            counts[seed] = (len(trace), bd.total, bd.essential)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'seed':>5s} {'events':>8s} {'misses':>8s} {'essential':>10s}")
    for seed, (events, misses, essential) in counts.items():
        print(f"{seed:>5d} {events:>8d} {misses:>8d} {essential:>10d}")

    totals = [c[1] for c in counts.values()]
    # Different machine-level schedules -> genuinely different executions.
    assert len(set(totals)) > 1, \
        "execution-driven runs should differ across schedules"
    spread = (max(totals) - min(totals)) / min(totals)
    print(f"miss-count spread across executions: {100 * spread:.2f}%")
    benchmark.extra_info["spread"] = spread


def test_trace_driven_reproducibility(benchmark, mp3d200):
    """On one fixed trace, protocol effects are deterministic — the
    methodological payoff the paper switched for."""
    def run():
        a = run_protocols(mp3d200, 64)
        b = run_protocols(mp3d200, 64)
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in a:
        assert a[name].breakdown.as_dict() == b[name].breakdown.as_dict()
        assert a[name].counters.as_dict() == b[name].counters.as_dict()
    print("\nall seven protocols bit-for-bit reproducible on a fixed trace")
