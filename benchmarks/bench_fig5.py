"""Figure 5: miss-rate decomposition vs block size (4..1024 bytes) for the

four benchmarks at the small data-set sizes.

Shape assertions encode the paper's section 6 narrative per benchmark:

LU      CTS dominates at small blocks and converts to PTS as blocks grow
        past the column size; false sharing explodes once blocks span
        columns of different owners.
MP3D    PTS drops sharply up to 32 B (collisions touch 20 B); PFS appears
        at 8 B (36-B interleaved particles) and keeps growing (48-B cells).
WATER   PTS falls rapidly until ~128 B (72-B force field); PFS grows as
        blocks approach the 680-B molecule record.
JACOBI  True sharing halves from B=4 to B=8 (8-B elements); PFS appears at
        8 B (ANL barrier words) and jumps at 256 B (128-B subgrid rows).
"""

import pytest

from repro.analysis.figures import figure5
from repro.analysis.invariants import check_block_size_monotonicity
from repro.mem import PAPER_BLOCK_SIZES


@pytest.fixture(scope="module")
def panels(small_suite):
    return figure5(small_suite, PAPER_BLOCK_SIZES)


def _sweep(panels, name):
    return panels[name].sweep


def test_fig5_render_and_monotonicity(benchmark, small_suite):
    panels = benchmark.pedantic(
        lambda: figure5(small_suite, PAPER_BLOCK_SIZES),
        rounds=1, iterations=1)
    print()
    for name, panel in panels.items():
        print(panel.format())
        print()
        assert check_block_size_monotonicity(panel.sweep) == [], name
        benchmark.extra_info[name] = {
            bb: bd.as_dict() for bb, bd in zip(panel.sweep.block_sizes,
                                               panel.sweep.breakdowns)}


def test_fig5_lu_shape(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sw = _sweep(panels, "LU32")
    # CTS -> PTS conversion as blocks grow.
    assert sw.at(8).cts > sw.at(256).cts
    assert sw.at(256).pts > sw.at(8).pts
    # False sharing explodes when blocks span column boundaries
    # (columns are 32*8 = 256 bytes in our layout).
    assert sw.at(256).pfs < 0.05 * sw.at(512).pfs
    assert sw.at(512).pfs > 10_000


def test_fig5_mp3d_shape(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sw = _sweep(panels, "MP3D200")
    # "the true sharing miss rate component decreases dramatically up to
    # 32 bytes"
    pts4, pts32 = sw.at(4).pts + sw.at(4).cts, sw.at(32).pts + sw.at(32).cts
    assert pts32 < 0.75 * pts4
    # "False sharing starts to appear for a block size of eight bytes"
    assert sw.at(4).pfs == 0
    assert sw.at(8).pfs > 0
    # "Additional false sharing ... for blocks larger than 16 bytes"
    assert sw.at(64).pfs > sw.at(16).pfs


def test_fig5_water_shape(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sw = _sweep(panels, "WATER16")
    # "decreases rapidly up until a block size of 128 bytes"
    assert sw.at(128).pts < 0.25 * sw.at(8).pts
    # "false sharing rate starts to grow significantly when the block size
    # approaches the size of the molecule data structure (680 bytes)"
    assert sw.at(1024).pfs > 3 * sw.at(256).pfs


def test_fig5_jacobi_shape(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sw = _sweep(panels, "JACOBI64")
    # "true sharing to go down abruptly to half as we move from a block
    # size of 4 to 8 bytes"
    ts4 = sw.at(4).pts + sw.at(4).cts
    ts8 = sw.at(8).pts + sw.at(8).cts
    assert 0.4 <= ts8 / ts4 <= 0.65
    # "False sharing starts to appear for a block size of 8 bytes because
    # of the ... barriers" (counter and flag in consecutive words)
    assert sw.at(4).pfs == 0
    assert sw.at(8).pfs > 0
    # "false sharing abruptly goes up for a block size of 256 bytes"
    # (subgrid row = 16 elements = 128 bytes)
    assert sw.at(256).pfs > 20 * sw.at(128).pfs
