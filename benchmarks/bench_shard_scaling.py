"""Shard-scaling benchmark: one Figure-6b-style cell split by block id.

The acceptance scenario for the block-sharding layer: a *single* protocol
cell (MP3D200 at B=1024 — exactly the shape where the grid is too small to
fill the machine) must run >= 1.8x faster with 4 shard workers than the
serial whole-trace pass, bit-identically.  On hosts with fewer than four
usable cores the speedup assertion is skipped (never failed), but the
skip — with the host core count — is still recorded in
``BENCH_throughput.json`` so the perf trajectory shows *why* the number
is absent.  Methodology and reference numbers live in EXPERIMENTS.md.
"""

import os
import time

import pytest

from repro.analysis.engine import SweepEngine
from repro.protocols import run_protocol

BLOCK = 1024
PROTOCOL = "OTF"
CELL = ("protocol", BLOCK, PROTOCOL)


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, rounds=3):
    """(best seconds, last result) over ``rounds`` timed calls."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _timed_cell(trace, shards):
    """Best-of-3 wall time of one sharded cell on a fresh engine.

    A fresh engine per round keeps the measurement honest: nothing is
    reused across rounds except the trace object itself (the shared
    precompute, shard plans and worker pools are all rebuilt).
    """
    def run():
        engine = SweepEngine(trace, jobs=shards, shards=shards)
        (result,) = engine.run_grid([CELL])
        return result

    return _best_of(run)


def test_shard_scaling_single_cell(bench_json, mp3d200):
    """Scaling table shards ∈ {1, 2, 4} plus the >= 1.8x acceptance gate."""
    cores = _host_cores()
    events = len(mp3d200)
    expected = run_protocol(PROTOCOL, mp3d200, BLOCK)

    t_serial, serial = _timed_cell(mp3d200, 1)
    assert serial == expected
    entry = {"workload": "MP3D200", "block_bytes": BLOCK,
             "protocol": PROTOCOL, "events": events, "host_cores": cores,
             "serial_sec": round(t_serial, 3),
             "serial_events_per_sec": int(events / t_serial)}

    for shards in (2, 4):
        if cores < shards:
            entry[f"shards{shards}_status"] = (
                f"skipped: host has {cores} core(s) < {shards}")
            continue
        t, result = _timed_cell(mp3d200, shards)
        assert result == expected  # bit-identical, not just faster
        entry[f"shards{shards}_sec"] = round(t, 3)
        entry[f"shards{shards}_events_per_sec"] = int(events / t)
        entry[f"shards{shards}_speedup"] = round(t_serial / t, 2)

    bench_json("shard_scaling/MP3D200/B1024", **entry)

    if cores < 4:
        pytest.skip(f"shard speedup needs >= 4 cores, host has {cores}")
    speedup = entry["shards4_speedup"]
    assert speedup >= 1.8, (
        f"4-shard speedup {speedup:.2f}x < 1.8x on a {cores}-core host")
