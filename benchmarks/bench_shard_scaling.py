"""Shard-scaling benchmark: single cells split along partition dimensions.

The acceptance scenario for the sharding layer: a *single* cell — exactly
the shape where the grid is too small to fill the machine — must scale
across shard workers bit-identically.  Three cells are measured, one per
partition dimension the engine knows:

* a protocol cell (MP3D200, OTF at B=1024), sharded **by block**, with
  the original >= 1.8x 4-shard acceptance gate;
* a Dubois classifier cell (MP3D1000 at B=64), sharded by block with no
  sync replication, carrying the same >= 1.8x gate;
* a finite-cache cell (MP3D200, 64 blocks 4-way at B=1024), sharded
  **by cache set** (16 sets), asserted bit-identical with its speedup
  recorded.

On hosts with fewer than four usable cores the speedup assertions are
skipped (never failed), but the skip — with the host core count — is
still recorded in ``BENCH_throughput.json`` so the perf trajectory shows
*why* the number is absent.  Methodology and reference numbers live in
EXPERIMENTS.md.
"""

import os
import time

import pytest

from repro.analysis.engine import SweepEngine
from repro.protocols import run_protocol

BLOCK = 1024
PROTOCOL = "OTF"
CELL = ("protocol", BLOCK, PROTOCOL)
CLASSIFY_CELL = ("classify", 64, "dubois")
FINITE_CELL = ("finite", 1024, "c64w4")


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, rounds=3):
    """(best seconds, last result) over ``rounds`` timed calls."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _timed_cell(trace, shards, cell=CELL):
    """Best-of-3 wall time of one sharded cell on a fresh engine.

    A fresh engine per round keeps the measurement honest: nothing is
    reused across rounds except the trace object itself (the shared
    precompute, shard plans and worker pools are all rebuilt).
    """
    def run():
        engine = SweepEngine(trace, jobs=shards, shards=shards)
        (result,) = engine.run_grid([cell])
        return result

    return _best_of(run)


def _scaling_entry(trace, cell, expected, entry):
    """Fill one BENCH entry with the shards ∈ {1, 2, 4} scaling table.

    Every sharded result is asserted bit-identical to ``expected``; the
    speedup columns of shard counts the host cannot exercise are recorded
    as skips instead.  Returns the serial wall time.
    """
    cores = _host_cores()
    events = len(trace)
    t_serial, serial = _timed_cell(trace, 1, cell)
    assert serial == expected
    entry.update({"events": events, "host_cores": cores,
                  "serial_sec": round(t_serial, 3),
                  "serial_events_per_sec": int(events / t_serial)})
    for shards in (2, 4):
        if cores < shards:
            entry[f"shards{shards}_status"] = (
                f"skipped: host has {cores} core(s) < {shards}")
            continue
        t, result = _timed_cell(trace, shards, cell)
        assert result == expected  # bit-identical, not just faster
        entry[f"shards{shards}_sec"] = round(t, 3)
        entry[f"shards{shards}_events_per_sec"] = int(events / t)
        entry[f"shards{shards}_speedup"] = round(t_serial / t, 2)
    return t_serial


def _gate_speedup(entry, label):
    cores = _host_cores()
    if cores < 4:
        pytest.skip(f"shard speedup needs >= 4 cores, host has {cores}")
    speedup = entry["shards4_speedup"]
    assert speedup >= 1.8, (
        f"4-shard {label} speedup {speedup:.2f}x < 1.8x on a "
        f"{cores}-core host")


def test_shard_scaling_single_cell(bench_json, mp3d200):
    """Protocol cell by block: shards ∈ {1, 2, 4} plus the >= 1.8x gate."""
    expected = run_protocol(PROTOCOL, mp3d200, BLOCK)
    entry = {"workload": "MP3D200", "block_bytes": BLOCK,
             "protocol": PROTOCOL}
    _scaling_entry(mp3d200, CELL, expected, entry)
    bench_json("shard_scaling/MP3D200/B1024", **entry)
    _gate_speedup(entry, "protocol")


def test_shard_scaling_classifier_cell(bench_json, mp3d1000):
    """Dubois classifier cell by block: same table, same >= 1.8x gate."""
    (expected,) = SweepEngine(mp3d1000).run_grid([CLASSIFY_CELL])
    entry = {"workload": "MP3D1000", "block_bytes": CLASSIFY_CELL[1],
             "classifier": "dubois", "partition_dim": "by-block"}
    _scaling_entry(mp3d1000, CLASSIFY_CELL, expected, entry)
    bench_json("shard_scaling/MP3D1000/classify-dubois-B64", **entry)
    _gate_speedup(entry, "classifier")


def test_shard_scaling_finite_cell(bench_json, mp3d200):
    """Finite-cache cell by cache set: bit-identity plus recorded scaling.

    The 16-set 4-way geometry partitions across up to 16 shards; the
    acceptance gate rides on the protocol/classifier benches, so here the
    speedup columns are recorded without a hard threshold.
    """
    (expected,) = SweepEngine(mp3d200).run_grid([FINITE_CELL])
    entry = {"workload": "MP3D200", "block_bytes": FINITE_CELL[1],
             "finite_spec": FINITE_CELL[2],
             "partition_dim": "by-cache-set/16"}
    _scaling_entry(mp3d200, FINITE_CELL, expected, entry)
    bench_json("shard_scaling/MP3D200/finite-c64w4-B1024", **entry)
