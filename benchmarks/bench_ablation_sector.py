"""Ablation: coherence granularity between OTF and MIN (paper section 7).

The paper's closing argument: the residual gap of the delayed protocols at
B=1024 is the cost of whole-block ownership, pointing at "systems with
multiple block sizes, or even systems in which coherence is maintained on
individual words".  The sector protocol realizes that family — transfer at
the block size, coherence at a sub-block size — and this bench sweeps the
sub-block size to show the miss rate interpolating monotonically between
the OTF and MIN endpoints.
"""

from repro.mem import BlockMap
from repro.protocols import SectorProtocol, run_protocols, sector_sweep_sizes

BLOCK = 1024


def test_sector_granularity_sweep(benchmark, jacobi64):
    def run():
        endpoints = run_protocols(jacobi64, BLOCK, ["MIN", "OTF"])
        sweep = {}
        for sub in sector_sweep_sizes(BLOCK):
            protocol = SectorProtocol(jacobi64.num_procs, BlockMap(BLOCK),
                                      sub)
            sweep[sub] = protocol.run(jacobi64)
        return endpoints, sweep

    endpoints, sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"JACOBI64 @ B={BLOCK}: miss rate vs coherence sub-block size")
    print(f"{'sub-block':>10s} {'miss%':>8s} {'PFS':>8s}")
    for sub, r in sweep.items():
        print(f"{sub:>10d} {r.miss_rate:>8.2f} {r.breakdown.pfs:>8d}")
    print(f"{'(MIN)':>10s} {endpoints['MIN'].miss_rate:>8.2f}")
    print(f"{'(OTF)':>10s} {endpoints['OTF'].miss_rate:>8.2f}")

    misses = [sweep[sub].misses for sub in sorted(sweep)]
    # Monotone: finer coherence granularity never adds misses.
    assert misses == sorted(misses)
    # Exact endpoint identities.
    assert sweep[4].misses == endpoints["MIN"].misses
    assert sweep[BLOCK].misses == endpoints["OTF"].misses
    # The paper's quantitative motivation: most of the OTF->MIN gap is
    # already recovered at modest sub-block sizes (<= 64 B) for JACOBI,
    # whose false sharing is word-disjoint across processors.
    gap = endpoints["OTF"].misses - endpoints["MIN"].misses
    recovered_at_64 = endpoints["OTF"].misses - sweep[64].misses
    assert recovered_at_64 > 0.8 * gap
    benchmark.extra_info["miss_rate_by_sub"] = {
        str(sub): r.miss_rate for sub, r in sweep.items()}
