"""Table 2: characteristics of the benchmarks.

Reports speedup (perfect memory), read/write/acquire-release counts and
data-set size for the four paper benchmarks, plus the scaled large
configurations.  Shape assertions follow the paper's table: WATER is the
most read-dominated, MP3D has by far the highest synchronization rate,
JACOBI the largest data set of the small suite and a near-perfect speedup.
"""

from repro.analysis.tables import build_table2, format_table2
from repro.trace.stats import benchmark_stats


def test_table2_small_suite(benchmark, small_suite):
    stats = benchmark.pedantic(lambda: build_table2(small_suite),
                               rounds=1, iterations=1)
    print()
    print(format_table2(stats))

    by_name = {s.name: s for s in stats}
    lu, mp3d = by_name["LU32"], by_name["MP3D200"]
    water, jacobi = by_name["WATER16"], by_name["JACOBI64"]

    # Paper Table 2 shapes.
    assert all(s.reads > s.writes for s in stats)
    assert water.reads / water.writes > mp3d.reads / mp3d.writes
    assert mp3d.acq_rel / mp3d.data_refs == max(
        s.acq_rel / s.data_refs for s in stats)
    assert jacobi.data_set_bytes == max(s.data_set_bytes for s in stats)
    assert jacobi.speedup > 14, "JACOBI is embarrassingly parallel"
    assert all(1.0 <= s.speedup <= s.num_procs for s in stats)
    # JACOBI's two 64x64 grids of 8-byte elements: 64 KB, paper says 65 KB
    # (their extra KB is runtime bookkeeping we don't model).
    assert 64 * 1024 <= jacobi.data_set_bytes < 68 * 1024

    for s in stats:
        benchmark.extra_info[s.name] = s.as_row()


def test_table2_large_suite(benchmark, large_suite):
    stats = benchmark.pedantic(lambda: build_table2(large_suite),
                               rounds=1, iterations=1)
    print()
    print(format_table2(stats))
    by_name = {s.name: s for s in stats}
    # Larger data sets than the small suite counterparts (the property the
    # paper's section 7 relies on).
    assert by_name["LU64"].data_set_bytes > 4 * 8 * 1024
    assert by_name["MP3D1000"].data_set_bytes > 36 * 1000
