"""Section 7's large-data-set runs (scaled stand-ins; see DESIGN.md).

Paper claims reproduced:

* "the effect of false sharing moves to larger block sizes" as the data
  set grows;
* "these effects are much reduced for B=64 since the difference between
  the on-the-fly miss rate and the essential miss rate is always less than
  20%";
* "For B=1,024 the false sharing components are very large and the
  protocols are still quite far from the essential miss rate";
* "a very large miss rate for MAX in the case of LU".
"""

import pytest

from repro.analysis.sweep import sweep_block_sizes
from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.protocols import run_protocols


def test_large_fig5_sweeps(benchmark, large_suite):
    sweeps = benchmark.pedantic(
        lambda: [sweep_block_sizes(t) for t in large_suite],
        rounds=1, iterations=1)
    print()
    for sw in sweeps:
        print(sw.format())
        print()
        benchmark.extra_info[sw.trace_name] = {
            bb: bd.as_dict()
            for bb, bd in zip(sw.block_sizes, sw.breakdowns)}


def test_false_sharing_moves_to_larger_blocks(benchmark, lu32, lu64):
    """Compare LU small vs large at each block size: the block size where
    false sharing becomes significant grows with the data set (larger
    columns -> later column-boundary crossings)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def onset(trace):
        for bb in (4, 8, 16, 32, 64, 128, 256, 512, 1024):
            bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
            if bd.pfs > 0.05 * max(1, bd.total):
                return bb
        return 2048

    small_onset = onset(lu32)
    large_onset = onset(lu64)
    print(f"\nLU false-sharing onset: LU32 at B={small_onset}, "
          f"LU64 at B={large_onset}")
    assert large_onset >= 2 * small_onset


def test_otf_within_reach_of_essential_at_cache_blocks(benchmark, large_suite):
    """B=64 with large data sets: OTF within a modest factor of essential
    (the paper reports <20%; our scaled traces run hotter on MP3D because
    the particle density per cell is higher, so the bound is looser there
    and recorded in EXPERIMENTS.md)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for trace in large_suite:
        bd = DuboisClassifier.classify_trace(trace, BlockMap(64))
        otf_rate = None
        res = run_protocols(trace, 64, ["OTF"])
        otf_rate = res["OTF"].miss_rate
        gap = (otf_rate - bd.essential_rate) / bd.essential_rate
        print(f"{trace.name:10s} B=64 essential={bd.essential_rate:5.2f}% "
              f"OTF={otf_rate:5.2f}% gap={100*gap:5.1f}%")
        limit = 0.35 if trace.name.startswith("LU") else 1.2
        assert gap <= limit, (trace.name, gap)


def test_vsm_blocks_protocols_far_from_essential(benchmark, lu64):
    """B=1024 with large data: the delayed protocols remain far from MIN
    and MAX blows up for LU."""
    res = benchmark.pedantic(
        lambda: run_protocols(lu64, 1024, ["MIN", "OTF", "SRD", "MAX"]),
        rounds=1, iterations=1)
    print()
    for name, r in res.items():
        print(r.describe())
    assert res["SRD"].misses > 2 * res["MIN"].misses
    assert res["MAX"].misses > 1.25 * res["OTF"].misses
    benchmark.extra_info["totals"] = {n: r.misses for n, r in res.items()}
