"""Table 1: PTS/COLD/PFS counts under the three classifications.

The paper uses LU200 and MP3D10000 at block sizes 32 and 1,024 bytes; we
use the scaled stand-ins LU64 and MP3D1000 (see DESIGN.md).  Absolute
counts differ from the paper; the *relations* the paper derives from the
table are asserted:

* both prior schemes report less true sharing than our PTS (they ignore
  values communicated by a miss but consumed later);
* Torrellas inflates the cold-miss count (word-granular first touch);
* both prior schemes overestimate false sharing.
"""

from repro.analysis.tables import build_table1, format_table1


def test_table1(benchmark, lu64, mp3d1000):
    traces = [lu64, mp3d1000]

    comparisons = benchmark.pedantic(
        lambda: build_table1(traces, block_sizes=(32, 1024)),
        rounds=1, iterations=1)

    print()
    print(format_table1(comparisons))

    for (name, bb), cmp in comparisons.items():
        rows = cmp.table1_rows()
        # All three schemes classify the same misses.
        assert cmp.ours.total == cmp.eggers.total == cmp.torrellas.total
        # Eggers undercounts true sharing relative to ours.
        assert rows["TSM-Eggers"] <= rows["PTS-ours"], (name, bb)
        # Torrellas inflates cold misses; ours == Eggers by construction.
        assert rows["COLD-Torrellas"] >= rows["COLD-ours"], (name, bb)
        assert rows["COLD-Eggers"] == rows["COLD-ours"], (name, bb)
        # Eggers overestimates false sharing relative to ours.
        assert rows["PFS-Eggers"] >= rows["PFS-ours"], (name, bb)
        benchmark.extra_info[f"{name}@{bb}"] = rows
