"""Ablation: trace-interleaving sensitivity (paper section 2.3, Figure 2).

"The essential miss rate is not an intrinsic property of an application,
but only a property of an execution (or of an interleaved trace)."

We re-interleave a benchmark trace (synchronization-safely: data events
shuffle within bounded windows and never cross sync events) under several
seeds and measure the spread of the essential miss count.  The spread is
nonzero — confirming the paper's point — but small relative to the total,
which is why trace-driven methodology is still meaningful.
"""

import pytest

from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.trace.interleave import reinterleave_sync_safe
from repro.trace.validate import check_races

SEEDS = (1, 2, 3, 4, 5)


def test_interleaving_changes_essential_count(benchmark, mp3d200):
    bm = BlockMap(64)

    def run():
        counts = {}
        base = DuboisClassifier.classify_trace(mp3d200, bm).essential
        counts["base"] = base
        for seed in SEEDS:
            variant = reinterleave_sync_safe(mp3d200, seed=seed)
            counts[f"seed{seed}"] = DuboisClassifier.classify_trace(
                variant, bm).essential
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(counts.values())
    spread = max(values) - min(values)
    print(f"\nessential misses per interleaving: {counts}")
    print(f"spread: {spread} ({100 * spread / max(values):.2f}% of max)")

    assert spread > 0, "re-interleaving should perturb the essential count"
    assert spread < 0.2 * max(values), "but only mildly"
    benchmark.extra_info.update(counts)


def test_sync_safe_reinterleaving_stays_race_free(benchmark, jacobi64):
    """The re-interleaver must produce *equivalent executions*: same
    per-processor streams, still race-free."""
    variant = benchmark.pedantic(
        lambda: reinterleave_sync_safe(jacobi64, seed=9),
        rounds=1, iterations=1)
    assert variant.per_processor() == jacobi64.per_processor()
    assert check_races(variant).is_race_free
