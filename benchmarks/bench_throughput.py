"""Performance benchmarks: events/second of the classifiers and protocol

simulators on a real benchmark trace.  These guard against performance
regressions in the hot loops (the library's usefulness depends on keeping
multi-million-event traces tractable), and pin the sweep engine's
end-to-end speedup over the pre-refactor workflow (see
``test_fig5_sweep_end_to_end_speedup``)."""

import gc
import os
import time

import pytest

from repro.analysis.engine import SharedPrecompute, SweepEngine
from repro.runtime.resources import peak_rss_bytes
from repro.classify import (
    DuboisClassifier,
    EggersClassifier,
    ReferenceDuboisClassifier,
    TorrellasClassifier,
)
from repro.mem import BlockMap
from repro.mem.addresses import PAPER_BLOCK_SIZES
from repro.protocols import run_protocol
from repro.trace.cache import WorkloadTraceCache
from repro.trace.trace import Trace
from repro.workloads import make_workload


@pytest.mark.parametrize("classifier", [DuboisClassifier, EggersClassifier,
                                        TorrellasClassifier])
def test_classifier_throughput(benchmark, bench_json, mp3d200, classifier):
    bm = BlockMap(64)
    result = benchmark.pedantic(
        lambda: classifier.classify_trace(mp3d200, bm),
        rounds=3, iterations=1)
    assert result.total > 0
    eps = int(len(mp3d200) / benchmark.stats.stats.mean)
    rss_kb = peak_rss_bytes("self") // 1024
    benchmark.extra_info["events"] = len(mp3d200)
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["max_rss_kb"] = rss_kb
    bench_json(f"classify/{classifier.__name__}/MP3D200/B64",
               mode="serial", events=len(mp3d200), events_per_sec=eps,
               max_rss_kb=rss_kb)


@pytest.mark.parametrize("protocol", ["MIN", "OTF", "RD", "SD", "SRD",
                                      "WBWI", "MAX"])
def test_protocol_throughput(benchmark, bench_json, mp3d200, protocol):
    result = benchmark.pedantic(
        lambda: run_protocol(protocol, mp3d200, 64),
        rounds=3, iterations=1)
    assert result.misses > 0
    eps = int(len(mp3d200) / benchmark.stats.stats.mean)
    rss_kb = peak_rss_bytes("self") // 1024
    benchmark.extra_info["events"] = len(mp3d200)
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["max_rss_kb"] = rss_kb
    bench_json(f"protocol/{protocol}/MP3D200/B64",
               mode="serial", events=len(mp3d200), events_per_sec=eps,
               max_rss_kb=rss_kb)


@pytest.mark.parametrize("kind,which", [("classify", "dubois"),
                                        ("protocol", "OTF")])
def test_kernel_speedup(benchmark, bench_json, mp3d1000, kind, which):
    """Kernel gate: the vectorized cells must deliver >= 5x single-core.

    Both legs run the identical engine cell path
    (:class:`SharedPrecompute` at paper scale, MP3D1000/B64) and must
    produce bit-identical results; only the ``kernel`` mode differs.
    Each round builds a fresh precompute and first runs the same cell at
    B16 — that is a sweep's steady state (one shared precompute serves
    every block size), so the timed B64 cell sees warm word-level tables
    but a cold block view, symmetrically for both modes.
    """
    pytest.importorskip("numpy")

    def cell_round(kernel):
        pre = SharedPrecompute(mp3d1000, kernel=kernel)
        run = (lambda bb: pre.run_classifier(which, bb)) if kind == "classify" \
            else (lambda bb: pre.run_protocol(which, bb))
        run(16)
        t0 = time.perf_counter()
        result = run(64)
        return result, time.perf_counter() - t0

    gc.collect()  # shed prior benchmarks' garbage outside the timed region
    t_vec = t_int = 1e9
    for _ in range(5):
        res_vec, dt = cell_round("vectorized")
        t_vec = min(t_vec, dt)
    for _ in range(3):
        res_int, dt = cell_round("interpreted")
        t_int = min(t_int, dt)
    assert res_vec == res_int  # same counters, not just faster

    benchmark.pedantic(lambda: cell_round("vectorized")[0],
                       rounds=1, iterations=1)
    events = len(mp3d1000)
    speedup = t_int / t_vec
    eps = int(events / t_vec)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["speedup"] = round(speedup, 2)
    bench_json(f"kernel/{kind}-{which}/MP3D1000/B64", mode="vectorized",
               events=events, events_per_sec=eps,
               interpreted_events_per_sec=int(events / t_int),
               vectorized_sec=round(t_vec, 4),
               interpreted_sec=round(t_int, 4),
               speedup=round(speedup, 2))
    assert speedup >= 5.0, (
        f"{kind}-{which} kernel speedup {speedup:.2f}x < 5x")


def test_workload_generation_throughput(benchmark, bench_json):
    trace = benchmark.pedantic(
        lambda: make_workload("MP3D200").generate(), rounds=1, iterations=1)
    assert len(trace) > 10_000
    benchmark.extra_info["events"] = len(trace)
    benchmark.extra_info["max_rss_kb"] = peak_rss_bytes("self") // 1024
    bench_json("generate/MP3D200", mode="serial", events=len(trace),
               events_per_sec=int(len(trace) / benchmark.stats.stats.mean))


def test_telemetry_overhead_under_3_percent(benchmark, bench_json, mp3d200,
                                            tmp_path_factory):
    """Telemetry gate: recording a run costs < 3 % end to end.

    Both legs run the same serial Fig.5-style classification sweep; the
    recorded leg adds a full :class:`~repro.obs.RunTelemetry` — per-cell
    spans, metrics, the manifest fold, the events.jsonl writes, and
    (since the distributed-tracing change) trace-id/span-id threading on
    every record, which this gate re-prices.  The budget holds because
    instrumentation is per *cell*, not per event — a sweep emits tens of
    records while classifying millions of references — and because
    telemetry-off call sites hit the no-op
    :data:`~repro.obs.NULL_RECORDER`.

    The recorded leg's manifest is also appended to the repo-root
    ``PERF_HISTORY.jsonl`` (the ``repro history`` store), so every
    benchmark run extends the cross-run perf trail and cells regressing
    against their trailing median get a logged warning.

    Methodology: the legs run as *interleaved off/on pairs* and the
    overhead is the **minimum pairwise on/off ratio**.  A real
    instrumentation cost inflates every pair, so it lower-bounds the
    minimum; transient machine load (CI boxes, the 1-core container)
    only spikes individual samples and cancels out — a plain
    min-per-leg comparison flaps by 10 %+ on a loaded host.
    """
    sizes = PAPER_BLOCK_SIZES
    tel = str(tmp_path_factory.mktemp("telemetry"))

    def sweep(telemetry_dir=None):
        return SweepEngine(mp3d200,
                           telemetry_dir=telemetry_dir).classify_sweep(sizes)

    sweep()  # warm page cache / allocator outside the timed region
    t_off = t_on = 1e9
    ratios = []
    for _ in range(6):
        t0 = time.perf_counter()
        sweep()
        off = time.perf_counter() - t0
        t0 = time.perf_counter()
        sweep(tel)
        on = time.perf_counter() - t0
        ratios.append(on / off)
        t_off, t_on = min(t_off, off), min(t_on, on)

    result = benchmark.pedantic(lambda: sweep(tel), rounds=1, iterations=1)
    assert result.breakdowns[0].total > 0
    overhead = min(ratios) - 1.0
    median = sorted(ratios)[len(ratios) // 2] - 1.0
    benchmark.extra_info["telemetry_off_sec"] = round(t_off, 4)
    benchmark.extra_info["telemetry_on_sec"] = round(t_on, 4)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    bench_json("telemetry/overhead/MP3D200/fig5-sweep", mode="serial",
               events=len(mp3d200) * len(sizes),
               telemetry_off_sec=round(t_off, 4),
               telemetry_on_sec=round(t_on, 4),
               overhead_pct=round(overhead * 100, 2),
               median_overhead_pct=round(median * 100, 2),
               span_ids=True)

    # Extend the cross-run perf trail with the recorded leg's newest
    # run and warn (never fail — the overhead assert is this test's
    # gate) about cells regressing against their trailing median.
    import logging

    from repro.obs import check_regressions, find_runs, load_history
    from repro.obs.history import record_run

    history_path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "PERF_HISTORY.jsonl")
    newest = sorted(find_runs(tel))[-1]
    record_run(newest, history_path, label="bench-telemetry-overhead")
    trend = check_regressions(load_history(history_path))
    for cell in trend["regressions"]:
        logging.getLogger("repro.benchmarks").warning(
            "perf history regression: %s %+.1f%% vs trailing median",
            "/".join(str(p) for p in cell["cell"]), cell["delta_pct"])

    assert overhead < 0.03, (
        f"telemetry overhead {overhead * 100:.2f}% >= 3%")


def test_fig5_sweep_end_to_end_speedup(benchmark, tmp_path_factory):
    """Acceptance benchmark: the sweep engine must deliver >= 2x end-to-end
    on a Fig.5-style multi-block-size classification sweep.

    * **before** — the pre-refactor workflow: generate the trace (every run
      regenerated it; there was no cache), then stream the event tuples
      through the Appendix A transliteration
      (:class:`ReferenceDuboisClassifier`) once per block size, recomputing
      the block address per access.
    * **after** — the engine workflow: load the trace from the warm on-disk
      npz cache (generated once, adopted as columns without decoding) and
      run :meth:`SweepEngine.classify_sweep` over the same block sizes with
      one :class:`~repro.analysis.engine.SharedPrecompute` (decode-once
      prefilter, per-size block ids, no-op read elision).

    Both legs produce identical breakdowns; methodology and reference
    numbers live in ``EXPERIMENTS.md``.
    """
    name = "MP3D200"
    cache = WorkloadTraceCache(str(tmp_path_factory.mktemp("traces")))
    cache.get(name)  # warm the on-disk cache outside the timed region

    def before():
        full = make_workload(name).generate()
        tup = Trace(full.events, full.num_procs, name=name, copy=False)
        return tuple(ReferenceDuboisClassifier.classify_trace(tup, BlockMap(bb))
                     for bb in PAPER_BLOCK_SIZES)

    def after():
        return SweepEngine(cache.get(name)).classify_sweep(PAPER_BLOCK_SIZES)

    t_before = 1e9
    for _ in range(2):
        t0 = time.perf_counter()
        expected = before()
        t_before = min(t_before, time.perf_counter() - t0)

    sweep = benchmark.pedantic(after, rounds=3, iterations=1)
    t_after = benchmark.stats.stats.min

    assert sweep.breakdowns == expected  # same results, not just faster
    events = sweep.breakdowns[0].data_refs * len(PAPER_BLOCK_SIZES)
    ratio = t_before / t_after
    benchmark.extra_info["before_sec"] = round(t_before, 3)
    benchmark.extra_info["after_sec"] = round(t_after, 3)
    benchmark.extra_info["speedup"] = round(ratio, 2)
    benchmark.extra_info["classified_refs"] = events
    benchmark.extra_info["refs_per_sec_after"] = int(events / t_after)
    assert ratio >= 2.0, f"end-to-end sweep speedup {ratio:.2f}x < 2x"
