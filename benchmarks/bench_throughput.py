"""Performance benchmarks: events/second of the classifiers and protocol

simulators on a real benchmark trace.  These guard against performance
regressions in the hot loops (the library's usefulness depends on keeping
multi-million-event traces tractable)."""

import pytest

from repro.classify import (
    DuboisClassifier,
    EggersClassifier,
    TorrellasClassifier,
)
from repro.mem import BlockMap
from repro.protocols import run_protocol


@pytest.mark.parametrize("classifier", [DuboisClassifier, EggersClassifier,
                                        TorrellasClassifier])
def test_classifier_throughput(benchmark, mp3d200, classifier):
    bm = BlockMap(64)
    result = benchmark.pedantic(
        lambda: classifier.classify_trace(mp3d200, bm),
        rounds=3, iterations=1)
    assert result.total > 0
    benchmark.extra_info["events"] = len(mp3d200)
    benchmark.extra_info["events_per_sec"] = int(
        len(mp3d200) / benchmark.stats.stats.mean)


@pytest.mark.parametrize("protocol", ["MIN", "OTF", "RD", "SD", "SRD",
                                      "WBWI", "MAX"])
def test_protocol_throughput(benchmark, mp3d200, protocol):
    result = benchmark.pedantic(
        lambda: run_protocol(protocol, mp3d200, 64),
        rounds=3, iterations=1)
    assert result.misses > 0
    benchmark.extra_info["events"] = len(mp3d200)
    benchmark.extra_info["events_per_sec"] = int(
        len(mp3d200) / benchmark.stats.stats.mean)


def test_workload_generation_throughput(benchmark):
    from repro.workloads import make_workload
    trace = benchmark.pedantic(
        lambda: make_workload("MP3D200").generate(), rounds=1, iterations=1)
    assert len(trace) > 10_000
    benchmark.extra_info["events"] = len(trace)
