"""Finite caches (paper section 8.0, future work).

"We expect that the fraction of essential misses will increase in systems
with finite caches.  This effect will depend on the cache size."

We sweep the per-processor cache capacity for OTF with LRU replacement and
report the replacement-miss component and the essential fraction of the
total miss rate.
"""

from repro.mem import BlockMap
from repro.protocols import FiniteOTFProtocol, run_protocol


def _finite(trace, block_bytes, capacity):
    return FiniteOTFProtocol(trace.num_procs, BlockMap(block_bytes),
                             capacity).run(trace)


def test_essential_fraction_grows_with_smaller_caches(benchmark, mp3d200):
    capacities = (8, 32, 128, 100_000)

    def run():
        return {cap: _finite(mp3d200, 64, cap) for cap in capacities}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'capacity':>9s} {'misses':>8s} {'repl':>7s} {'PFS':>7s} "
          f"{'essential%':>11s}")
    fractions = []
    for cap, r in results.items():
        essential = r.breakdown.essential + r.replacement_misses
        frac = essential / r.misses
        fractions.append(frac)
        print(f"{cap:>9d} {r.misses:>8d} {r.replacement_misses:>7d} "
              f"{r.breakdown.pfs:>7d} {100 * frac:>10.1f}%")

    # Smaller caches -> more (essential) replacement misses -> higher
    # essential fraction, monotonically along the sweep.
    assert fractions[0] >= fractions[1] >= fractions[2] >= fractions[3]
    assert results[8].replacement_misses > results[128].replacement_misses
    benchmark.extra_info["fractions"] = dict(
        zip(map(str, capacities), fractions))


def test_infinite_capacity_recovers_otf(benchmark, jacobi64):
    """With capacity above the working set the finite simulator is exactly
    OTF — the baseline correspondence."""
    finite = benchmark.pedantic(
        lambda: _finite(jacobi64, 64, 1_000_000), rounds=1, iterations=1)
    otf = run_protocol("OTF", jacobi64, 64)
    assert finite.misses == otf.misses
    assert finite.replacement_misses == 0
    assert finite.breakdown.as_dict() == otf.breakdown.as_dict()
