"""Figure 6: effect of invalidation scheduling on the miss rate.

Runs all seven schedules (MIN/OTF/RD/SD/SRD/WBWI/MAX) over the four
benchmarks at B=64 (Figure 6a, cache-based systems) and B=1024 (Figure 6b,
virtual shared memory).  Shape assertions encode the paper's section 7
conclusions:

* MIN achieves the essential miss rate; every schedule is bounded by
  MIN below and MAX above;
* at B=64 the delayed protocols sit close to essential ("little room for
  improvement"), and MAX ~ OTF for the small blocks;
* at B=1024 the ownership cost opens a large WBWI-MIN gap with RD~WBWI,
  send-delay (SD/SRD) becomes effective, SRD is the best protocol but
  still far from essential for LU and MP3D, and MAX can blow up (LU).
"""

import pytest

from repro.analysis.figures import figure6
from repro.analysis.invariants import (
    check_min_is_essential,
    check_protocol_ordering,
)


@pytest.fixture(scope="module")
def panels64(small_suite):
    return figure6(small_suite, 64)


@pytest.fixture(scope="module")
def panels1024(small_suite):
    return figure6(small_suite, 1024)


def test_fig6a_cache_blocks(benchmark, small_suite):
    panels = benchmark.pedantic(lambda: figure6(small_suite, 64),
                                rounds=1, iterations=1)
    print()
    for name, panel in panels.items():
        print(panel.format_table())
        print()
        res = panel.results
        assert check_protocol_ordering(res, synchronized=True) == [], name
        trace = next(t for t in small_suite if t.name == name)
        assert check_min_is_essential(trace, res["MIN"]) == [], name
        benchmark.extra_info[name] = panel.totals()


def test_fig6b_vsm_blocks(benchmark, small_suite):
    panels = benchmark.pedantic(lambda: figure6(small_suite, 1024),
                                rounds=1, iterations=1)
    print()
    for name, panel in panels.items():
        print(panel.format_table())
        print()
        res = panel.results
        assert check_protocol_ordering(res, synchronized=True) == [], name
        benchmark.extra_info[name] = panel.totals()


def test_fig6a_protocols_close_to_essential(benchmark, panels64):
    """B=64: 'the miss rates of the protocols (except for OTF and SD) are
    very close to the essential miss rate' for LU/WATER/JACOBI.  (MP3D
    keeps a visible residual, as in the paper's own panel.)"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("LU32", "WATER16", "JACOBI64"):
        res = panels64[name].results
        mn = res["MIN"].misses
        for proto in ("RD", "SRD", "WBWI"):
            assert res[proto].misses <= 1.5 * mn, (name, proto)


def test_fig6a_max_close_to_otf(benchmark, panels64):
    """B=64: 'the worst-case schedule gave a miss rate almost equal to
    OTF' — small blocks leave little room for ping-pong."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("LU32", "JACOBI64"):
        res = panels64[name].results
        assert res["MAX"].misses <= 1.1 * res["OTF"].misses, name


def test_fig6b_ownership_gap(benchmark, panels1024):
    """B=1024: 'a large difference between the miss rates of WBWI (or RD)
    and MIN' and 'discrepancy between WBWI and MIN but not between RD and
    WBWI'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, panel in panels1024.items():
        res = panel.results
        mn, wbwi, rd = (res[k].misses for k in ("MIN", "WBWI", "RD"))
        assert wbwi > 1.8 * mn, (name, wbwi, mn)
        assert abs(rd - wbwi) < 0.35 * wbwi, (name, rd, wbwi)


def test_fig6b_srd_best_but_not_min(benchmark, panels1024):
    """B=1024: SRD is the best protocol yet 'does not always reach the
    essential miss rate of the trace, especially in the cases of LU and
    MP3D'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, panel in panels1024.items():
        res = panel.results
        for other in ("OTF", "RD", "SD"):
            assert res["SRD"].misses <= res[other].misses * 1.02, (name, other)
    for name in ("LU32", "MP3D200"):
        res = panels1024[name].results
        assert res["SRD"].misses > 2 * res["MIN"].misses, name


def test_fig6b_sd_becomes_effective(benchmark, panels1024):
    """B=1024: 'There are much more opportunities for store combining in
    systems with B=1,024 and the effectiveness of pure SD protocols is
    much better' — SD clearly beats OTF at VSM blocks."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, panel in panels1024.items():
        res = panel.results
        assert res["SD"].misses < 0.8 * res["OTF"].misses, name


def test_fig6b_max_blowup_for_lu(benchmark, panels1024):
    """Section 7: 'a very large miss rate for MAX in the case of LU'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    res = panels1024["LU32"].results
    assert res["MAX"].misses > 1.5 * res["OTF"].misses


def test_essential_components_stable_across_schedules(benchmark, panels64):
    """Section 7: 'The differences between the essential miss rates of
    OTF, RD, SD and SRD are negligible.'"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, panel in panels64.items():
        essentials = [panel.results[p].breakdown.essential
                      for p in ("OTF", "RD", "SD", "SRD")]
        assert max(essentials) - min(essentials) \
            <= 0.1 * max(essentials) + 5, (name, essentials)
