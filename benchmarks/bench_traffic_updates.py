"""Extension bench: traffic vs miss rate, and update protocols (paper §8).

The conclusion's two quantitative remarks:

* "The protocols with reduced miss rates also have reduced miss traffic.
  However, the traffic is very high for large block sizes."
* "At this level of traffic, delayed write-broadcast or delayed protocols
  with competitive updates, which can reduce the number of essential
  misses, may become attractive."

We measure both: per-reference traffic of the paper's protocols at 64 and
1024 bytes, and the miss/traffic trade of the WU/CU extensions.
"""

from repro.protocols import run_protocols
from repro.protocols.traffic import estimate_traffic


def test_traffic_by_protocol_and_block_size(benchmark, jacobi64):
    def run():
        out = {}
        for bb in (64, 1024):
            out[bb] = run_protocols(jacobi64, bb,
                                    ["MIN", "OTF", "RD", "SRD", "WBWI"])
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'B':>5s} {'proto':6s} {'miss%':>7s} {'bytes/ref':>10s}")
    per_ref = {}
    for bb, res in results.items():
        for name, r in res.items():
            t = estimate_traffic(r)
            per_ref[(bb, name)] = t.per_reference(r.breakdown.data_refs)
            print(f"{bb:>5d} {name:6s} {r.miss_rate:7.2f} "
                  f"{per_ref[(bb, name)]:10.1f}")

    # Reduced miss rates -> reduced fetch traffic, per block size.
    for bb, res in results.items():
        fetch = {n: estimate_traffic(r).fetch_bytes for n, r in res.items()}
        assert fetch["SRD"] <= fetch["OTF"], bb
        assert fetch["MIN"] <= fetch["SRD"], bb
    # "the traffic is very high for large block sizes": every protocol
    # moves far more bytes per reference at 1024 than at 64.
    for name in ("MIN", "OTF", "RD", "SRD", "WBWI"):
        assert per_ref[(1024, name)] > 3 * per_ref[(64, name)], name
    benchmark.extra_info["bytes_per_ref"] = {
        f"{bb}/{n}": v for (bb, n), v in per_ref.items()}


def test_update_protocols_cut_essential_misses(benchmark, water16):
    res = benchmark.pedantic(
        lambda: run_protocols(water16, 64, ["MIN", "OTF", "WU", "CU"]),
        rounds=1, iterations=1)
    print()
    for name, r in res.items():
        t = estimate_traffic(r)
        print(f"{name:4s} miss%={r.miss_rate:6.2f} "
              f"word-traffic={t.word_write_bytes:>9d}B "
              f"fetch-traffic={t.fetch_bytes:>9d}B")

    # Updates communicate without re-fetching: below the invalidation
    # minimum (MIN), at the price of word-update traffic.
    assert res["WU"].misses < res["MIN"].misses
    assert res["WU"].breakdown.pts == 0
    assert estimate_traffic(res["WU"]).word_write_bytes > 0
    # The competitive rule sits between WU and OTF in misses and spends
    # less on updates than WU.
    assert res["WU"].misses <= res["CU"].misses <= res["OTF"].misses
    assert estimate_traffic(res["CU"]).word_write_bytes \
        <= estimate_traffic(res["WU"]).word_write_bytes
    benchmark.extra_info["misses"] = {n: r.misses for n, r in res.items()}
