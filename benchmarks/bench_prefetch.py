"""Section 2.0's prefetching claims, quantified.

"PC misses can be eliminated by preloading blocks in the cache.  CFS
misses can be eliminated by preloading ... if we also have a technique to
detect and eliminate false sharing misses.  CTS misses cannot be
eliminated."

For each benchmark we compute the three miss-rate floors (essential,
+preload, +preload+word-invalidation) across block sizes and check the
structural claims.
"""

from repro.analysis.prefetch import prefetch_analysis


def test_prefetch_floors(benchmark, small_suite):
    analyses = benchmark.pedantic(
        lambda: [prefetch_analysis(t, (8, 64, 512)) for t in small_suite],
        rounds=1, iterations=1)

    print()
    for analysis in analyses:
        print(analysis.format())
        print()
        for floors in analysis.floors.values():
            # Floors are ordered and the last one is exactly CTS+PTS.
            assert floors.baseline >= floors.with_preload \
                >= floors.with_preload_and_wi
            assert floors.with_preload_and_wi == floors.irreducible
            # CTS cannot be eliminated: whenever the benchmark
            # communicates, the final floor is nonzero.
            bd = floors.breakdown
            if bd.cts + bd.pts:
                assert floors.irreducible > 0
        benchmark.extra_info[analysis.trace_name] = {
            bb: f.as_row()[1:] for bb, f in analysis.floors.items()}


def test_preload_gain_shrinks_with_block_size(benchmark, jacobi64):
    """Bigger blocks amortize cold misses on their own, so the preload
    win (PC elimination) shrinks as blocks grow."""
    analysis = benchmark.pedantic(
        lambda: prefetch_analysis(jacobi64, (8, 64, 512)),
        rounds=1, iterations=1)
    gains = {bb: f.baseline - f.with_preload
             for bb, f in analysis.floors.items()}
    print(f"\npreload gain (percentage points): {gains}")
    assert gains[8] > gains[64] > gains[512]
