"""Ablation: ANL barrier layout (paper section 6.0).

The paper attributes JACOBI's false sharing at B=8 to the ANL barrier
implementation storing its counter and flag "in consecutive memory
locations".  We rebuild JACOBI with the barrier pair padded to a block
boundary and show that the B=8 false-sharing component disappears while
everything else is unchanged.
"""

from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.workloads import Jacobi


def _jacobi(padded):
    return Jacobi(64, iterations=4, padded_barrier=padded,
                  num_procs=16).generate()


def test_barrier_padding_removes_small_block_false_sharing(benchmark):
    unpadded, padded = benchmark.pedantic(
        lambda: (_jacobi(False), _jacobi(True)), rounds=1, iterations=1)

    print()
    print(f"{'B':>5s} {'PFS unpadded':>13s} {'PFS padded':>11s}")
    results = {}
    for bb in (8, 16, 32, 64):
        pfs_u = DuboisClassifier.classify_trace(unpadded, BlockMap(bb)).pfs
        pfs_p = DuboisClassifier.classify_trace(padded, BlockMap(bb)).pfs
        results[bb] = (pfs_u, pfs_p)
        print(f"{bb:>5d} {pfs_u:>13d} {pfs_p:>11d}")

    # The paper's effect: barrier words cause ALL the PFS at B=8..64 in
    # JACOBI (grid partition boundaries only matter at larger blocks).
    assert results[8][0] > 0
    assert results[8][1] == 0
    for bb in (16, 32, 64):
        assert results[bb][1] < results[bb][0]

    # The padding leaves true sharing untouched at B=8.
    bu = DuboisClassifier.classify_trace(unpadded, BlockMap(8))
    bp = DuboisClassifier.classify_trace(padded, BlockMap(8))
    assert abs((bu.pts + bu.cts) - (bp.pts + bp.cts)) \
        <= 0.02 * (bu.pts + bu.cts)
    benchmark.extra_info["pfs_by_block"] = {
        str(bb): {"unpadded": u, "padded": p}
        for bb, (u, p) in results.items()}
