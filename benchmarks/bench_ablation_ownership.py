"""Ablation: the cost of maintaining ownership (paper sections 2.2/7.0).

WBWI is exactly MIN plus the ownership rule, so WBWI - MIN isolates the
ownership cost.  The paper's finding: "the cost of ownership is very low
for B=64" but "the plots for B=1,024 show a large difference"; the
conclusion attributes the whole residual gap of the delayed protocols to
ownership ("any improvement will have to deal with the problem of block
ownership").
"""

from repro.protocols import run_protocols


def _ownership_cost(trace, block_bytes):
    res = run_protocols(trace, block_bytes, ["MIN", "WBWI"])
    mn, wb = res["MIN"].misses, res["WBWI"].misses
    return mn, wb, (wb - mn) / max(1, mn)


def test_ownership_cost_by_block_size(benchmark, small_suite):
    rows = benchmark.pedantic(
        lambda: {t.name: {bb: _ownership_cost(t, bb) for bb in (64, 1024)}
                 for t in small_suite},
        rounds=1, iterations=1)

    print()
    print(f"{'bench':10s} {'B':>5s} {'MIN':>8s} {'WBWI':>8s} {'cost':>7s}")
    for name, by_block in rows.items():
        for bb, (mn, wb, cost) in by_block.items():
            print(f"{name:10s} {bb:>5d} {mn:>8d} {wb:>8d} {100*cost:6.1f}%")

    for name, by_block in rows.items():
        cost64 = by_block[64][2]
        cost1024 = by_block[1024][2]
        # Low-to-moderate at cache blocks (MP3D, with its write-shared
        # cells, pays the most), several-fold larger at VSM blocks.
        assert cost64 < 0.7, (name, cost64)
        assert cost1024 > 2 * cost64, (name, cost64, cost1024)
    benchmark.extra_info["ownership_cost"] = {
        name: {bb: row[2] for bb, row in by_block.items()}
        for name, by_block in rows.items()}


def test_ownership_misses_counter_accounts_for_gap(benchmark, jacobi64):
    """The WBWI-MIN miss gap is fully explained by the counted ownership
    misses (no hidden miss source)."""
    res = benchmark.pedantic(
        lambda: run_protocols(jacobi64, 1024, ["MIN", "WBWI"]),
        rounds=1, iterations=1)
    gap = res["WBWI"].misses - res["MIN"].misses
    own = res["WBWI"].counters.ownership_misses
    print(f"\nJACOBI64 @1024: gap={gap} ownership_misses={own}")
    # Ownership misses trigger refetches whose lifetimes can themselves
    # miss differently, so the counter brackets the gap rather than
    # equalling it exactly.
    assert own > 0
    assert 0.5 * gap <= own <= 1.5 * gap + 10
