"""Figures 1-4: the paper's hand-worked example sequences, reproduced

exactly.  These are correctness anchors: every cell of the paper's example
tables must match.  The benchmark times the three classifiers on the
concatenated example stream (a microbenchmark of per-event cost)."""

from repro.classify import (
    DuboisClassifier,
    EggersClassifier,
    TorrellasClassifier,
    classify,
    compare_classifications,
)
from repro.mem import BlockMap
from repro.trace import Trace, TraceBuilder


def fig1():
    return (TraceBuilder(2)
            .store(0, 0).load(1, 0).store(0, 1).load(1, 1).build("fig1"))


def fig2_pair():
    eager = (TraceBuilder(2)
             .store(0, 0).store(0, 1).load(1, 0).load(1, 1).build("fig2a"))
    delayed = (TraceBuilder(2)
               .store(0, 0).load(1, 0).store(0, 1).load(1, 1).build("fig2b"))
    return eager, delayed


def fig3():
    return (TraceBuilder(2)
            .store(0, 1).load(1, 0).load(0, 1).load(0, 0)
            .store(1, 0).load(0, 1).load(0, 0).build("fig3"))


def fig4():
    return (TraceBuilder(2)
            .load(0, 1).load(1, 0).store(1, 1).load(0, 0)
            .store(1, 0).load(0, 1).load(0, 0).build("fig4"))


def test_fig1_block_size_effect(benchmark):
    trace = fig1()
    b4 = classify(trace, 4)
    b8 = classify(trace, 8)
    # Paper Figure 1 columns, exactly.
    assert (b4.pc, b4.cts, b4.pts, b4.pfs) == (2, 2, 0, 0)
    assert (b8.pc, b8.cts, b8.pts, b8.pfs) == (1, 1, 1, 0)
    print("\nFig 1  B=4 words: PC,CTS,PC,CTS   B=8: PC,CTS,-,PTS  [OK]")
    benchmark.pedantic(lambda: classify(trace, 8), rounds=50, iterations=10)


def test_fig2_interleaving_effect(benchmark):
    eager, delayed = fig2_pair()
    assert classify(eager, 8).essential == 2
    assert classify(delayed, 8).essential == 3
    print("\nFig 2  eager essential=2, delayed essential=3  [OK]")
    benchmark.pedantic(lambda: classify(delayed, 8), rounds=50, iterations=10)


def test_fig3_cfs_and_pts(benchmark):
    c = compare_classifications(fig3(), 8)
    assert (c.ours.pc, c.ours.cfs, c.ours.pts) == (1, 1, 1)
    assert c.eggers.as_dict() == {"CM": 2, "TSM": 0, "FSM": 1, "data_refs": 7}
    assert c.torrellas.as_dict() == {"CM": 2, "TSM": 0, "FSM": 1,
                                     "data_refs": 7}
    print("\nFig 3  ours: PC,CFS,PTS | Eggers: CM,CM,FSM | "
          "Torrellas: CM,CM,FSM  [OK]")
    benchmark.pedantic(lambda: compare_classifications(fig3(), 8),
                       rounds=20, iterations=5)


def test_fig4_scheme_differences(benchmark):
    c = compare_classifications(fig4(), 8)
    assert (c.ours.pc, c.ours.pts, c.ours.pfs) == (2, 1, 1)
    assert c.eggers.as_dict() == {"CM": 2, "TSM": 0, "FSM": 2, "data_refs": 7}
    assert c.torrellas.as_dict() == {"CM": 3, "TSM": 1, "FSM": 0,
                                     "data_refs": 7}
    print("\nFig 4  ours: PC,PC,PFS,PTS | Eggers: 2CM+2FSM | "
          "Torrellas: 3CM+1TSM  [OK]")
    benchmark.pedantic(lambda: compare_classifications(fig4(), 8),
                       rounds=20, iterations=5)


def test_classifier_microbenchmark(benchmark):
    """Per-event throughput of the Appendix A classifier on a long stream
    built from the example patterns."""
    base = fig1().events + fig3().events + fig4().events
    events = []
    for rep in range(2000):
        offset = (rep % 50) * 16
        events.extend((p, op, a + offset) for p, op, a in base)
    trace = Trace(events, 2, validate=False)

    result = benchmark(
        lambda: DuboisClassifier.classify_trace(trace, BlockMap(8)))
    assert result.total > 0
    benchmark.extra_info["events"] = len(trace)
