"""Shared benchmark fixtures.

Workload traces are generated once per configuration and cached as ``.npz``
under ``benchmarks/_trace_cache`` via :class:`repro.trace.WorkloadTraceCache`
so repeated benchmark runs only pay the simulation cost being measured, not
trace generation.  Entries are keyed by workload name, configuration, seed
and library version, so editing a generator invalidates its entries
automatically.
"""

from __future__ import annotations

import os

import pytest

from repro.trace.cache import WorkloadTraceCache

CACHE_DIR = os.path.join(os.path.dirname(__file__), "_trace_cache")

_CACHE = WorkloadTraceCache(CACHE_DIR)


def workload_trace(name: str):
    """Generate-or-load the named workload's trace."""
    return _CACHE.get(name)


@pytest.fixture(scope="session")
def lu32():
    return workload_trace("LU32")


@pytest.fixture(scope="session")
def mp3d200():
    return workload_trace("MP3D200")


@pytest.fixture(scope="session")
def water16():
    return workload_trace("WATER16")


@pytest.fixture(scope="session")
def jacobi64():
    return workload_trace("JACOBI64")


@pytest.fixture(scope="session")
def small_suite(lu32, mp3d200, water16, jacobi64):
    """The paper's four benchmarks (Figure 5/6 scale), in paper order."""
    return [lu32, mp3d200, water16, jacobi64]


@pytest.fixture(scope="session")
def lu64():
    return workload_trace("LU64")


@pytest.fixture(scope="session")
def mp3d1000():
    return workload_trace("MP3D1000")


@pytest.fixture(scope="session")
def water40():
    return workload_trace("WATER40")


@pytest.fixture(scope="session")
def large_suite(lu64, mp3d1000, water40):
    """Scaled stand-ins for the paper's large data sets (section 7)."""
    return [lu64, mp3d1000, water40]
