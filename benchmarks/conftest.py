"""Shared benchmark fixtures.

Workload traces are generated once per configuration and cached as ``.npz``
under ``benchmarks/_trace_cache`` via :class:`repro.trace.WorkloadTraceCache`
so repeated benchmark runs only pay the simulation cost being measured, not
trace generation.  Entries are keyed by workload name, configuration, seed
and library version, so editing a generator invalidates its entries
automatically.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.trace.cache import WorkloadTraceCache

CACHE_DIR = os.path.join(os.path.dirname(__file__), "_trace_cache")

_CACHE = WorkloadTraceCache(CACHE_DIR)

#: Machine-readable perf trajectory, written at the repo root so future
#: PRs can diff throughput (see EXPERIMENTS.md for methodology).
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_throughput.json")

_RECORDS: dict = {}


def host_cores() -> int:
    """Usable cores (affinity-aware, like the engine's job resolution)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def record_throughput(name: str, **fields) -> None:
    """Queue one named entry for ``BENCH_throughput.json``.

    Every entry is stamped with the process's peak RSS at record time
    (``ru_maxrss``, self + forked workers), so the JSON carries a memory
    trajectory alongside the events/s one — the observable the resource
    governor's footprint model is calibrated against.
    """
    from repro.runtime.resources import peak_rss_bytes

    fields.setdefault("max_rss_kb", max(peak_rss_bytes("self"),
                                        peak_rss_bytes("children")) // 1024)
    _RECORDS[name] = fields


@pytest.fixture(scope="session")
def bench_json():
    """The recorder function, as a fixture (conftest isn't importable)."""
    return record_throughput


def pytest_sessionfinish(session, exitstatus):
    """Merge this run's entries into ``BENCH_throughput.json``.

    Merging (not overwriting) keeps entries from partial runs — e.g. a
    shard-scaling-only run must not erase the serial throughput numbers.
    """
    if not _RECORDS:
        return
    payload = {"version": 1, "host_cores": host_cores(), "entries": {}}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                previous = json.load(fh)
            if previous.get("version") == 1:
                payload["entries"].update(previous.get("entries", {}))
        except (json.JSONDecodeError, OSError):
            pass  # a corrupt file is rebuilt from scratch
    payload["entries"].update(_RECORDS)
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def workload_trace(name: str):
    """Generate-or-load the named workload's trace."""
    return _CACHE.get(name)


@pytest.fixture(scope="session")
def lu32():
    return workload_trace("LU32")


@pytest.fixture(scope="session")
def mp3d200():
    return workload_trace("MP3D200")


@pytest.fixture(scope="session")
def water16():
    return workload_trace("WATER16")


@pytest.fixture(scope="session")
def jacobi64():
    return workload_trace("JACOBI64")


@pytest.fixture(scope="session")
def small_suite(lu32, mp3d200, water16, jacobi64):
    """The paper's four benchmarks (Figure 5/6 scale), in paper order."""
    return [lu32, mp3d200, water16, jacobi64]


@pytest.fixture(scope="session")
def lu64():
    return workload_trace("LU64")


@pytest.fixture(scope="session")
def mp3d1000():
    return workload_trace("MP3D1000")


@pytest.fixture(scope="session")
def water40():
    return workload_trace("WATER40")


@pytest.fixture(scope="session")
def large_suite(lu64, mp3d1000, water40):
    """Scaled stand-ins for the paper's large data sets (section 7)."""
    return [lu64, mp3d1000, water40]
