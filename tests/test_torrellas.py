"""Unit tests for the Torrellas/Lam/Hennessy classifier."""

import pytest

from repro.classify import TorrellasClassifier
from repro.errors import TraceError
from repro.mem import BlockMap
from repro.trace import TraceBuilder
from repro.trace.events import ACQUIRE


def run(trace, block_bytes):
    return TorrellasClassifier.classify_trace(trace, BlockMap(block_bytes))


class TestPaperFigures:
    def test_figure3_column(self, fig3_trace):
        sb = run(fig3_trace, 8)
        assert sb.as_dict() == {"CM": 2, "TSM": 0, "FSM": 1, "data_refs": 7}

    def test_figure4_column(self, fig4_trace):
        sb = run(fig4_trace, 8)
        assert sb.as_dict() == {"CM": 3, "TSM": 1, "FSM": 0, "data_refs": 7}


class TestRules:
    def test_cold_is_word_granular(self):
        """A block re-fetch touching a never-before-referenced word counts
        as a cold miss — the inflation the paper criticizes."""
        t = (TraceBuilder(2)
             .load(0, 0)      # P0 cold (block + word 0)
             .store(1, 1)     # invalidates P0's block
             .load(0, 1)      # miss; first ref to word 1 -> CM again!
             .build())
        sb = run(t, 8)
        assert sb.cold == 3

    def test_tsm_needs_word_system_miss(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)     # invalidates block AND word copies
             .load(0, 0)      # word accessed before + word-system miss: TSM
             .build())
        assert run(t, 4).true_sharing == 1

    def test_fsm_when_word_system_hits(self):
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 1)
             .store(1, 0)     # block invalidated; word 1 copy still valid
             .load(0, 1)      # block miss, word-system hit: FSM
             .build())
        sb = run(t, 8)
        assert sb.false_sharing == 1

    def test_word_system_tracks_all_references_not_just_misses(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .load(0, 1)      # block hit, but word-1 copy established
             .store(1, 2)     # block invalidated (word 2 foreign)
             .load(0, 1)      # block miss; word 1 valid in word system: FSM
             .build())
        assert run(t, 16).false_sharing == 1

    def test_prefetch_blindspot(self):
        """The paper's Figure 3 argument: a miss that brings a value used
        two references later is called FSM by this scheme."""
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 1)
             .store(1, 0)
             .load(0, 1)      # FSM per Torrellas...
             .load(0, 0)      # ...though the new word 0 is consumed here
             .build())
        sb = run(t, 8)
        assert sb.false_sharing == 1
        assert sb.true_sharing == 0

    def test_non_iterative_program_all_cold(self):
        """Single-touch programs (matrix multiply, FFT): every miss has a
        first-touched word, so everything is cold under Torrellas."""
        t = (TraceBuilder(2)
             .store(0, 0).store(0, 1)
             .load(1, 0).load(1, 1)
             .build())
        sb = run(t, 4)
        assert sb.cold == sb.total


class TestAPI:
    def test_sync_ignored_via_event(self):
        clf = TorrellasClassifier(1, BlockMap(4))
        clf.event(0, ACQUIRE, 0)
        assert clf.finish().data_refs == 0

    def test_access_rejects_sync(self):
        clf = TorrellasClassifier(1, BlockMap(4))
        with pytest.raises(TraceError):
            clf.access(0, ACQUIRE, 0)

    def test_double_finish_rejected(self):
        clf = TorrellasClassifier(1, BlockMap(4))
        clf.finish()
        with pytest.raises(TraceError):
            clf.finish()

    def test_nonpositive_procs_rejected(self):
        with pytest.raises(TraceError):
            TorrellasClassifier(0, BlockMap(4))
