"""Chaos soak property: killed-and-resumed sweeps converge bit-identically.

The seeded harness in :mod:`repro.runtime.chaos` is itself under test
here, together with the property it exists to enforce: for any seed (and
therefore any schedule of SIGINT/SIGTERM/SIGKILL kills, injected worker
faults and torn journal tails), a sweep driven through kill-and-resume
cycles against one checkpoint directory eventually completes with results
— and a telemetry-manifest stable view — byte-identical to a single
uninterrupted run.

The property runs over the execution paths that shard or retry work
differently: serial, by-block-sharded workers, and by-cache-set-sharded
finite-cache cells.  Grids are kept tiny (MATMUL24 / WATER16, 2-3 cells)
so each soak is seconds, not minutes; the CI chaos-soak job runs the
bigger, longer variant via ``python -m repro.runtime.chaos``.
"""

import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.runtime.chaos import ACTIONS, ChaosReport, chaos_soak

CLASSIFY_CELLS = [("classify", 16, "dubois"), ("classify", 64, "dubois"),
                  ("compare", 32, None)]
FINITE_CELLS = [("finite", 16, "c256w4"), ("classify", 32, "dubois")]


def _runner(workload, cells, *, jobs, shards=None):
    """A fork-inheritable ``run_sweep`` for one engine configuration."""

    def run_sweep(checkpoint_dir, fault_plan, telemetry_dir):
        from repro.analysis.engine import SweepEngine

        engine = SweepEngine.for_workload(
            workload, jobs=jobs, shards=shards,
            checkpoint_dir=checkpoint_dir, fault_plan=fault_plan,
            telemetry_dir=telemetry_dir, timeout=5.0)
        return list(engine.run_grid(list(cells)))

    return run_sweep


# ----------------------------------------------------------------------
# the property, per execution path
# ----------------------------------------------------------------------
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_serial_soak_converges_bit_identical(seed):
    workdir = tempfile.mkdtemp(prefix="chaos-serial-")
    try:
        report = chaos_soak(
            _runner("MATMUL24", CLASSIFY_CELLS, jobs=1),
            workdir, seed=seed, kill_cycles=3,
            grid_cells=len(CLASSIFY_CELLS))
        assert report.ok, report.summary()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def test_sharded_soak_converges_bit_identical(tmp_path):
    report = chaos_soak(
        _runner("WATER16", CLASSIFY_CELLS, jobs=2, shards=2),
        str(tmp_path), seed=3, kill_cycles=3,
        grid_cells=len(CLASSIFY_CELLS))
    assert report.ok, report.summary()


def test_cache_set_sharded_soak_converges_bit_identical(tmp_path):
    report = chaos_soak(
        _runner("WATER16", FINITE_CELLS, jobs=2, shards=2),
        str(tmp_path), seed=5, kill_cycles=3,
        grid_cells=len(FINITE_CELLS))
    assert report.ok, report.summary()


def test_torn_tail_schedule_converges(tmp_path):
    """Force the nastiest schedule: every failed cycle tears the journal."""
    report = chaos_soak(
        _runner("MATMUL24", CLASSIFY_CELLS, jobs=1),
        str(tmp_path), seed=11, kill_cycles=3,
        actions=("sigterm",), tear_probability=1.0,
        grid_cells=len(CLASSIFY_CELLS))
    assert report.ok, report.summary()


def test_worker_fault_schedule_converges(tmp_path):
    """Worker-side faults only (crash/hang/oom/sigterm-parent) under the
    sharded pool: retries and the stall watchdog must absorb all of them."""
    report = chaos_soak(
        _runner("MATMUL24", CLASSIFY_CELLS, jobs=2, shards=2),
        str(tmp_path), seed=7, kill_cycles=2,
        actions=tuple(a for a in ACTIONS if a.startswith("fault:")),
        grid_cells=len(CLASSIFY_CELLS))
    assert report.ok, report.summary()


# ----------------------------------------------------------------------
# harness plumbing
# ----------------------------------------------------------------------
def test_unknown_action_rejected(tmp_path):
    with pytest.raises(ConfigError):
        chaos_soak(_runner("MATMUL24", CLASSIFY_CELLS, jobs=1),
                   str(tmp_path), actions=("meteor-strike",))


def test_report_summary_and_ok_logic():
    report = ChaosReport(seed=1)
    assert not report.ok  # never converged
    report.converged = True
    report.identical = True
    report.manifest_identical = None  # manifests not compared: still ok
    assert report.ok
    report.manifest_identical = False
    assert not report.ok
    assert "seed=1" in report.summary()


def test_failing_soak_reports_divergence(tmp_path):
    """A sweep whose results depend on resume history must be caught."""
    marker = tmp_path / "ran-once"

    def unstable(checkpoint_dir, fault_plan, telemetry_dir):
        # On-disk state (closures reset at every fork): the baseline and
        # the chaos run see different values, simulating resume-dependent
        # results.
        from repro.classify.breakdown import DuboisBreakdown

        n = 2 if marker.exists() else 1
        marker.write_text("x")
        return [DuboisBreakdown(pc=n, cts=0, cfs=0, pts=0, pfs=0,
                                data_refs=10)]

    report = chaos_soak(unstable, str(tmp_path), seed=0, kill_cycles=0,
                        actions=("sigint",), compare_manifests=False,
                        grid_cells=1)
    assert report.converged
    assert not report.identical
    assert not report.ok
