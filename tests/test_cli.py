"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.trace import TraceBuilder, save_text
from repro.trace.io import save_npz


@pytest.fixture
def trace_file(tmp_path):
    t = (TraceBuilder(2)
         .store(0, 0).store(0, 1).release(0, 100)
         .acquire(1, 100).load(1, 0).load(1, 1)
         .build("cli-demo"))
    path = str(tmp_path / "demo.trc")
    save_text(t, path)
    return path


@pytest.fixture
def racy_npz(tmp_path):
    t = TraceBuilder(2).store(0, 0).load(1, 0).build("racy")
    path = str(tmp_path / "racy.npz")
    save_npz(t, path)
    return path


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        subparsers = next(a for a in parser._actions
                          if a.dest == "command")
        assert set(subparsers.choices) == {
            "classify", "compare", "sweep", "simulate", "table1",
            "table2", "fig5", "fig6", "validate", "generate",
            "attribute", "traffic", "prefetch", "report"}


class TestCommands:
    def test_classify_file(self, trace_file, capsys):
        assert main(["classify", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out and "essential" in out

    def test_classify_named_workload(self, capsys):
        # use the smallest registered workload for speed
        assert main(["classify", "MATMUL24", "--block", "64"]) == 0
        assert "MATMUL24" in capsys.readouterr().out

    def test_classify_eggers(self, trace_file, capsys):
        assert main(["classify", trace_file, "--block", "8",
                     "--classifier", "eggers"]) == 0
        out = capsys.readouterr().out
        assert "CM=" in out and "essential" not in out

    def test_compare(self, trace_file, capsys):
        assert main(["compare", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        for scheme in ("dubois", "eggers", "torrellas"):
            assert scheme in out

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", trace_file]) == 0
        assert "essential%" in capsys.readouterr().out

    def test_simulate_all(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        for name in ("MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX"):
            assert name in out

    def test_simulate_single_protocol(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--protocol", "MIN"]) == 0
        out = capsys.readouterr().out
        assert "MIN" in out and "OTF" not in out

    def test_validate_race_free(self, trace_file, capsys):
        assert main(["validate", trace_file]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_validate_racy_exits_nonzero(self, racy_npz, capsys):
        assert main(["validate", racy_npz]) == 1
        assert "race" in capsys.readouterr().out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.npz")
        assert main(["generate", "MATMUL24", out_path]) == 0
        assert main(["classify", out_path]) == 0

    def test_generate_text_format(self, tmp_path):
        out_path = str(tmp_path / "gen.trc")
        assert main(["generate", "MATMUL24", out_path]) == 0

    def test_unknown_trace_spec_is_error(self, capsys):
        assert main(["classify", "NOT_A_THING"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_error(self, capsys):
        assert main(["classify", "missing.npz"]) == 2

    def test_traffic_command(self, trace_file, capsys):
        assert main(["traffic", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        assert "bytes/ref" in out and "MIN" in out

    def test_prefetch_command(self, trace_file, capsys):
        assert main(["prefetch", trace_file]) == 0
        assert "CTS+PTS%" in capsys.readouterr().out

    def test_attribute_command_named_workload(self, capsys):
        assert main(["attribute", "MATMUL24", "--block", "32"]) == 0
        out = capsys.readouterr().out
        assert "misses by data structure" in out
