"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import (
    EXIT_COMPLETED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_RESOURCE_EXHAUSTED,
)
from repro.trace import TraceBuilder, save_text
from repro.trace.io import save_npz


@pytest.fixture
def trace_file(tmp_path):
    t = (TraceBuilder(2)
         .store(0, 0).store(0, 1).release(0, 100)
         .acquire(1, 100).load(1, 0).load(1, 1)
         .build("cli-demo"))
    path = str(tmp_path / "demo.trc")
    save_text(t, path)
    return path


@pytest.fixture
def racy_npz(tmp_path):
    t = TraceBuilder(2).store(0, 0).load(1, 0).build("racy")
    path = str(tmp_path / "racy.npz")
    save_npz(t, path)
    return path


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        subparsers = next(a for a in parser._actions
                          if a.dest == "command")
        assert set(subparsers.choices) == {
            "classify", "compare", "sweep", "simulate", "table1",
            "table2", "fig5", "fig6", "validate", "generate",
            "attribute", "traffic", "prefetch", "report",
            "trace", "diff", "history"}


class TestCommands:
    def test_classify_file(self, trace_file, capsys):
        assert main(["classify", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out and "essential" in out

    def test_classify_named_workload(self, capsys):
        # use the smallest registered workload for speed
        assert main(["classify", "MATMUL24", "--block", "64"]) == 0
        assert "MATMUL24" in capsys.readouterr().out

    def test_classify_eggers(self, trace_file, capsys):
        assert main(["classify", trace_file, "--block", "8",
                     "--classifier", "eggers"]) == 0
        out = capsys.readouterr().out
        assert "CM=" in out and "essential" not in out

    def test_compare(self, trace_file, capsys):
        assert main(["compare", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        for scheme in ("dubois", "eggers", "torrellas"):
            assert scheme in out

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", trace_file]) == 0
        assert "essential%" in capsys.readouterr().out

    def test_simulate_all(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        for name in ("MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX"):
            assert name in out

    def test_simulate_single_protocol(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--protocol", "MIN"]) == 0
        out = capsys.readouterr().out
        assert "MIN" in out and "OTF" not in out

    def test_validate_race_free(self, trace_file, capsys):
        assert main(["validate", trace_file]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_validate_racy_exits_nonzero(self, racy_npz, capsys):
        assert main(["validate", racy_npz]) == 1
        assert "race" in capsys.readouterr().out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.npz")
        assert main(["generate", "MATMUL24", out_path]) == 0
        assert main(["classify", out_path]) == 0

    def test_generate_text_format(self, tmp_path):
        out_path = str(tmp_path / "gen.trc")
        assert main(["generate", "MATMUL24", out_path]) == 0

    def test_unknown_trace_spec_is_error(self, capsys):
        assert main(["classify", "NOT_A_THING"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_error(self, capsys):
        assert main(["classify", "missing.npz"]) == 2

    def test_traffic_command(self, trace_file, capsys):
        assert main(["traffic", trace_file, "--block", "8"]) == 0
        out = capsys.readouterr().out
        assert "bytes/ref" in out and "MIN" in out

    def test_prefetch_command(self, trace_file, capsys):
        assert main(["prefetch", trace_file]) == 0
        assert "CTS+PTS%" in capsys.readouterr().out

    def test_attribute_command_named_workload(self, capsys):
        assert main(["attribute", "MATMUL24", "--block", "32"]) == 0
        out = capsys.readouterr().out
        assert "misses by data structure" in out


class TestExitCodeContract:
    """The documented process exit codes are part of the CLI's API:
    wrappers (CI, the chaos harness, operators' shell scripts) dispatch
    on them, so the numeric values are frozen here."""

    def test_constant_values_are_frozen(self):
        assert EXIT_COMPLETED == 0
        assert EXIT_FAILED == 2
        assert EXIT_RESOURCE_EXHAUSTED == 3
        assert EXIT_INTERRUPTED == 75  # sysexits.h EX_TEMPFAIL: retryable

    def test_constants_are_distinct_and_leave_one_free(self):
        codes = {EXIT_COMPLETED, EXIT_FAILED, EXIT_RESOURCE_EXHAUSTED,
                 EXIT_INTERRUPTED}
        assert len(codes) == 4
        # validate's "trace has races" verdict uses plain exit 1 and must
        # never collide with an error class.
        assert 1 not in codes

    def test_runbook_exit_code_table_matches_errors_module(self):
        """The operator runbook's exit-code table is documentation of
        the same contract ``repro.errors`` freezes — a drifted table
        sends operators' scripts dispatching on the wrong numbers."""
        import os
        import re

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "docs", "runbook.md")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        section = re.search(r"## Exit codes\n(.*?)\n## ", text, re.S)
        assert section, "runbook lost its '## Exit codes' section"
        rows = re.findall(r"^\| `(\d+)` \| (.+?) \|", section.group(1),
                          flags=re.M)
        codes = {int(num): desc for num, desc in rows}
        assert set(codes) == {EXIT_COMPLETED, 1, EXIT_FAILED,
                              EXIT_RESOURCE_EXHAUSTED, EXIT_INTERRUPTED}, \
            f"runbook documents {sorted(codes)}"
        assert "completed" in codes[EXIT_COMPLETED]
        assert "validate" in codes[1]       # a verdict, not an error
        assert "failed" in codes[EXIT_FAILED]
        assert "resource" in codes[EXIT_RESOURCE_EXHAUSTED].lower()
        assert "resumable" in codes[EXIT_INTERRUPTED]
        # The constant names the runbook points readers at must exist
        # in repro.errors with these exact values.
        import repro.errors as errors_mod
        for name, value in (("EXIT_COMPLETED", EXIT_COMPLETED),
                            ("EXIT_FAILED", EXIT_FAILED),
                            ("EXIT_RESOURCE_EXHAUSTED",
                             EXIT_RESOURCE_EXHAUSTED),
                            ("EXIT_INTERRUPTED", EXIT_INTERRUPTED)):
            assert name in section.group(1) or name in text
            assert getattr(errors_mod, name) == value

    def test_success_maps_to_exit_completed(self, trace_file):
        assert main(["classify", trace_file, "--block", "8"]) \
            == EXIT_COMPLETED

    def test_repro_error_maps_to_exit_failed(self, capsys):
        assert main(["classify", "NOT_A_THING"]) == EXIT_FAILED
        assert "error:" in capsys.readouterr().err

    def test_resource_exhaustion_maps_to_exit_3(self, trace_file, capsys,
                                                monkeypatch):
        from repro import cli
        from repro.errors import ResourceExhaustedError

        def explode(args):
            raise ResourceExhaustedError("memory budget exceeded",
                                         kind="memory")

        # Drive main() through its own parser, swapping in a handler
        # that fails the way an over-budget sweep does.
        real_parse = cli.build_parser

        def patched_parser():
            p = real_parse()
            for action in p._actions:
                if action.dest == "command":
                    action.choices["classify"].set_defaults(func=explode)
            return p

        monkeypatch.setattr(cli, "build_parser", patched_parser)
        rc = cli.main(["classify", trace_file])
        assert rc == EXIT_RESOURCE_EXHAUSTED
        assert "error:" in capsys.readouterr().err

    def test_interrupt_maps_to_exit_75_with_resume_hint(self, trace_file,
                                                        capsys,
                                                        monkeypatch):
        from repro import cli
        from repro.errors import SweepInterrupted

        def interrupted(args):
            raise SweepInterrupted("sweep interrupted: 1 cell(s) journaled")

        real_parse = cli.build_parser

        def patched_parser():
            p = real_parse()
            for action in p._actions:
                if action.dest == "command":
                    action.choices["classify"].set_defaults(func=interrupted)
            return p

        monkeypatch.setattr(cli, "build_parser", patched_parser)
        rc = cli.main(["classify", trace_file])
        assert rc == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err  # tells the operator how to continue
