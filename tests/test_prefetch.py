"""Unit tests for the prefetching-floor analysis (paper section 2.0)."""

import pytest

from repro.analysis.prefetch import PrefetchFloors, prefetch_analysis
from repro.classify import classify
from repro.trace import TraceBuilder
from repro.trace.synth import private_blocks, uniform_random


class TestFloors:
    def test_ordering_of_floors(self, mp3d_trace):
        """baseline >= +preload >= +preload+WI == CTS+PTS, always."""
        analysis = prefetch_analysis(mp3d_trace, [8, 32, 128])
        for floors in analysis.floors.values():
            assert floors.baseline >= floors.with_preload
            assert floors.with_preload >= floors.with_preload_and_wi
            assert floors.with_preload_and_wi == pytest.approx(
                floors.irreducible)

    def test_private_data_fully_prefetchable(self):
        """All-private traces are pure PC: preloading removes everything."""
        t = private_blocks(4, words_per_proc=8, iterations=2)
        analysis = prefetch_analysis(t, [16])
        floors = analysis.floors[16]
        assert floors.baseline > 0
        assert floors.with_preload == 0.0
        assert floors.irreducible == 0.0

    def test_cts_cannot_be_eliminated(self):
        """'CTS misses cannot be eliminated': a consumed cold miss stays
        in every floor."""
        t = TraceBuilder(2).store(0, 0).load(1, 0).build()
        floors = prefetch_analysis(t, [4]).floors[4]
        # P1's cold miss consumes P0's value: CTS, in the final floor.
        assert floors.with_preload_and_wi > 0

    def test_cfs_removed_only_with_word_invalidation(self):
        t = TraceBuilder(2).store(0, 1).load(1, 0).build()
        bd = classify(t, 8)
        assert bd.cfs == 1
        floors = prefetch_analysis(t, [8]).floors[8]
        assert floors.with_preload > floors.with_preload_and_wi

    def test_rates_consistent_with_breakdown(self, random_trace):
        analysis = prefetch_analysis(random_trace, [16])
        floors = analysis.floors[16]
        bd = floors.breakdown
        assert floors.baseline == pytest.approx(bd.essential_rate)
        assert floors.with_preload == pytest.approx(
            bd.rate(bd.essential - bd.pc))

    def test_format_renders(self, random_trace):
        text = prefetch_analysis(random_trace, [8, 16]).format()
        assert "essential%" in text and "CTS+PTS%" in text

    def test_default_block_sizes_are_paper_sweep(self, random_trace):
        analysis = prefetch_analysis(random_trace)
        assert sorted(analysis.floors) == [4, 8, 16, 32, 64, 128, 256, 512,
                                           1024]
