"""Unit tests for the event model (repro.trace.events)."""

import pytest

from repro.errors import TraceError
from repro.trace.events import (
    ACQUIRE,
    DATA_OPS,
    LOAD,
    OPS,
    RELEASE,
    STORE,
    SYNC_OPS,
    count_ops,
    format_event,
    is_data_op,
    is_sync_op,
    make_event,
    op_from_name,
    op_name,
    validate_event,
)


class TestOpcodes:
    def test_opcodes_distinct(self):
        assert len(set(OPS)) == 4

    def test_data_and_sync_partition_ops(self):
        assert set(DATA_OPS) | set(SYNC_OPS) == set(OPS)
        assert not set(DATA_OPS) & set(SYNC_OPS)

    def test_is_data_op(self):
        assert is_data_op(LOAD) and is_data_op(STORE)
        assert not is_data_op(ACQUIRE) and not is_data_op(RELEASE)

    def test_is_sync_op(self):
        assert is_sync_op(ACQUIRE) and is_sync_op(RELEASE)
        assert not is_sync_op(LOAD) and not is_sync_op(STORE)


class TestOpNames:
    @pytest.mark.parametrize("op,name", [(LOAD, "LOAD"), (STORE, "STORE"),
                                         (ACQUIRE, "ACQUIRE"),
                                         (RELEASE, "RELEASE")])
    def test_roundtrip(self, op, name):
        assert op_name(op) == name
        assert op_from_name(name) == op

    @pytest.mark.parametrize("alias,op", [("LD", LOAD), ("ST", STORE),
                                          ("ACQ", ACQUIRE), ("REL", RELEASE),
                                          ("R", LOAD), ("W", STORE),
                                          ("load", LOAD), (" store ", STORE)])
    def test_aliases_and_case(self, alias, op):
        assert op_from_name(alias) == op

    def test_unknown_opcode_raises(self):
        with pytest.raises(TraceError):
            op_name(99)

    def test_unknown_name_raises(self):
        with pytest.raises(TraceError):
            op_from_name("FETCH")


class TestValidation:
    def test_make_event_valid(self):
        assert make_event(1, LOAD, 0x40) == (1, LOAD, 0x40)

    def test_negative_proc_rejected(self):
        with pytest.raises(TraceError):
            make_event(-1, LOAD, 0)

    def test_bad_opcode_rejected(self):
        with pytest.raises(TraceError):
            make_event(0, 42, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            make_event(0, LOAD, -4)

    def test_proc_bound_check(self):
        validate_event((3, LOAD, 0), num_procs=4)
        with pytest.raises(TraceError):
            validate_event((4, LOAD, 0), num_procs=4)

    def test_malformed_tuple_rejected(self):
        with pytest.raises(TraceError):
            validate_event((0, LOAD))
        with pytest.raises(TraceError):
            validate_event("nope")


class TestHelpers:
    def test_format_event(self):
        assert format_event((3, STORE, 0x40)) == "P3 STORE 0x40"

    def test_count_ops(self):
        events = [(0, LOAD, 0), (0, STORE, 1), (1, LOAD, 2),
                  (1, ACQUIRE, 3), (1, RELEASE, 3)]
        counts = count_ops(events)
        assert counts[LOAD] == 2
        assert counts[STORE] == 1
        assert counts[ACQUIRE] == 1
        assert counts[RELEASE] == 1

    def test_count_ops_empty(self):
        assert count_ops([]) == {op: 0 for op in OPS}
