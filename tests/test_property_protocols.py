"""Property-based tests (hypothesis) for the protocol simulators."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.protocols import run_protocol, run_protocols
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.trace import Trace

MAX_PROCS = 4
MAX_WORDS = 12


@st.composite
def sync_traces(draw, max_events=50):
    """Random traces including acquire/release events.

    Each processor's releases use its own sync variable so the event
    stream remains structurally sane; data races are allowed (the
    protocols must be robust to any input trace, even though the delayed
    ones are only *meaningful* on race-free ones).
    """
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    sync_base = 1000
    events = []
    for _ in range(n):
        proc = draw(st.integers(0, nproc - 1))
        kind = draw(st.integers(0, 9))
        if kind <= 5:
            events.append((proc, draw(st.sampled_from((LOAD, STORE))),
                           draw(st.integers(0, MAX_WORDS - 1))))
        elif kind <= 7:
            events.append((proc, ACQUIRE, sync_base + proc))
        else:
            events.append((proc, RELEASE, sync_base + proc))
    return Trace(events, nproc, validate=False)


block_sizes = st.sampled_from((4, 8, 16, 32))
ALL = ("MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX")


@given(sync_traces(), block_sizes)
@settings(max_examples=80, deadline=None)
def test_otf_decomposition_equals_appendix_a(trace, bb):
    bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    r = run_protocol("OTF", trace, bb)
    assert r.breakdown.as_dict() == bd.as_dict()


@given(sync_traces(), block_sizes)
@settings(max_examples=80, deadline=None)
def test_min_at_most_essential_and_no_false_sharing(trace, bb):
    bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    r = run_protocol("MIN", trace, bb)
    assert r.misses <= bd.essential
    # MIN eliminates useless (PFS) misses entirely; cold misses — even
    # CFS, whose fetched fresh values go unused — are unavoidable.
    assert r.breakdown.pfs == 0


@given(sync_traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_max_dominates_otf(trace, bb):
    res = run_protocols(trace, bb, ["OTF", "MAX"])
    assert res["MAX"].misses >= res["OTF"].misses


@given(sync_traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_all_protocols_complete_and_account_consistently(trace, bb):
    for name, r in run_protocols(trace, bb, ALL).items():
        b = r.breakdown
        assert b.pc + b.cts + b.cfs + b.pts + b.pfs == b.total, name
        assert b.data_refs == sum(1 for _, op, _ in trace.events
                                  if op in (LOAD, STORE)), name
        assert r.misses >= 0
        # every fetch is a miss and vice versa (infinite caches)
        assert r.counters.fetches == r.misses, name


@given(sync_traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_wbwi_misses_at_most_otf(trace, bb):
    """Word invalidation can only remove misses relative to OTF."""
    res = run_protocols(trace, bb, ["OTF", "WBWI"])
    assert res["WBWI"].misses <= res["OTF"].misses


@given(sync_traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_rd_misses_at_most_otf(trace, bb):
    """Deferring invalidations to acquires can only combine misses."""
    res = run_protocols(trace, bb, ["OTF", "RD"])
    assert res["RD"].misses <= res["OTF"].misses


@given(sync_traces(), block_sizes)
@settings(max_examples=40, deadline=None)
def test_protocols_deterministic(trace, bb):
    a = run_protocols(trace, bb, ALL)
    b = run_protocols(trace, bb, ALL)
    for name in ALL:
        assert a[name].breakdown.as_dict() == b[name].breakdown.as_dict()
        assert a[name].counters.as_dict() == b[name].counters.as_dict()


@given(sync_traces())
@settings(max_examples=60, deadline=None)
def test_block_size_4_makes_min_wbwi_otf_agree(trace):
    """With one-word blocks, word invalidation degenerates to block
    invalidation: MIN, WBWI and OTF see identical misses."""
    res = run_protocols(trace, 4, ["MIN", "WBWI", "OTF"])
    assert res["MIN"].misses == res["OTF"].misses
    assert res["WBWI"].misses == res["OTF"].misses
