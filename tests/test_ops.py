"""Unit tests for the execution instruction set helpers."""

from repro.execution import ops
from repro.mem.allocator import Allocator
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE


class TestSingleOps:
    def test_load_store(self):
        assert ops.load(5) == (ops.MEM, LOAD, 5)
        assert ops.store(5) == (ops.MEM, STORE, 5)

    def test_sync_events(self):
        assert ops.acquire_event(9) == (ops.SYNC, ACQUIRE, 9)
        assert ops.release_event(9) == (ops.SYNC, RELEASE, 9)

    def test_block_until_carries_predicate(self):
        flag = []
        op = ops.block_until(lambda: bool(flag))
        assert op[0] == ops.BLOCK
        assert op[1]() is False
        flag.append(1)
        assert op[1]() is True


class TestBulkOps:
    def test_load_words(self):
        assert list(ops.load_words([1, 2])) == [(ops.MEM, LOAD, 1),
                                                (ops.MEM, LOAD, 2)]

    def test_store_words(self):
        assert list(ops.store_words([3])) == [(ops.MEM, STORE, 3)]

    def test_region_helpers(self):
        region = Allocator().alloc_words("r", 3)
        loads = list(ops.load_region(region))
        stores = list(ops.store_region(region))
        assert [a for _, _, a in loads] == [0, 1, 2]
        assert [op for _, op, _ in stores] == [STORE] * 3

    def test_read_modify_write(self):
        assert list(ops.read_modify_write(7)) == [(ops.MEM, LOAD, 7),
                                                  (ops.MEM, STORE, 7)]

    def test_update_region_interleaves_rmw(self):
        region = Allocator().alloc_words("r", 2)
        seq = list(ops.update_region(region))
        assert seq == [(ops.MEM, LOAD, 0), (ops.MEM, STORE, 0),
                       (ops.MEM, LOAD, 1), (ops.MEM, STORE, 1)]
