"""Unit tests for the finite-cache extension."""

import pytest

from repro.errors import ConfigError
from repro.mem import BlockMap
from repro.protocols import FiniteOTFProtocol, run_protocol
from repro.trace import TraceBuilder
from repro.trace.synth import private_blocks, uniform_random


def run_finite(trace, block_bytes, capacity):
    return FiniteOTFProtocol(trace.num_procs, BlockMap(block_bytes),
                             capacity).run(trace)


class TestReplacement:
    def test_infinite_capacity_matches_otf(self, random_trace):
        finite = run_finite(random_trace, 16, capacity=10_000)
        otf = run_protocol("OTF", random_trace, 16)
        assert finite.misses == otf.misses
        assert finite.replacement_misses == 0

    def test_lru_eviction_and_replacement_miss(self):
        # capacity 1: every block change evicts; re-touch = replacement miss
        t = TraceBuilder(1).load(0, 0).load(0, 4).load(0, 0).build()
        r = run_finite(t, 16, capacity=1)
        assert r.counters.replacements == 2
        assert r.replacement_misses == 1
        assert r.breakdown.pc == 2  # the two genuine cold misses

    def test_lru_order(self):
        # capacity 2; touch 0,4,0 then 8: block 4 (least recent) evicted
        t = (TraceBuilder(1)
             .load(0, 0).load(0, 4).load(0, 0).load(0, 8)
             .load(0, 0)          # still cached: hit
             .load(0, 4)          # replaced: replacement miss
             .build())
        r = run_finite(t, 16, capacity=2)
        assert r.replacement_misses == 1
        assert r.misses == 4

    def test_invalidated_block_is_not_replacement(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)   # coherence invalidation, not replacement
             .load(0, 0)
             .build())
        r = run_finite(t, 4, capacity=4)
        assert r.replacement_misses == 0
        assert r.breakdown.pts == 1

    def test_remote_invalidation_of_cached_block_updates_lru(self):
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 4)
             .store(1, 0)          # P0's block 0 invalidated
             .load(0, 8)           # fills the freed slot: no eviction
             .load(0, 4)           # still cached
             .build())
        r = run_finite(t, 16, capacity=2)
        assert r.counters.replacements == 0

    def test_replacement_misses_are_essential(self):
        """Paper section 8: 'A replacement miss is an essential miss'."""
        t = TraceBuilder(1).load(0, 0).load(0, 4).load(0, 0).build()
        r = run_finite(t, 16, capacity=1)
        # the replacement miss is not in the PFS bucket
        assert r.breakdown.pfs == 0

    def test_essential_fraction_grows_as_capacity_shrinks(self):
        """Paper section 8: 'the fraction of essential misses will
        increase in systems with finite caches'."""
        t = uniform_random(4, words=512, num_events=6000, seed=3)
        fractions = []
        for cap in (4, 16, 4096):
            r = run_finite(t, 16, capacity=cap)
            essential = r.breakdown.essential + r.replacement_misses
            fractions.append(essential / r.misses)
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_private_working_set_smaller_than_cache_never_replaces(self):
        t = private_blocks(2, words_per_proc=8, iterations=4)
        r = run_finite(t, 4, capacity=8)
        assert r.counters.replacements == 0


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            FiniteOTFProtocol(1, BlockMap(4), 0)
