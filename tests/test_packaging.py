"""Repository-contract tests: public exports resolve, documentation files

cover the deliverables, and the version metadata is consistent."""

import importlib
import os

import pytest

import repro

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


class TestPublicExports:
    @pytest.mark.parametrize("module_name", [
        "repro", "repro.trace", "repro.mem", "repro.execution",
        "repro.workloads", "repro.classify", "repro.protocols",
        "repro.analysis",
    ])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_convenience(self):
        # The four things a new user reaches for first.
        assert callable(repro.classify_trace)
        assert callable(repro.run_protocols)
        assert callable(repro.make_workload)
        assert callable(repro.compare_classifications)


class TestDocumentation:
    def read(self, name):
        with open(os.path.join(ROOT, name)) as f:
            return f.read()

    def test_readme_covers_install_quickstart_architecture(self):
        text = self.read("README.md")
        for section in ("## Install", "## Quickstart", "## Architecture",
                        "## Reproduction notes"):
            assert section in text

    def test_design_covers_inventory_and_experiments(self):
        text = self.read("DESIGN.md")
        assert "System inventory" in text
        assert "Experiment index" in text
        # every paper table/figure appears in the index
        for exp in ("Fig. 1", "Fig. 5", "Fig. 6a", "Fig. 6b",
                    "Table 1", "Table 2"):
            assert exp in text, exp

    def test_experiments_records_every_artifact(self):
        text = self.read("EXPERIMENTS.md")
        for bench in ("bench_figures_1_to_4", "bench_table1", "bench_table2",
                      "bench_fig5", "bench_fig6", "bench_large_datasets",
                      "bench_ablation_ownership", "bench_ablation_barrier",
                      "bench_finite_cache"):
            assert bench in text, bench

    def test_examples_exist_and_are_executable_python(self):
        examples_dir = os.path.join(ROOT, "examples")
        names = [f for f in os.listdir(examples_dir) if f.endswith(".py")]
        assert len(names) >= 6
        for name in names:
            with open(os.path.join(examples_dir, name)) as f:
                source = f.read()
            compile(source, name, "exec")  # syntactically valid
            assert '__main__' in source, f"{name} is not runnable"

    def test_every_bench_target_in_design_exists(self):
        text = self.read("DESIGN.md")
        bench_dir = os.path.join(ROOT, "benchmarks")
        for token in text.split():
            if token.startswith("`benchmarks/bench_"):
                path = token.strip("`|").split("::")[0]
                assert os.path.exists(os.path.join(ROOT, path)), path


class TestDocstrings:
    @pytest.mark.parametrize("module_name", [
        "repro.classify.dubois", "repro.classify.eggers",
        "repro.classify.torrellas", "repro.protocols.lifetime",
        "repro.protocols.maxsched", "repro.protocols.min_wt",
        "repro.execution.scheduler", "repro.trace.validate",
        "repro.workloads.mp3d", "repro.workloads.lu",
    ])
    def test_core_modules_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 100

    def test_public_classes_have_docstrings(self):
        from repro.classify import (DuboisClassifier, EggersClassifier,
                                    TorrellasClassifier)
        from repro.protocols import (MINProtocol, OTFProtocol, RDProtocol,
                                     SDProtocol, SRDProtocol, WBWIProtocol,
                                     MAXSchedule)
        for cls in (DuboisClassifier, EggersClassifier, TorrellasClassifier,
                    MINProtocol, OTFProtocol, RDProtocol, SDProtocol,
                    SRDProtocol, WBWIProtocol, MAXSchedule):
            assert cls.__doc__, cls.__name__
